//! The last CPU: a kernel device providing centralized control.

use std::collections::HashMap;

use lastcpu_bus::wire::{WireReader, WireWriter};
use lastcpu_bus::{
    DeviceId, Dst, Envelope, Payload, RequestId, ResourceKind, ServiceDesc, ServiceId, Status,
    Token,
};
use lastcpu_devices::device::{Device, DeviceCtx};
use lastcpu_devices::monitor::{AuthMode, Monitor, MonitorEvent};
use lastcpu_memctl::MemoryController;
use lastcpu_net::PortId;
use lastcpu_sim::SimDuration;

use crate::cost::CpuCostModel;
use crate::dumbnic::{decode_packet, encode_packet};

/// The kernel's open-broker service: clients open remote services *through*
/// the kernel, which forwards and polices (the OmniX/M³X model).
pub const KERNEL_OPEN: ServiceId = ServiceId(1);

/// Encodes broker parameters: which service the client actually wants.
pub fn encode_broker_params(
    target: DeviceId,
    service: ServiceId,
    token: Token,
    inner: &[u8],
) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u32(target.0);
    w.u16(service.0);
    w.u128(token.0);
    w.bytes(inner);
    w.finish()
}

fn decode_broker_params(buf: &[u8]) -> Option<(DeviceId, ServiceId, Token, Vec<u8>)> {
    let mut r = WireReader::new(buf);
    let dev = DeviceId(r.u32().ok()?);
    let svc = ServiceId(r.u16().ok()?);
    let token = Token(r.u128().ok()?);
    let inner = r.bytes().ok()?;
    r.expect_end().ok()?;
    Some((dev, svc, token, inner))
}

/// Environment handed to the CPU-hosted application.
pub struct KernelEnv<'a, 'b> {
    /// The execution context.
    pub ctx: &'a mut DeviceCtx<'b>,
    /// The kernel's driver stack (discovery, sessions) — the CPU talks to
    /// smart devices with the same protocol everyone else uses.
    pub monitor: &'a mut Monitor,
    /// The NIC the kernel currently routes packets through, if any.
    pub nic: Option<DeviceId>,
    cost: CpuCostModel,
}

impl KernelEnv<'_, '_> {
    /// Sends a packet out through the dumb NIC (syscall + kernel copy).
    pub fn send_packet(&mut self, dst: PortId, payload: Vec<u8>) {
        let Some(nic) = self.nic else { return };
        self.ctx
            .busy(self.cost.syscall + self.cost.copy(payload.len()));
        let data = encode_packet(dst, &payload);
        self.ctx.send_bus(
            Dst::Device(nic),
            Payload::AppData {
                conn: lastcpu_bus::ConnId(0),
                data,
            },
        );
    }

    /// The kernel cost model (apps charge their compute via `ctx.busy`).
    pub fn cost(&self) -> &CpuCostModel {
        &self.cost
    }
}

/// An application running on the CPU (the conventional deployment).
pub trait CpuApp: 'static {
    /// Application name.
    fn app_name(&self) -> &str;

    /// Called once the CPU is registered on the bus.
    fn on_start(&mut self, env: &mut KernelEnv<'_, '_>);

    /// A packet arrived from a NIC (already copied into kernel memory).
    fn on_packet(&mut self, env: &mut KernelEnv<'_, '_>, src: PortId, payload: Vec<u8>);

    /// A monitor event for one of the app's driver-stack operations.
    fn on_event(&mut self, env: &mut KernelEnv<'_, '_>, ev: MonitorEvent);

    /// An application timer fired.
    fn on_timer(&mut self, _env: &mut KernelEnv<'_, '_>, _token: u64) {}
}

/// A do-nothing app for control-plane-only baselines.
pub struct IdleApp;

impl CpuApp for IdleApp {
    fn app_name(&self) -> &str {
        "idle"
    }

    fn on_start(&mut self, _env: &mut KernelEnv<'_, '_>) {}

    fn on_packet(&mut self, _env: &mut KernelEnv<'_, '_>, _src: PortId, _payload: Vec<u8>) {}

    fn on_event(&mut self, _env: &mut KernelEnv<'_, '_>, _ev: MonitorEvent) {}
}

/// Kernel counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct CpuStats {
    /// Interrupts fielded.
    pub interrupts: u64,
    /// Syscall-class operations served.
    pub syscalls: u64,
    /// Opens brokered.
    pub opens_brokered: u64,
    /// Directory lookups served.
    pub lookups: u64,
    /// Packets moved through the kernel.
    pub packets: u64,
}

/// The CPU device: kernel + hosted application.
pub struct CpuDevice<A> {
    name: String,
    monitor: Monitor,
    memctl: MemoryController,
    cost: CpuCostModel,
    /// Central directory: service name → (device, descriptor).
    directory: Vec<(DeviceId, ServiceDesc)>,
    /// Broker bookkeeping: our forwarded open op → (client, client req).
    brokered: HashMap<u64, (DeviceId, RequestId)>,
    nic: Option<DeviceId>,
    app: A,
    app_started: bool,
    probe_op: Option<u64>,
    stats: CpuStats,
}

impl<A: CpuApp> CpuDevice<A> {
    /// Creates the CPU with bus address `id`, managing `dram_bytes` of
    /// memory, hosting `app`.
    pub fn new(name: &str, id: DeviceId, dram_bytes: u64, app: A) -> Self {
        let mut monitor = Monitor::new();
        monitor.add_service(
            ServiceDesc {
                id: KERNEL_OPEN,
                name: "kernel".into(),
                resource: ResourceKind::Compute,
            },
            AuthMode::Open, // the kernel forwards the inner token
        );
        CpuDevice {
            name: name.to_string(),
            monitor,
            memctl: MemoryController::new(id, dram_bytes),
            cost: CpuCostModel::default(),
            directory: Vec::new(),
            brokered: HashMap::new(),
            nic: None,
            app,
            app_started: false,
            probe_op: None,
            stats: CpuStats::default(),
        }
    }

    /// Replaces the cost model.
    pub fn with_cost_model(mut self, cost: CpuCostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Counters.
    pub fn stats(&self) -> CpuStats {
        self.stats
    }

    /// The hosted application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Entries currently in the central directory.
    pub fn directory_len(&self) -> usize {
        self.directory.len()
    }

    fn env<'a, 'b>(
        ctx: &'a mut DeviceCtx<'b>,
        monitor: &'a mut Monitor,
        nic: Option<DeviceId>,
        cost: CpuCostModel,
    ) -> KernelEnv<'a, 'b> {
        KernelEnv {
            ctx,
            monitor,
            nic,
            cost,
        }
    }

    fn forward_memctl(&mut self, ctx: &mut DeviceCtx<'_>, env: &Envelope) {
        let mut out = Vec::new();
        self.memctl.handle(env, &mut out);
        for e in out {
            ctx.send_bus_with_req(e.dst, e.req, e.payload);
        }
    }

    fn handle_kernel_event(&mut self, ctx: &mut DeviceCtx<'_>, ev: MonitorEvent) {
        match ev {
            MonitorEvent::Registered => {
                // Boot-time probe: devices that announced before the kernel
                // was up answer this sweep, seeding the directory (the
                // baseline analogue of a driver bus scan).
                self.probe_op = Some(self.monitor.discover(ctx, "*"));
                if !self.app_started {
                    self.app_started = true;
                    let mut env = Self::env(ctx, &mut self.monitor, self.nic, self.cost);
                    self.app.on_start(&mut env);
                }
            }
            MonitorEvent::OpenRequested {
                req,
                from,
                service,
                params,
                ..
            } if service == KERNEL_OPEN => {
                // Broker an open on the client's behalf (syscall).
                ctx.busy(self.cost.syscall + self.cost.context_switch);
                self.stats.syscalls += 1;
                match decode_broker_params(&params) {
                    Some((target, svc, token, inner)) => {
                        self.stats.opens_brokered += 1;
                        let op = self.monitor.open(ctx, target, svc, token, inner);
                        self.brokered.insert(op, (from, req));
                    }
                    None => {
                        self.monitor.reject_open(ctx, req, from, Status::BadRequest);
                    }
                }
            }
            MonitorEvent::OpenDone { op, result, target } => {
                if let Some((client, client_req)) = self.brokered.remove(&op) {
                    ctx.busy(self.cost.syscall);
                    let payload = match result {
                        Ok((conn, shm_bytes, params)) => Payload::OpenResponse {
                            status: Status::Ok,
                            conn,
                            shm_bytes,
                            params,
                        },
                        Err(status) => Payload::OpenResponse {
                            status,
                            conn: lastcpu_bus::ConnId(0),
                            shm_bytes: 0,
                            params: vec![],
                        },
                    };
                    ctx.send_bus_with_req(Dst::Device(client), client_req, payload);
                } else {
                    // One of the app's own opens.
                    let mut env = Self::env(ctx, &mut self.monitor, self.nic, self.cost);
                    self.app
                        .on_event(&mut env, MonitorEvent::OpenDone { op, result, target });
                }
            }
            MonitorEvent::DiscoveryDone { op, hits } if Some(op) == self.probe_op => {
                self.probe_op = None;
                for (dev, svc) in hits {
                    self.directory
                        .retain(|(d, s)| !(*d == dev && s.id == svc.id));
                    self.directory.push((dev, svc));
                }
            }
            other => {
                let mut env = Self::env(ctx, &mut self.monitor, self.nic, self.cost);
                self.app.on_event(&mut env, other);
            }
        }
    }
}

impl<A: CpuApp> Device for CpuDevice<A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "cpu"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.busy(SimDuration::from_micros(500)); // the one long boot in the system
        let name = self.name.clone();
        self.monitor.start(ctx, &name, "cpu");
        self.monitor
            .enable_heartbeat(ctx, SimDuration::from_millis(2));
        // The kernel is the memory manager: claim the Memory class.
        let mut out = Vec::new();
        self.memctl.on_start(&mut out);
        for e in out {
            ctx.send_bus_with_req(e.dst, e.req, e.payload);
        }
    }

    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        // Every arrival is an interrupt.
        ctx.busy(self.cost.interrupt_entry);
        self.stats.interrupts += 1;
        match &env.payload {
            // Passive directory construction: the kernel sees every
            // announcement (global state — exactly what §2.2 forbids the
            // bus, and exactly what a kernel keeps).
            Payload::Announce { service } => {
                self.directory
                    .retain(|(d, s)| !(*d == env.src && s.id == service.id));
                self.directory.push((env.src, service.clone()));
            }
            Payload::Withdraw { service } => {
                self.directory
                    .retain(|(d, s)| !(*d == env.src && s.id == *service));
            }
            // Answers to the kernel's boot probe (and any stray hits).
            // Also forwarded to the monitor: hits may belong to a discovery
            // the hosted app started.
            Payload::QueryHit { device, service } => {
                self.directory
                    .retain(|(d, s)| !(*d == *device && s.id == service.id));
                self.directory.push((*device, service.clone()));
                let events = self.monitor.handle(ctx, &env);
                for ev in events {
                    self.handle_kernel_event(ctx, ev);
                }
            }
            // Centralized discovery: a directory lookup, not a broadcast.
            Payload::Query { pattern } if env.dst == Dst::Device(self.memctl.id()) => {
                ctx.busy(self.cost.syscall);
                self.stats.syscalls += 1;
                self.stats.lookups += 1;
                for (dev, svc) in &self.directory {
                    let matches = match pattern.strip_suffix('*') {
                        Some(prefix) => svc.name.starts_with(prefix),
                        None => *pattern == svc.name,
                    };
                    if matches {
                        ctx.send_bus_with_req(
                            Dst::Device(env.src),
                            env.req,
                            Payload::QueryHit {
                                device: *dev,
                                service: svc.clone(),
                            },
                        );
                    }
                }
            }
            // Memory management syscalls.
            Payload::MemAlloc { .. } | Payload::MemFree { .. } | Payload::Share { .. } => {
                ctx.busy(self.cost.syscall);
                self.stats.syscalls += 1;
                self.forward_memctl(ctx, &env);
            }
            Payload::DeviceFailed { .. } => {
                self.forward_memctl(ctx, &env);
                for ev in self.monitor.handle(ctx, &env) {
                    self.handle_kernel_event(ctx, ev);
                }
            }
            // Packets from dumb NICs: copy in, hand to the app.
            Payload::AppData { data, .. } => {
                ctx.busy(self.cost.interrupt_with_copy(data.len()) + self.cost.context_switch);
                self.stats.packets += 1;
                self.nic = Some(env.src);
                if let Some((src, payload)) = decode_packet(data) {
                    let mut kenv = Self::env(ctx, &mut self.monitor, self.nic, self.cost);
                    self.app.on_packet(&mut kenv, src, payload);
                }
            }
            _ => {
                let events = self.monitor.handle(ctx, &env);
                for ev in events {
                    self.handle_kernel_event(ctx, ev);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        match self.monitor.on_timer(ctx, token) {
            None => {
                let mut env = Self::env(ctx, &mut self.monitor, self.nic, self.cost);
                self.app.on_timer(&mut env, token);
            }
            Some(events) => {
                for ev in events {
                    self.handle_kernel_event(ctx, ev);
                }
            }
        }
    }

    fn on_reset(&mut self, ctx: &mut DeviceCtx<'_>) {
        // A kernel panic + reboot: everything is lost.
        self.monitor.reset();
        self.directory.clear();
        self.brokered.clear();
        self.app_started = false;
        self.probe_op = None;
        ctx.busy(SimDuration::from_micros(500));
        let name = self.name.clone();
        self.monitor.start(ctx, &name, "cpu");
        self.monitor
            .enable_heartbeat(ctx, SimDuration::from_millis(2));
        let mut out = Vec::new();
        self.memctl.on_start(&mut out);
        for e in out {
            ctx.send_bus_with_req(e.dst, e.req, e.payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastcpu_core::{HostCtx, NetHost, System, SystemConfig};
    use lastcpu_devices::flash::{NandChip, NandConfig};
    use lastcpu_devices::fs::FlashFs;
    use lastcpu_devices::ftl::Ftl;
    use lastcpu_devices::ssd::{SmartSsd, SsdConfig};
    use lastcpu_net::Frame;
    use lastcpu_sim::SimDuration;

    fn small_fs() -> FlashFs {
        FlashFs::format(Ftl::new(NandChip::new(NandConfig {
            blocks: 64,
            pages_per_block: 32,
            page_size: 4096,
            max_erase_cycles: u32::MAX,
            ..NandConfig::default()
        })))
    }

    #[test]
    fn broker_params_round_trip() {
        let p = encode_broker_params(DeviceId(3), ServiceId(100), Token(42), &[1, 2]);
        assert_eq!(
            decode_broker_params(&p),
            Some((DeviceId(3), ServiceId(100), Token(42), vec![1, 2]))
        );
        assert_eq!(decode_broker_params(&[1]), None);
    }

    /// A client device that opens an SSD file service *through* the kernel
    /// broker, as baseline clients must.
    struct BrokerClient {
        name: String,
        monitor: Monitor,
        cpu: DeviceId,
        query_req: Option<RequestId>,
        target: Option<(DeviceId, ServiceId)>,
        open_op: Option<u64>,
        pub got_conn: Option<lastcpu_bus::ConnId>,
        pub denied: bool,
    }

    impl BrokerClient {
        fn new(name: &str, cpu: DeviceId) -> Self {
            BrokerClient {
                name: name.into(),
                monitor: Monitor::new(),
                cpu,
                query_req: None,
                target: None,
                open_op: None,
                got_conn: None,
                denied: false,
            }
        }
    }

    impl Device for BrokerClient {
        fn name(&self) -> &str {
            &self.name
        }

        fn kind(&self) -> &str {
            "client"
        }

        fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
            let name = self.name.clone();
            self.monitor.start(ctx, &name, "client");
            self.monitor
                .enable_heartbeat(ctx, SimDuration::from_millis(2));
        }

        // (Timer token 10 = retry the kernel lookup until it answers —
        // a baseline client cannot make progress before the kernel boots.)

        fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
            // Centralized discovery: a unicast lookup at the kernel.
            if let Payload::QueryHit { device, service } = &env.payload {
                if Some(env.req) == self.query_req && self.target.is_none() {
                    self.target = Some((*device, service.id));
                    // Open through the broker.
                    let mut params = lastcpu_bus::wire::WireWriter::new();
                    params.u32(ctx.dev.0); // our pasid
                    let op = self.monitor.open(
                        ctx,
                        self.cpu,
                        KERNEL_OPEN,
                        Token::NONE,
                        encode_broker_params(*device, service.id, Token::NONE, &params.finish()),
                    );
                    self.open_op = Some(op);
                    return;
                }
            }
            for ev in self.monitor.handle(ctx, &env) {
                match ev {
                    MonitorEvent::Registered => {
                        ctx.set_timer(SimDuration::from_micros(100), 10);
                    }
                    MonitorEvent::OpenDone { op, result, .. } if Some(op) == self.open_op => {
                        match result {
                            Ok((conn, shm, _)) => {
                                assert!(shm > 0, "file conns demand shared memory");
                                self.got_conn = Some(conn);
                            }
                            Err(_) => self.denied = true,
                        }
                    }
                    _ => {}
                }
            }
        }

        fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
            if self.monitor.on_timer(ctx, token).is_some() {
                return;
            }
            if token == 10 && self.target.is_none() {
                self.query_req = Some(ctx.send_bus(
                    Dst::Device(self.cpu),
                    Payload::Query {
                        pattern: "file:/data/kv.db".into(),
                    },
                ));
                ctx.set_timer(SimDuration::from_millis(1), 10);
            }
        }
    }

    #[test]
    fn kernel_brokers_opens_and_builds_directory() {
        let mut sys = System::new(SystemConfig::default());
        let cpu = sys.add_device_with("cpu0", "cpu", |id, dram| {
            Box::new(CpuDevice::new("cpu0", id, dram, IdleApp))
        });
        let mut fs = small_fs();
        fs.create("/data/kv.db").unwrap();
        sys.add_device(Box::new(SmartSsd::new(
            "ssd0",
            fs,
            SsdConfig {
                exports: vec!["/data/kv.db".into()],
                ..SsdConfig::default()
            },
        )));
        let client = sys.add_device(Box::new(BrokerClient::new("client0", cpu.id)));
        sys.power_on();
        sys.run_for(SimDuration::from_millis(60));

        let cpu_dev: &CpuDevice<IdleApp> = sys.device_as(cpu).unwrap();
        assert!(cpu_dev.directory_len() >= 3, "fs + loader + file service");
        assert_eq!(cpu_dev.stats().opens_brokered, 1);
        assert!(cpu_dev.stats().interrupts > 0);
        let c: &BrokerClient = sys.device_as(client).unwrap();
        assert!(c.got_conn.is_some(), "brokered open completed");
        assert!(!c.denied);
    }

    /// CPU-hosted echo app: the conventional data path.
    struct EchoCpuApp {
        echoed: u64,
    }

    impl CpuApp for EchoCpuApp {
        fn app_name(&self) -> &str {
            "cpu-echo"
        }

        fn on_start(&mut self, _env: &mut KernelEnv<'_, '_>) {}

        fn on_packet(&mut self, env: &mut KernelEnv<'_, '_>, src: PortId, payload: Vec<u8>) {
            self.echoed += 1;
            env.send_packet(src, payload);
        }

        fn on_event(&mut self, _env: &mut KernelEnv<'_, '_>, _ev: MonitorEvent) {}
    }

    struct PingHost {
        nic_port: PortId,
        sent_at: Option<lastcpu_sim::SimTime>,
        rtt: Option<SimDuration>,
    }

    impl NetHost for PingHost {
        fn name(&self) -> &str {
            "ping"
        }

        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            // Retry until the machine is up (the kernel boots last).
            ctx.set_timer(SimDuration::from_millis(1), 1);
        }

        fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: Frame) {
            assert_eq!(frame.payload, b"ping");
            if self.rtt.is_none() {
                self.rtt = Some(ctx.now.since(self.sent_at.unwrap()));
            }
        }

        fn on_timer(&mut self, ctx: &mut HostCtx<'_>, _token: u64) {
            self.retry(ctx);
        }
    }

    impl PingHost {
        fn retry(&mut self, ctx: &mut HostCtx<'_>) {
            if self.rtt.is_none() {
                self.sent_at = Some(ctx.now);
                ctx.net_tx(self.nic_port, b"ping".to_vec());
                ctx.set_timer(SimDuration::from_millis(2), 1);
            }
        }
    }

    #[test]
    fn cpu_mediated_echo_costs_more_than_smart_nic_echo() {
        // Baseline: packet crosses the kernel twice.
        let mut sys = System::new(SystemConfig::default());
        let cpu = sys.add_device_with("cpu0", "cpu", |id, dram| {
            Box::new(CpuDevice::new("cpu0", id, dram, EchoCpuApp { echoed: 0 }))
        });
        let nic = sys.add_net_device(Box::new(crate::dumbnic::DumbNic::new("nic0", cpu.id)));
        let nic_port = sys.device_port(nic).unwrap();
        let host_port = sys.add_host(Box::new(PingHost {
            nic_port,
            sent_at: None,
            rtt: None,
        }));
        sys.power_on();
        sys.run_for(SimDuration::from_millis(60));
        let h: &PingHost = sys.host_as(host_port).unwrap();
        let baseline_rtt = h.rtt.expect("baseline echo returned");
        let cpu_dev: &CpuDevice<EchoCpuApp> = sys.device_as(cpu).unwrap();
        assert_eq!(cpu_dev.app().echoed, 1);
        assert!(cpu_dev.stats().packets == 1);

        // CPU-less: the smart NIC answers at the edge.
        let mut sys2 = System::new(SystemConfig::default());
        sys2.add_memctl("memctl0");
        let snic = sys2.add_net_device(Box::new(lastcpu_devices::nic::SmartNic::new(
            "nic0",
            lastcpu_devices::nic::EchoApp::new(),
        )));
        let snic_port = sys2.device_port(snic).unwrap();
        let host2 = sys2.add_host(Box::new(PingHost {
            nic_port: snic_port,
            sent_at: None,
            rtt: None,
        }));
        sys2.power_on();
        sys2.run_for(SimDuration::from_millis(60));
        let h2: &PingHost = sys2.host_as(host2).unwrap();
        let smart_rtt = h2.rtt.expect("smart echo returned");

        assert!(
            baseline_rtt > smart_rtt,
            "kernel detour must cost: baseline {baseline_rtt} vs smart {smart_rtt}"
        );
    }
}
