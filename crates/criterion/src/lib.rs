//! Minimal, dependency-free shim of the `criterion` API surface this
//! workspace uses.
//!
//! The build must work fully offline, so instead of the real crate we vendor
//! a small benchmarking harness with the same spelling: `Criterion`,
//! `Bencher::iter`, `black_box`, `criterion_group!` (both the positional and
//! the `name =/config =/targets =` forms) and `criterion_main!`.
//!
//! Reporting is intentionally simple — median and mean ns/iter over a fixed
//! number of timed samples — but the measurement loop is real, so relative
//! comparisons (e.g. tracing enabled vs disabled) remain meaningful.

use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark registry and runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 60 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (per-sample iteration counts
    /// are auto-calibrated).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Runs `f` as a named benchmark and prints a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Calibrate: find an iteration count that runs for ~2ms per sample.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed_ns: 0,
            };
            f(&mut b);
            if b.elapsed_ns >= 2_000_000 || iters >= 1 << 24 {
                break;
            }
            // Grow towards the 2ms target without overshooting wildly.
            iters = (iters * 2).max(iters + 1);
        }

        let mut samples_ns_per_iter = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed_ns: 0,
            };
            f(&mut b);
            samples_ns_per_iter.push(b.elapsed_ns as f64 / iters as f64);
        }
        samples_ns_per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples_ns_per_iter[samples_ns_per_iter.len() / 2];
        let mean: f64 = samples_ns_per_iter.iter().sum::<f64>() / samples_ns_per_iter.len() as f64;
        println!(
            "{name:<44} time: [median {} mean {}] ({} samples x {} iters)",
            fmt_ns(median),
            fmt_ns(mean),
            self.sample_size,
            iters
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos().max(1);
    }
}

/// Groups benchmark functions; both upstream invocation forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }
}
