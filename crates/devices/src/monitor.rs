//! The resource-monitor runtime embedded in every self-managing device.
//!
//! The paper (§2.1): each device "must implement logic to multiplex its
//! resources into multiple instances, provide isolation between the
//! instances and handle error conditions. This echos the requirements of a
//! resource monitor as in the LegoOS split-kernel design." And §4
//! (*Programmability*): applications link against "a library that
//! encapsulates the functionality of the system bus, and provides
//! functions for service discovery, resource allocation, etc."
//!
//! [`Monitor`] is both: the server-side context multiplexer and the
//! client-side library. Device code feeds it every incoming envelope and
//! timer tick; it returns [`MonitorEvent`]s for the things the application
//! must decide, and transparently handles the rest (discovery replies,
//! heartbeats, auth checks, peer-failure cleanup).

use std::collections::{HashMap, HashSet};

use lastcpu_bus::{
    ConnId, DeviceId, Dst, Envelope, ErrorCode, Payload, RequestId, ServiceDesc, ServiceId, Status,
    Token,
};
use lastcpu_sim::SimDuration;

use crate::auth;
use crate::device::DeviceCtx;

/// Timer-token namespace reserved by the monitor (top bit set).
const TOKEN_BASE: u64 = 1 << 63;
/// Heartbeat timer token.
const TOKEN_HEARTBEAT: u64 = TOKEN_BASE;
/// Discovery-window tokens: `TOKEN_DISCOVERY | op`.
const TOKEN_DISCOVERY: u64 = TOKEN_BASE | (1 << 62);

/// How a service authenticates `OpenRequest` tokens.
#[derive(Debug, Clone)]
pub enum AuthMode {
    /// Accept everything (public service).
    Open,
    /// Accept tokens from an explicit allow-list.
    Local(HashSet<Token>),
    /// Accept tokens sealed with a shared secret by an authentication
    /// service (capability-style; see [`crate::auth`]).
    Sealed {
        /// The secret shared with the auth service at deployment.
        secret: u64,
    },
}

impl AuthMode {
    /// Validates `token`, returning the authenticated principal if any.
    ///
    /// `Ok(None)` means "valid but anonymous" (open services).
    pub fn check(&self, token: Token) -> Result<Option<u64>, Status> {
        match self {
            AuthMode::Open => Ok(None),
            AuthMode::Local(set) => {
                if set.contains(&token) {
                    Ok(None)
                } else {
                    Err(Status::Denied)
                }
            }
            AuthMode::Sealed { secret } => match auth::verify(*secret, token) {
                Some(principal) => Ok(Some(principal)),
                None => Err(Status::Denied),
            },
        }
    }
}

/// A pending client-side operation.
#[derive(Debug)]
enum PendingOp {
    Discover {
        hits: Vec<(DeviceId, ServiceDesc)>,
        /// The query's request id (QueryHits echo it, so hits correlate to
        /// this exact discovery even when several overlap).
        req: RequestId,
    },
    Open {
        target: DeviceId,
    },
    Alloc,
    Share,
    Free,
    Close {
        conn: ConnId,
    },
}

/// A connection served by this device (one isolation context).
#[derive(Debug, Clone)]
pub struct ServerConn {
    /// The connection id we assigned.
    pub conn: ConnId,
    /// The client device.
    pub peer: DeviceId,
    /// Which of our services it is connected to.
    pub service: ServiceId,
    /// Authenticated principal, when auth produced one.
    pub principal: Option<u64>,
}

/// Events surfaced to the device application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorEvent {
    /// The bus acknowledged our `Hello`; the device is registered.
    Registered,
    /// A discovery window closed.
    DiscoveryDone {
        /// The operation handle returned by [`Monitor::discover`].
        op: u64,
        /// All `(device, service)` pairs that answered.
        hits: Vec<(DeviceId, ServiceDesc)>,
    },
    /// An `open` completed.
    OpenDone {
        /// The operation handle.
        op: u64,
        /// The serving device.
        target: DeviceId,
        /// Outcome: connection id, shared-memory requirement and service
        /// parameters on success.
        result: Result<(ConnId, u64, Vec<u8>), Status>,
    },
    /// An `alloc_shared` completed.
    AllocDone {
        /// The operation handle.
        op: u64,
        /// Region handle on success.
        result: Result<u64, Status>,
    },
    /// A `share` completed.
    ShareDone {
        /// The operation handle.
        op: u64,
        /// Outcome.
        status: Status,
    },
    /// A `free_region` completed.
    FreeDone {
        /// The operation handle.
        op: u64,
        /// Outcome.
        status: Status,
    },
    /// A `close` completed.
    CloseDone {
        /// The operation handle.
        op: u64,
        /// Outcome.
        status: Status,
    },
    /// The bus reports our IOMMU mappings changed (grant installed or
    /// revoked).
    MapChanged {
        /// Virtual base of the affected range.
        va: u64,
        /// Pages affected.
        pages: u64,
    },
    /// A client wants to open one of our services and passed
    /// authentication. Respond with [`Monitor::accept_open`] or
    /// [`Monitor::reject_open`].
    OpenRequested {
        /// Request id to echo in the response.
        req: RequestId,
        /// The requesting device.
        from: DeviceId,
        /// The requested service.
        service: ServiceId,
        /// Authenticated principal, if the auth mode produces one.
        principal: Option<u64>,
        /// Service-specific parameters.
        params: Vec<u8>,
    },
    /// A client closed a connection we were serving.
    PeerClosed {
        /// The closed connection.
        conn: ConnId,
    },
    /// A doorbell rang on a connection (either side).
    Doorbell {
        /// The connection.
        conn: ConnId,
        /// The value written.
        value: u64,
    },
    /// An error notification arrived.
    Error {
        /// Error class.
        code: ErrorCode,
        /// Affected connection (0 when N/A).
        conn: ConnId,
        /// Detail text.
        detail: String,
    },
    /// A device we had connections with failed; the listed connections are
    /// gone (already cleaned up).
    PeerFailed {
        /// The failed device.
        device: DeviceId,
        /// Client-side connections that died with it.
        lost_conns: Vec<ConnId>,
        /// Server-side connections that died with it.
        dropped_server_conns: Vec<ConnId>,
    },
}

/// The monitor state machine.
pub struct Monitor {
    services: Vec<(ServiceDesc, AuthMode)>,
    ops: HashMap<u64, PendingOp>,
    next_op: u64,
    req_to_op: HashMap<RequestId, u64>,
    conns: HashMap<ConnId, ServerConn>,
    next_conn: u64,
    /// Client-side: connections we opened, by serving device.
    opened: HashMap<ConnId, DeviceId>,
    discovery_window: SimDuration,
    heartbeat: Option<SimDuration>,
    registered: bool,
}

impl Default for Monitor {
    fn default() -> Self {
        Self::new()
    }
}

impl Monitor {
    /// A monitor with a 50 µs discovery window and no heartbeat.
    pub fn new() -> Self {
        Monitor {
            services: Vec::new(),
            ops: HashMap::new(),
            next_op: 1,
            req_to_op: HashMap::new(),
            conns: HashMap::new(),
            next_conn: 1,
            opened: HashMap::new(),
            discovery_window: SimDuration::from_micros(50),
            heartbeat: None,
            registered: false,
        }
    }

    /// Changes how long [`Monitor::discover`] waits for answers.
    pub fn set_discovery_window(&mut self, w: SimDuration) {
        self.discovery_window = w;
    }

    /// Whether the bus has acknowledged our `Hello`.
    pub fn is_registered(&self) -> bool {
        self.registered
    }

    /// Connections currently served, in unspecified order.
    pub fn server_conns(&self) -> impl Iterator<Item = &ServerConn> {
        self.conns.values()
    }

    /// Looks up a served connection.
    pub fn server_conn(&self, conn: ConnId) -> Option<&ServerConn> {
        self.conns.get(&conn)
    }

    /// Number of client-side connections currently open.
    pub fn open_conn_count(&self) -> usize {
        self.opened.len()
    }

    // --- Startup -----------------------------------------------------

    /// Sends `Hello` (after the device's self-test) and announces services.
    pub fn start(&mut self, ctx: &mut DeviceCtx<'_>, name: &str, kind: &str) {
        ctx.send_bus(
            Dst::Bus,
            Payload::Hello {
                name: name.to_string(),
                kind: kind.to_string(),
            },
        );
        for (svc, _) in &self.services {
            ctx.send_bus(
                Dst::Bus,
                Payload::Announce {
                    service: svc.clone(),
                },
            );
        }
    }

    /// Registers a service (before or after `start`; announces immediately
    /// when the context is provided post-start).
    pub fn add_service(&mut self, svc: ServiceDesc, auth: AuthMode) {
        self.services.retain(|(s, _)| s.id != svc.id);
        self.services.push((svc, auth));
    }

    /// Announces one service on the bus (for services added after start).
    pub fn announce(&self, ctx: &mut DeviceCtx<'_>, id: ServiceId) {
        if let Some((svc, _)) = self.services.iter().find(|(s, _)| s.id == id) {
            ctx.send_bus(
                Dst::Bus,
                Payload::Announce {
                    service: svc.clone(),
                },
            );
        }
    }

    /// Enables periodic heartbeats.
    pub fn enable_heartbeat(&mut self, ctx: &mut DeviceCtx<'_>, interval: SimDuration) {
        self.heartbeat = Some(interval);
        ctx.set_timer(interval, TOKEN_HEARTBEAT);
    }

    // --- Client-side operations ---------------------------------------

    fn new_op(&mut self, op: PendingOp) -> u64 {
        let id = self.next_op;
        self.next_op += 1;
        self.ops.insert(id, op);
        id
    }

    fn track(&mut self, req: RequestId, op: u64) {
        self.req_to_op.insert(req, op);
    }

    /// Starts service discovery for `pattern` (exact name or `prefix*`).
    ///
    /// Emits [`MonitorEvent::DiscoveryDone`] when the window closes.
    /// Overlapping discoveries are safe: answers echo the query's request
    /// id, so each hit is attributed to exactly the discovery that asked.
    pub fn discover(&mut self, ctx: &mut DeviceCtx<'_>, pattern: &str) -> u64 {
        let req = ctx.send_bus(
            Dst::Bus,
            Payload::Query {
                pattern: pattern.to_string(),
            },
        );
        let op = self.new_op(PendingOp::Discover {
            hits: Vec::new(),
            req,
        });
        self.track(req, op);
        ctx.set_timer(self.discovery_window, TOKEN_DISCOVERY | op);
        op
    }

    /// Opens a service on another device.
    pub fn open(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        target: DeviceId,
        service: ServiceId,
        token: Token,
        params: Vec<u8>,
    ) -> u64 {
        let op = self.new_op(PendingOp::Open { target });
        let req = ctx.send_bus(
            Dst::Device(target),
            Payload::OpenRequest {
                service,
                token,
                params,
            },
        );
        self.track(req, op);
        op
    }

    /// Requests shared memory from the memory controller (§3 step 5).
    pub fn alloc_shared(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        memctl: DeviceId,
        pasid: u32,
        va: u64,
        bytes: u64,
        perms: u8,
    ) -> u64 {
        let op = self.new_op(PendingOp::Alloc);
        let req = ctx.send_bus(
            Dst::Device(memctl),
            Payload::MemAlloc {
                pasid,
                va,
                bytes,
                perms,
            },
        );
        self.track(req, op);
        op
    }

    /// Grants a region we own to another device (§3 step 7).
    #[allow(clippy::too_many_arguments)] // Mirrors the wire message fields.
    pub fn share(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        memctl: DeviceId,
        region: u64,
        target: DeviceId,
        pasid: u32,
        va: u64,
        perms: u8,
    ) -> u64 {
        let op = self.new_op(PendingOp::Share);
        let req = ctx.send_bus(
            Dst::Device(memctl),
            Payload::Share {
                region,
                target,
                pasid,
                va,
                perms,
            },
        );
        self.track(req, op);
        op
    }

    /// Releases a region we own.
    pub fn free_region(&mut self, ctx: &mut DeviceCtx<'_>, memctl: DeviceId, region: u64) -> u64 {
        let op = self.new_op(PendingOp::Free);
        let req = ctx.send_bus(Dst::Device(memctl), Payload::MemFree { region });
        self.track(req, op);
        op
    }

    /// Closes a connection we opened.
    pub fn close(&mut self, ctx: &mut DeviceCtx<'_>, conn: ConnId) -> Option<u64> {
        let target = self.opened.get(&conn).copied()?;
        let op = self.new_op(PendingOp::Close { conn });
        let req = ctx.send_bus(Dst::Device(target), Payload::CloseRequest { conn });
        self.track(req, op);
        Some(op)
    }

    // --- Server-side responses ------------------------------------------

    /// Accepts a pending [`MonitorEvent::OpenRequested`], allocating the
    /// connection context.
    #[allow(clippy::too_many_arguments)] // Mirrors the open-response fields.
    pub fn accept_open(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        req: RequestId,
        from: DeviceId,
        service: ServiceId,
        principal: Option<u64>,
        shm_bytes: u64,
        params: Vec<u8>,
    ) -> ConnId {
        let conn = ConnId(self.next_conn);
        self.next_conn += 1;
        self.conns.insert(
            conn,
            ServerConn {
                conn,
                peer: from,
                service,
                principal,
            },
        );
        ctx.send_bus_with_req(
            Dst::Device(from),
            req,
            Payload::OpenResponse {
                status: Status::Ok,
                conn,
                shm_bytes,
                params,
            },
        );
        conn
    }

    /// Rejects a pending [`MonitorEvent::OpenRequested`].
    pub fn reject_open(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        req: RequestId,
        from: DeviceId,
        status: Status,
    ) {
        ctx.send_bus_with_req(
            Dst::Device(from),
            req,
            Payload::OpenResponse {
                status,
                conn: ConnId(0),
                shm_bytes: 0,
                params: Vec::new(),
            },
        );
    }

    /// Drops a served connection (after a fatal per-connection error),
    /// notifying the peer (§4: "It must send a message to any consumer
    /// using that resource and then reset the resource").
    pub fn reset_conn(&mut self, ctx: &mut DeviceCtx<'_>, conn: ConnId, detail: &str) {
        if let Some(c) = self.conns.remove(&conn) {
            ctx.send_bus(
                Dst::Device(c.peer),
                Payload::ErrorNotify {
                    code: ErrorCode::ServiceReset,
                    conn,
                    detail: detail.to_string(),
                },
            );
        }
    }

    // --- Event pump ----------------------------------------------------

    /// Whether `name` matches a discovery `pattern` (exact, or `prefix*`).
    pub fn match_pattern(pattern: &str, name: &str) -> bool {
        match pattern.strip_suffix('*') {
            Some(prefix) => name.starts_with(prefix),
            None => pattern == name,
        }
    }

    /// Feeds one incoming envelope; returns events for the application.
    pub fn handle(&mut self, ctx: &mut DeviceCtx<'_>, env: &Envelope) -> Vec<MonitorEvent> {
        let mut ev = Vec::new();
        match &env.payload {
            Payload::HelloAck { .. } => {
                self.registered = true;
                ev.push(MonitorEvent::Registered);
            }
            Payload::Query { pattern } => {
                // Answer for every matching service we host.
                for (svc, _) in &self.services {
                    if Self::match_pattern(pattern, &svc.name) {
                        ctx.send_bus_with_req(
                            Dst::Device(env.src),
                            env.req,
                            Payload::QueryHit {
                                device: ctx.dev,
                                service: svc.clone(),
                            },
                        );
                    }
                }
            }
            Payload::QueryHit { device, service } => {
                // Do not remove the mapping: one query collects many hits.
                if let Some(&op) = self.req_to_op.get(&env.req) {
                    if let Some(PendingOp::Discover { hits, .. }) = self.ops.get_mut(&op) {
                        hits.push((*device, service.clone()));
                    }
                }
            }
            Payload::OpenRequest {
                service,
                token,
                params,
            } => match self.services.iter().find(|(s, _)| s.id == *service) {
                None => {
                    self.reject_open(ctx, env.req, env.src, Status::NotFound);
                }
                Some((_, auth)) => match auth.check(*token) {
                    Ok(principal) => ev.push(MonitorEvent::OpenRequested {
                        req: env.req,
                        from: env.src,
                        service: *service,
                        principal,
                        params: params.clone(),
                    }),
                    Err(status) => {
                        self.reject_open(ctx, env.req, env.src, status);
                    }
                },
            },
            Payload::OpenResponse {
                status,
                conn,
                shm_bytes,
                params,
            } => {
                if let Some(op) = self.req_to_op.remove(&env.req) {
                    if let Some(PendingOp::Open { target, .. }) = self.ops.remove(&op) {
                        let result = if status.is_ok() {
                            self.opened.insert(*conn, target);
                            Ok((*conn, *shm_bytes, params.clone()))
                        } else {
                            Err(*status)
                        };
                        ev.push(MonitorEvent::OpenDone { op, target, result });
                    }
                }
            }
            Payload::CloseRequest { conn } => {
                let status = if self.conns.remove(conn).is_some() {
                    ev.push(MonitorEvent::PeerClosed { conn: *conn });
                    Status::Ok
                } else {
                    Status::NotFound
                };
                ctx.send_bus_with_req(
                    Dst::Device(env.src),
                    env.req,
                    Payload::CloseResponse { status },
                );
            }
            Payload::CloseResponse { status } => {
                if let Some(op) = self.req_to_op.remove(&env.req) {
                    if let Some(PendingOp::Close { conn, .. }) = self.ops.remove(&op) {
                        self.opened.remove(&conn);
                        ev.push(MonitorEvent::CloseDone {
                            op,
                            status: *status,
                        });
                    }
                }
            }
            Payload::MemAllocResponse { status, region } => {
                if let Some(op) = self.req_to_op.remove(&env.req) {
                    if matches!(self.ops.remove(&op), Some(PendingOp::Alloc)) {
                        let result = if status.is_ok() {
                            Ok(*region)
                        } else {
                            Err(*status)
                        };
                        ev.push(MonitorEvent::AllocDone { op, result });
                    }
                }
            }
            Payload::ShareResponse { status } => {
                if let Some(op) = self.req_to_op.remove(&env.req) {
                    if matches!(self.ops.remove(&op), Some(PendingOp::Share)) {
                        ev.push(MonitorEvent::ShareDone {
                            op,
                            status: *status,
                        });
                    }
                }
            }
            Payload::MemFreeResponse { status } => {
                if let Some(op) = self.req_to_op.remove(&env.req) {
                    if matches!(self.ops.remove(&op), Some(PendingOp::Free)) {
                        ev.push(MonitorEvent::FreeDone {
                            op,
                            status: *status,
                        });
                    }
                }
            }
            Payload::MapComplete { va, pages, .. } => {
                ev.push(MonitorEvent::MapChanged {
                    va: *va,
                    pages: *pages,
                });
            }
            Payload::Doorbell { conn, value } => {
                ev.push(MonitorEvent::Doorbell {
                    conn: *conn,
                    value: *value,
                });
            }
            Payload::ErrorNotify { code, conn, detail } => {
                ev.push(MonitorEvent::Error {
                    code: *code,
                    conn: *conn,
                    detail: detail.clone(),
                });
            }
            Payload::DeviceFailed { device } => {
                let lost: Vec<ConnId> = self
                    .opened
                    .iter()
                    .filter(|(_, &d)| d == *device)
                    .map(|(&c, _)| c)
                    .collect();
                for c in &lost {
                    self.opened.remove(c);
                }
                let dropped: Vec<ConnId> = self
                    .conns
                    .values()
                    .filter(|c| c.peer == *device)
                    .map(|c| c.conn)
                    .collect();
                for c in &dropped {
                    self.conns.remove(c);
                }
                // Always surfaced, even with no connections: an application
                // mid-handshake with the dead device must learn about it.
                ev.push(MonitorEvent::PeerFailed {
                    device: *device,
                    lost_conns: lost,
                    dropped_server_conns: dropped,
                });
            }
            // Announce/Withdraw broadcasts, heartbeat echoes etc. need no
            // application action.
            _ => {}
        }
        ev
    }

    /// Feeds a timer tick. Returns `None` when the token is not the
    /// monitor's (it belongs to the device application).
    pub fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) -> Option<Vec<MonitorEvent>> {
        if token & TOKEN_BASE == 0 {
            return None;
        }
        if token == TOKEN_HEARTBEAT {
            ctx.send_bus(Dst::Bus, Payload::Heartbeat);
            if let Some(interval) = self.heartbeat {
                ctx.set_timer(interval, TOKEN_HEARTBEAT);
            }
            return Some(Vec::new());
        }
        if token & TOKEN_DISCOVERY == TOKEN_DISCOVERY {
            let op = token & !(TOKEN_DISCOVERY);
            if let Some(PendingOp::Discover { hits, req }) = self.ops.remove(&op) {
                self.req_to_op.remove(&req);
                return Some(vec![MonitorEvent::DiscoveryDone { op, hits }]);
            }
            return Some(Vec::new());
        }
        Some(Vec::new())
    }

    /// Wipes all state (device reset). The device must `start` again.
    pub fn reset(&mut self) {
        self.ops.clear();
        self.req_to_op.clear();
        self.conns.clear();
        self.opened.clear();
        self.registered = false;
    }
}

#[cfg(test)]
mod discovery_correlation_tests {
    use super::*;
    use lastcpu_bus::{CorrId, ResourceKind};
    use lastcpu_iommu::Iommu;
    use lastcpu_mem::Dram;
    use lastcpu_sim::MetricsHub;
    use lastcpu_sim::{DetRng, SimTime};

    #[test]
    fn overlapping_discoveries_do_not_share_hits() {
        let mut iommu = Iommu::new(16);
        let mut dram = Dram::new(1 << 20);
        let mut rng = DetRng::new(7);
        let mut req = 0u64;
        let hub = MetricsHub::new();
        let mut m = Monitor::new();
        let mut ctx = DeviceCtx::new(
            SimTime::ZERO,
            DeviceId(1),
            None,
            &mut iommu,
            &mut dram,
            &mut rng,
            &mut req,
            CorrId::NONE,
            &hub,
        );
        let op_a = m.discover(&mut ctx, "alpha:*");
        let op_b = m.discover(&mut ctx, "beta:*");
        let (actions, _, _) = ctx.finish();
        // Extract the two query request ids, in order.
        let reqs: Vec<RequestId> = actions
            .iter()
            .filter_map(|a| match a {
                crate::device::Action::SendBus(e) if matches!(e.payload, Payload::Query { .. }) => {
                    Some(e.req)
                }
                _ => None,
            })
            .collect();
        assert_eq!(reqs.len(), 2);

        let svc = |name: &str| ServiceDesc {
            id: ServiceId(1),
            name: name.into(),
            resource: ResourceKind::Compute,
        };
        // A hit answering query B arrives first; then one answering A.
        let mut ctx = DeviceCtx::new(
            SimTime::ZERO,
            DeviceId(1),
            None,
            &mut iommu,
            &mut dram,
            &mut rng,
            &mut req,
            CorrId::NONE,
            &hub,
        );
        m.handle(
            &mut ctx,
            &Envelope {
                src: DeviceId(5),
                dst: Dst::Device(DeviceId(1)),
                req: reqs[1],
                corr: CorrId::NONE,
                payload: Payload::QueryHit {
                    device: DeviceId(5),
                    service: svc("beta:thing"),
                },
            },
        );
        m.handle(
            &mut ctx,
            &Envelope {
                src: DeviceId(6),
                dst: Dst::Device(DeviceId(1)),
                req: reqs[0],
                corr: CorrId::NONE,
                payload: Payload::QueryHit {
                    device: DeviceId(6),
                    service: svc("alpha:thing"),
                },
            },
        );
        // Close both windows.
        let ev_a = m.on_timer(&mut ctx, (1 << 63) | (1 << 62) | op_a).unwrap();
        let ev_b = m.on_timer(&mut ctx, (1 << 63) | (1 << 62) | op_b).unwrap();
        match (&ev_a[0], &ev_b[0]) {
            (
                MonitorEvent::DiscoveryDone { op: oa, hits: ha },
                MonitorEvent::DiscoveryDone { op: ob, hits: hb },
            ) => {
                assert_eq!(*oa, op_a);
                assert_eq!(*ob, op_b);
                assert_eq!(ha.len(), 1);
                assert_eq!(hb.len(), 1);
                assert_eq!(ha[0].1.name, "alpha:thing");
                assert_eq!(hb[0].1.name, "beta:thing");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

impl AuthMode {
    /// Serializes into a snapshot section.
    pub fn snap_encode(&self, w: &mut lastcpu_snap::SnapWriter) {
        match self {
            AuthMode::Open => w.put_u8(0),
            AuthMode::Local(set) => {
                w.put_u8(1);
                let mut tokens: Vec<u128> = set.iter().map(|t| t.0).collect();
                tokens.sort_unstable();
                w.put_len(tokens.len());
                for t in tokens {
                    w.put_u128(t);
                }
            }
            AuthMode::Sealed { secret } => {
                w.put_u8(2);
                w.put_u64(*secret);
            }
        }
    }

    /// Inverse of [`AuthMode::snap_encode`].
    pub fn snap_decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<Self> {
        Ok(match r.u8()? {
            0 => AuthMode::Open,
            1 => {
                let n = r.len()?;
                let mut set = HashSet::with_capacity(n);
                for _ in 0..n {
                    set.insert(Token(r.u128()?));
                }
                AuthMode::Local(set)
            }
            2 => AuthMode::Sealed { secret: r.u64()? },
            t => return Err(r.corrupt(format!("bad AuthMode tag {t}"))),
        })
    }
}

impl PendingOp {
    fn snap_encode(&self, w: &mut lastcpu_snap::SnapWriter) {
        match self {
            PendingOp::Discover { hits, req } => {
                w.put_u8(0);
                w.put_len(hits.len());
                for (d, svc) in hits {
                    w.put_u32(d.0);
                    svc.snap_encode(w);
                }
                w.put_u64(req.0);
            }
            PendingOp::Open { target } => {
                w.put_u8(1);
                w.put_u32(target.0);
            }
            PendingOp::Alloc => w.put_u8(2),
            PendingOp::Share => w.put_u8(3),
            PendingOp::Free => w.put_u8(4),
            PendingOp::Close { conn } => {
                w.put_u8(5);
                w.put_u64(conn.0);
            }
        }
    }

    fn snap_decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<Self> {
        Ok(match r.u8()? {
            0 => {
                let n = r.len()?;
                let mut hits = Vec::with_capacity(n);
                for _ in 0..n {
                    let d = DeviceId(r.u32()?);
                    hits.push((d, ServiceDesc::snap_decode(r)?));
                }
                PendingOp::Discover {
                    hits,
                    req: RequestId(r.u64()?),
                }
            }
            1 => PendingOp::Open {
                target: DeviceId(r.u32()?),
            },
            2 => PendingOp::Alloc,
            3 => PendingOp::Share,
            4 => PendingOp::Free,
            5 => PendingOp::Close {
                conn: ConnId(r.u64()?),
            },
            t => return Err(r.corrupt(format!("bad PendingOp tag {t}"))),
        })
    }
}

impl lastcpu_snap::Snapshot for Monitor {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_len(self.services.len());
        for (svc, auth) in &self.services {
            svc.snap_encode(w);
            auth.snap_encode(w);
        }
        let mut ops: Vec<_> = self.ops.keys().copied().collect();
        ops.sort_unstable();
        w.put_len(ops.len());
        for id in ops {
            w.put_u64(id);
            self.ops[&id].snap_encode(w);
        }
        w.put_u64(self.next_op);
        let mut reqs: Vec<_> = self.req_to_op.iter().map(|(r, o)| (r.0, *o)).collect();
        reqs.sort_unstable();
        w.put_len(reqs.len());
        for (req, op) in reqs {
            w.put_u64(req);
            w.put_u64(op);
        }
        let mut conns: Vec<_> = self.conns.keys().copied().collect();
        conns.sort_by_key(|c| c.0);
        w.put_len(conns.len());
        for c in conns {
            let sc = &self.conns[&c];
            w.put_u64(sc.conn.0);
            w.put_u32(sc.peer.0);
            w.put_u16(sc.service.0);
            w.put_opt(sc.principal.as_ref(), |w, p| w.put_u64(*p));
        }
        w.put_u64(self.next_conn);
        let mut opened: Vec<_> = self.opened.iter().map(|(c, d)| (c.0, d.0)).collect();
        opened.sort_unstable();
        w.put_len(opened.len());
        for (c, d) in opened {
            w.put_u64(c);
            w.put_u32(d);
        }
        w.put_u64(self.discovery_window.as_nanos());
        w.put_opt(self.heartbeat.as_ref(), |w, h| w.put_u64(h.as_nanos()));
        w.put_bool(self.registered);
    }
}

impl lastcpu_snap::Restore for Monitor {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        let n = r.len()?;
        self.services = Vec::with_capacity(n);
        for _ in 0..n {
            let svc = ServiceDesc::snap_decode(r)?;
            let auth = AuthMode::snap_decode(r)?;
            self.services.push((svc, auth));
        }
        let n = r.len()?;
        self.ops = HashMap::with_capacity(n);
        for _ in 0..n {
            let id = r.u64()?;
            self.ops.insert(id, PendingOp::snap_decode(r)?);
        }
        self.next_op = r.u64()?;
        let n = r.len()?;
        self.req_to_op = HashMap::with_capacity(n);
        for _ in 0..n {
            let req = RequestId(r.u64()?);
            let op = r.u64()?;
            self.req_to_op.insert(req, op);
        }
        let n = r.len()?;
        self.conns = HashMap::with_capacity(n);
        for _ in 0..n {
            let conn = ConnId(r.u64()?);
            let sc = ServerConn {
                conn,
                peer: DeviceId(r.u32()?),
                service: ServiceId(r.u16()?),
                principal: r.opt(|r| r.u64())?,
            };
            self.conns.insert(conn, sc);
        }
        self.next_conn = r.u64()?;
        let n = r.len()?;
        self.opened = HashMap::with_capacity(n);
        for _ in 0..n {
            let c = ConnId(r.u64()?);
            let d = DeviceId(r.u32()?);
            self.opened.insert(c, d);
        }
        self.discovery_window = SimDuration::from_nanos(r.u64()?);
        self.heartbeat = r.opt(|r| Ok(SimDuration::from_nanos(r.u64()?)))?;
        self.registered = r.bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastcpu_bus::CorrId;
    use lastcpu_bus::ResourceKind;
    use lastcpu_iommu::Iommu;
    use lastcpu_mem::Dram;
    use lastcpu_sim::MetricsHub;
    use lastcpu_sim::{DetRng, SimTime};

    struct Fix {
        iommu: Iommu,
        dram: Dram,
        rng: DetRng,
        req: u64,
        stats: MetricsHub,
    }

    impl Fix {
        fn new() -> Self {
            Fix {
                iommu: Iommu::new(16),
                dram: Dram::new(1 << 20),
                rng: DetRng::new(7),
                req: 0,
                stats: MetricsHub::new(),
            }
        }

        fn ctx(&mut self) -> DeviceCtx<'_> {
            DeviceCtx::new(
                SimTime::ZERO,
                DeviceId(1),
                None,
                &mut self.iommu,
                &mut self.dram,
                &mut self.rng,
                &mut self.req,
                CorrId::NONE,
                &self.stats,
            )
        }
    }

    fn svc(id: u16, name: &str) -> ServiceDesc {
        ServiceDesc {
            id: ServiceId(id),
            name: name.to_string(),
            resource: ResourceKind::Storage,
        }
    }

    fn sent(ctx: DeviceCtx<'_>) -> Vec<Envelope> {
        let (actions, _, _) = ctx.finish();
        actions
            .into_iter()
            .filter_map(|a| match a {
                crate::device::Action::SendBus(e) => Some(e),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn start_sends_hello_and_announces() {
        let mut fix = Fix::new();
        let mut m = Monitor::new();
        m.add_service(svc(1, "file:/a"), AuthMode::Open);
        let mut ctx = fix.ctx();
        m.start(&mut ctx, "ssd0", "smart-ssd");
        let msgs = sent(ctx);
        assert!(matches!(msgs[0].payload, Payload::Hello { .. }));
        assert!(matches!(msgs[1].payload, Payload::Announce { .. }));
    }

    #[test]
    fn registered_on_hello_ack() {
        let mut fix = Fix::new();
        let mut m = Monitor::new();
        let mut ctx = fix.ctx();
        let ev = m.handle(
            &mut ctx,
            &Envelope {
                src: DeviceId::BUS,
                dst: Dst::Device(DeviceId(1)),
                req: RequestId(0),
                corr: CorrId::NONE,
                payload: Payload::HelloAck {
                    assigned: DeviceId(1),
                },
            },
        );
        assert_eq!(ev, vec![MonitorEvent::Registered]);
        assert!(m.is_registered());
    }

    #[test]
    fn query_answered_for_matching_services() {
        let mut fix = Fix::new();
        let mut m = Monitor::new();
        m.add_service(svc(1, "file:/data/kv.db"), AuthMode::Open);
        m.add_service(svc(2, "file:/logs/app.log"), AuthMode::Open);
        m.add_service(svc(3, "loader"), AuthMode::Open);
        let mut ctx = fix.ctx();
        m.handle(
            &mut ctx,
            &Envelope {
                src: DeviceId(9),
                dst: Dst::Broadcast,
                req: RequestId(5),
                corr: CorrId::NONE,
                payload: Payload::Query {
                    pattern: "file:*".into(),
                },
            },
        );
        let msgs = sent(ctx);
        assert_eq!(msgs.len(), 2);
        for msg in &msgs {
            assert_eq!(msg.dst, Dst::Device(DeviceId(9)));
            assert_eq!(msg.req, RequestId(5));
            assert!(matches!(msg.payload, Payload::QueryHit { .. }));
        }
    }

    #[test]
    fn exact_query_matches_exactly() {
        let mut fix = Fix::new();
        let mut m = Monitor::new();
        m.add_service(svc(1, "loader"), AuthMode::Open);
        m.add_service(svc(2, "loader2"), AuthMode::Open);
        let mut ctx = fix.ctx();
        m.handle(
            &mut ctx,
            &Envelope {
                src: DeviceId(9),
                dst: Dst::Broadcast,
                req: RequestId(5),
                corr: CorrId::NONE,
                payload: Payload::Query {
                    pattern: "loader".into(),
                },
            },
        );
        assert_eq!(sent(ctx).len(), 1);
    }

    #[test]
    fn discovery_collects_hits_until_window() {
        let mut fix = Fix::new();
        let mut m = Monitor::new();
        let mut ctx = fix.ctx();
        let op = m.discover(&mut ctx, "file:*");
        let (actions, _, _) = ctx.finish();
        assert!(actions.iter().any(|a| matches!(
            a,
            crate::device::Action::SendBus(Envelope {
                payload: Payload::Query { .. },
                ..
            })
        )));
        let timer_token = actions
            .iter()
            .find_map(|a| match a {
                crate::device::Action::SetTimer { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();

        let mut ctx = fix.ctx();
        m.handle(
            &mut ctx,
            &Envelope {
                src: DeviceId(2),
                dst: Dst::Device(DeviceId(1)),
                req: RequestId(0),
                corr: CorrId::NONE,
                payload: Payload::QueryHit {
                    device: DeviceId(2),
                    service: svc(4, "file:/data/kv.db"),
                },
            },
        );
        let ev = m.on_timer(&mut ctx, timer_token).unwrap();
        match &ev[0] {
            MonitorEvent::DiscoveryDone { op: done, hits } => {
                assert_eq!(*done, op);
                assert_eq!(hits.len(), 1);
                assert_eq!(hits[0].0, DeviceId(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn open_flow_client_and_server() {
        let mut fix_client = Fix::new();
        let mut fix_server = Fix::new();
        let mut client = Monitor::new();
        let mut server = Monitor::new();
        server.add_service(svc(1, "file:/x"), AuthMode::Open);

        // Client opens.
        let mut cctx = fix_client.ctx();
        let op = client.open(&mut cctx, DeviceId(2), ServiceId(1), Token::NONE, vec![9]);
        let msgs = sent(cctx);
        let open_req = msgs.into_iter().next().unwrap();

        // Server receives, app accepts.
        let mut sctx = fix_server.ctx();
        let ev = server.handle(&mut sctx, &open_req);
        let (req, from, service, principal) = match &ev[0] {
            MonitorEvent::OpenRequested {
                req,
                from,
                service,
                principal,
                params,
            } => {
                assert_eq!(params, &vec![9]);
                (*req, *from, *service, *principal)
            }
            other => panic!("unexpected {other:?}"),
        };
        let conn = server.accept_open(&mut sctx, req, from, service, principal, 65536, vec![7]);
        let resp = sent(sctx).into_iter().next().unwrap();

        // Client resolves.
        let mut cctx = fix_client.ctx();
        let ev = client.handle(&mut cctx, &resp);
        match &ev[0] {
            MonitorEvent::OpenDone {
                op: done,
                target,
                result: Ok((c, shm, params)),
            } => {
                assert_eq!(*done, op);
                assert_eq!(*target, DeviceId(2));
                assert_eq!(*c, conn);
                assert_eq!(*shm, 65536);
                assert_eq!(params, &vec![7]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(client.open_conn_count(), 1);
        assert_eq!(server.server_conns().count(), 1);
    }

    #[test]
    fn open_denied_by_local_auth() {
        let mut fix = Fix::new();
        let mut server = Monitor::new();
        let mut allowed = HashSet::new();
        allowed.insert(Token(42));
        server.add_service(svc(1, "secret"), AuthMode::Local(allowed));
        let mut ctx = fix.ctx();
        let ev = server.handle(
            &mut ctx,
            &Envelope {
                src: DeviceId(9),
                dst: Dst::Device(DeviceId(1)),
                req: RequestId(3),
                corr: CorrId::NONE,
                payload: Payload::OpenRequest {
                    service: ServiceId(1),
                    token: Token(7), // wrong
                    params: vec![],
                },
            },
        );
        assert!(ev.is_empty(), "auth failure handled internally");
        let msgs = sent(ctx);
        assert!(matches!(
            msgs[0].payload,
            Payload::OpenResponse {
                status: Status::Denied,
                ..
            }
        ));
    }

    #[test]
    fn open_sealed_auth_extracts_principal() {
        let secret = 0xFEED;
        let token = auth::seal(secret, 1234);
        let mut fix = Fix::new();
        let mut server = Monitor::new();
        server.add_service(svc(1, "secure"), AuthMode::Sealed { secret });
        let mut ctx = fix.ctx();
        let ev = server.handle(
            &mut ctx,
            &Envelope {
                src: DeviceId(9),
                dst: Dst::Device(DeviceId(1)),
                req: RequestId(3),
                corr: CorrId::NONE,
                payload: Payload::OpenRequest {
                    service: ServiceId(1),
                    token,
                    params: vec![],
                },
            },
        );
        match &ev[0] {
            MonitorEvent::OpenRequested { principal, .. } => {
                assert_eq!(*principal, Some(1234));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn open_unknown_service_not_found() {
        let mut fix = Fix::new();
        let mut server = Monitor::new();
        let mut ctx = fix.ctx();
        let ev = server.handle(
            &mut ctx,
            &Envelope {
                src: DeviceId(9),
                dst: Dst::Device(DeviceId(1)),
                req: RequestId(3),
                corr: CorrId::NONE,
                payload: Payload::OpenRequest {
                    service: ServiceId(99),
                    token: Token::NONE,
                    params: vec![],
                },
            },
        );
        assert!(ev.is_empty());
        let msgs = sent(ctx);
        assert!(matches!(
            msgs[0].payload,
            Payload::OpenResponse {
                status: Status::NotFound,
                ..
            }
        ));
    }

    #[test]
    fn close_flow_both_sides() {
        let mut fix = Fix::new();
        let mut server = Monitor::new();
        server.add_service(svc(1, "s"), AuthMode::Open);
        // Seed a server conn directly via accept path.
        let mut ctx = fix.ctx();
        let conn = server.accept_open(
            &mut ctx,
            RequestId(1),
            DeviceId(9),
            ServiceId(1),
            None,
            0,
            vec![],
        );
        drop(sent(ctx));
        let mut ctx = fix.ctx();
        let ev = server.handle(
            &mut ctx,
            &Envelope {
                src: DeviceId(9),
                dst: Dst::Device(DeviceId(1)),
                req: RequestId(2),
                corr: CorrId::NONE,
                payload: Payload::CloseRequest { conn },
            },
        );
        assert_eq!(ev, vec![MonitorEvent::PeerClosed { conn }]);
        let msgs = sent(ctx);
        assert!(matches!(
            msgs[0].payload,
            Payload::CloseResponse { status: Status::Ok }
        ));
        assert_eq!(server.server_conns().count(), 0);
    }

    #[test]
    fn alloc_share_free_resolve_ops() {
        let mut fix = Fix::new();
        let mut m = Monitor::new();
        let mc = DeviceId(5);

        let mut ctx = fix.ctx();
        let op_a = m.alloc_shared(&mut ctx, mc, 1, 0x10000, 8192, 3);
        let alloc_req = sent(ctx)[0].req;

        let mut ctx = fix.ctx();
        let ev = m.handle(
            &mut ctx,
            &Envelope {
                src: mc,
                dst: Dst::Device(DeviceId(1)),
                req: alloc_req,
                corr: CorrId::NONE,
                payload: Payload::MemAllocResponse {
                    status: Status::Ok,
                    region: 33,
                },
            },
        );
        assert_eq!(
            ev,
            vec![MonitorEvent::AllocDone {
                op: op_a,
                result: Ok(33)
            }]
        );

        let mut ctx = fix.ctx();
        let op_s = m.share(&mut ctx, mc, 33, DeviceId(2), 1, 0x10000, 3);
        let share_req = sent(ctx)[0].req;
        let mut ctx = fix.ctx();
        let ev = m.handle(
            &mut ctx,
            &Envelope {
                src: mc,
                dst: Dst::Device(DeviceId(1)),
                req: share_req,
                corr: CorrId::NONE,
                payload: Payload::ShareResponse { status: Status::Ok },
            },
        );
        assert_eq!(
            ev,
            vec![MonitorEvent::ShareDone {
                op: op_s,
                status: Status::Ok
            }]
        );

        let mut ctx = fix.ctx();
        let op_f = m.free_region(&mut ctx, mc, 33);
        let free_req = sent(ctx)[0].req;
        let mut ctx = fix.ctx();
        let ev = m.handle(
            &mut ctx,
            &Envelope {
                src: mc,
                dst: Dst::Device(DeviceId(1)),
                req: free_req,
                corr: CorrId::NONE,
                payload: Payload::MemFreeResponse { status: Status::Ok },
            },
        );
        assert_eq!(
            ev,
            vec![MonitorEvent::FreeDone {
                op: op_f,
                status: Status::Ok
            }]
        );
    }

    #[test]
    fn device_failure_drops_both_kinds_of_conns() {
        let mut fix = Fix::new();
        let mut m = Monitor::new();
        m.add_service(svc(1, "s"), AuthMode::Open);
        // A server conn from device 9 and a client conn to device 9.
        let mut ctx = fix.ctx();
        let server_conn = m.accept_open(
            &mut ctx,
            RequestId(1),
            DeviceId(9),
            ServiceId(1),
            None,
            0,
            vec![],
        );
        drop(sent(ctx));
        let mut ctx = fix.ctx();
        let _op = m.open(&mut ctx, DeviceId(9), ServiceId(2), Token::NONE, vec![]);
        let open_req = sent(ctx)[0].req;
        let mut ctx = fix.ctx();
        m.handle(
            &mut ctx,
            &Envelope {
                src: DeviceId(9),
                dst: Dst::Device(DeviceId(1)),
                req: open_req,
                corr: CorrId::NONE,
                payload: Payload::OpenResponse {
                    status: Status::Ok,
                    conn: ConnId(70),
                    shm_bytes: 0,
                    params: vec![],
                },
            },
        );
        // Now device 9 dies.
        let mut ctx = fix.ctx();
        let ev = m.handle(
            &mut ctx,
            &Envelope {
                src: DeviceId::BUS,
                dst: Dst::Broadcast,
                req: RequestId(0),
                corr: CorrId::NONE,
                payload: Payload::DeviceFailed {
                    device: DeviceId(9),
                },
            },
        );
        match &ev[0] {
            MonitorEvent::PeerFailed {
                device,
                lost_conns,
                dropped_server_conns,
            } => {
                assert_eq!(*device, DeviceId(9));
                assert_eq!(lost_conns, &vec![ConnId(70)]);
                assert_eq!(dropped_server_conns, &vec![server_conn]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.open_conn_count(), 0);
        assert_eq!(m.server_conns().count(), 0);
    }

    #[test]
    fn heartbeat_rearms() {
        let mut fix = Fix::new();
        let mut m = Monitor::new();
        let mut ctx = fix.ctx();
        m.enable_heartbeat(&mut ctx, SimDuration::from_millis(1));
        let (actions, _, _) = ctx.finish();
        let token = actions
            .iter()
            .find_map(|a| match a {
                crate::device::Action::SetTimer { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        let mut ctx = fix.ctx();
        let ev = m.on_timer(&mut ctx, token).unwrap();
        assert!(ev.is_empty());
        let (actions, _, _) = ctx.finish();
        let has_hb = actions.iter().any(|a| {
            matches!(
                a,
                crate::device::Action::SendBus(Envelope {
                    payload: Payload::Heartbeat,
                    ..
                })
            )
        });
        let rearmed = actions
            .iter()
            .any(|a| matches!(a, crate::device::Action::SetTimer { .. }));
        assert!(has_hb && rearmed);
    }

    #[test]
    fn application_timers_pass_through() {
        let mut fix = Fix::new();
        let mut m = Monitor::new();
        let mut ctx = fix.ctx();
        assert!(m.on_timer(&mut ctx, 5).is_none());
    }

    #[test]
    fn doorbell_and_error_surface() {
        let mut fix = Fix::new();
        let mut m = Monitor::new();
        let mut ctx = fix.ctx();
        let ev = m.handle(
            &mut ctx,
            &Envelope {
                src: DeviceId(2),
                dst: Dst::Device(DeviceId(1)),
                req: RequestId(0),
                corr: CorrId::NONE,
                payload: Payload::Doorbell {
                    conn: ConnId(4),
                    value: 2,
                },
            },
        );
        assert_eq!(
            ev,
            vec![MonitorEvent::Doorbell {
                conn: ConnId(4),
                value: 2
            }]
        );
        let ev = m.handle(
            &mut ctx,
            &Envelope {
                src: DeviceId(2),
                dst: Dst::Device(DeviceId(1)),
                req: RequestId(0),
                corr: CorrId::NONE,
                payload: Payload::ErrorNotify {
                    code: ErrorCode::ServiceReset,
                    conn: ConnId(4),
                    detail: "reset".into(),
                },
            },
        );
        assert!(matches!(ev[0], MonitorEvent::Error { .. }));
    }

    #[test]
    fn reset_clears_everything() {
        let mut fix = Fix::new();
        let mut m = Monitor::new();
        m.add_service(svc(1, "s"), AuthMode::Open);
        let mut ctx = fix.ctx();
        m.accept_open(
            &mut ctx,
            RequestId(1),
            DeviceId(9),
            ServiceId(1),
            None,
            0,
            vec![],
        );
        m.reset();
        assert_eq!(m.server_conns().count(), 0);
        assert!(!m.is_registered());
        // Services survive reset (they are device configuration, not state).
        let mut ctx2 = fix.ctx();
        m.start(&mut ctx2, "d", "k");
        assert_eq!(sent(ctx2).len(), 2);
    }
}
