//! Client-side file-session state machine.
//!
//! Drives the paper's Figure 2 sequence (steps 3–7) against a smart SSD:
//!
//! 1. `OpenRequest` to the file service (with the auth token) —
//!    the response carries the shared-memory requirement;
//! 2. `MemAlloc` to the memory controller at a caller-chosen virtual base —
//!    the bus programs our IOMMU before the response lands;
//! 3. `Share` of the region to the serving device (same PASID: the
//!    application *is* its address space, §2.2);
//! 4. lay out the VIRTIO queue + buffer arena in the region and ring the
//!    setup doorbell.
//!
//! The session is then [`SessionState::Ready`] and the caller performs file
//! I/O through [`FileSession::client_mut`]. Both the smart-NIC KVS
//! application and the console device reuse this machine — it is the
//! "development library" codepath of §4 (*Programmability*).

use lastcpu_bus::{ConnId, DeviceId, ServiceId, Status, Token};
use lastcpu_mem::Pasid;

use crate::device::DeviceCtx;
use crate::monitor::{Monitor, MonitorEvent};
use crate::ssd::{FileClient, DOORBELL_COMPLETION};

/// Session lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Not started.
    Idle,
    /// `OpenRequest` in flight.
    Opening,
    /// `MemAlloc` in flight.
    Allocating,
    /// `Share` in flight.
    Sharing,
    /// Queue is set up; I/O may proceed.
    Ready,
    /// Setup failed.
    Failed(Status),
}

/// Events surfaced to the session's owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEvent {
    /// Setup finished; the connection is usable.
    Ready {
        /// The server-assigned connection.
        conn: ConnId,
        /// File size reported at open.
        file_size: u64,
    },
    /// Completions are waiting in the queue (drain via `client_mut`).
    Completions {
        /// The connection.
        conn: ConnId,
    },
    /// The session died (setup failure, peer reset, peer death).
    Failed {
        /// Status describing the failure.
        status: Status,
    },
}

/// A client-side file session.
pub struct FileSession {
    memctl: DeviceId,
    target: DeviceId,
    service: ServiceId,
    token: Token,
    pasid: Pasid,
    va_base: u64,
    queue_size: u16,
    state: SessionState,
    op: u64,
    conn: ConnId,
    region: u64,
    shm_bytes: u64,
    file_size: u64,
    client: Option<FileClient>,
}

impl FileSession {
    /// Configures a session; nothing is sent until [`FileSession::start`].
    ///
    /// `va_base` is where the shared region will be mapped in `pasid`
    /// (page-aligned, chosen by the application), and `queue_size` the
    /// virtqueue depth (power of two).
    pub fn new(
        memctl: DeviceId,
        target: DeviceId,
        service: ServiceId,
        token: Token,
        pasid: Pasid,
        va_base: u64,
        queue_size: u16,
    ) -> Self {
        FileSession {
            memctl,
            target,
            service,
            token,
            pasid,
            va_base,
            queue_size,
            state: SessionState::Idle,
            op: 0,
            conn: ConnId(0),
            region: 0,
            shm_bytes: 0,
            file_size: 0,
            client: None,
        }
    }

    /// Current state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// The device this session talks to.
    pub fn target(&self) -> DeviceId {
        self.target
    }

    /// The connection id (valid once past `Opening`).
    pub fn conn(&self) -> ConnId {
        self.conn
    }

    /// The shared-memory region handle (valid once past `Allocating`).
    pub fn region(&self) -> u64 {
        self.region
    }

    /// The queue client and connection, once [`SessionState::Ready`].
    pub fn client_mut(&mut self) -> Option<(&mut FileClient, ConnId)> {
        match self.state {
            SessionState::Ready => self.client.as_mut().map(|c| (c, self.conn)),
            _ => None,
        }
    }

    /// Kicks off the open (§3 step 3).
    pub fn start(&mut self, ctx: &mut DeviceCtx<'_>, monitor: &mut Monitor) {
        debug_assert_eq!(self.state, SessionState::Idle);
        let mut params = lastcpu_bus::wire::WireWriter::new();
        params.u32(self.pasid.as_u32());
        self.op = monitor.open(ctx, self.target, self.service, self.token, params.finish());
        self.state = SessionState::Opening;
    }

    fn fail(&mut self, status: Status) -> Option<SessionEvent> {
        self.state = SessionState::Failed(status);
        self.client = None;
        Some(SessionEvent::Failed { status })
    }

    /// Feeds a monitor event; returns a session event when state changes in
    /// a way the owner must act on.
    pub fn on_event(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        monitor: &mut Monitor,
        ev: &MonitorEvent,
    ) -> Option<SessionEvent> {
        match (self.state, ev) {
            (SessionState::Opening, MonitorEvent::OpenDone { op, result, .. })
                if *op == self.op =>
            {
                match result {
                    Ok((conn, shm, params)) => {
                        self.conn = *conn;
                        self.shm_bytes = *shm;
                        // File services reply with the file size.
                        if params.len() == 8 {
                            self.file_size =
                                u64::from_le_bytes(params[..8].try_into().expect("len 8"));
                        }
                        // §3 step 5: allocate the shared memory.
                        self.op = monitor.alloc_shared(
                            ctx,
                            self.memctl,
                            self.pasid.as_u32(),
                            self.va_base,
                            self.shm_bytes,
                            3, // RW
                        );
                        self.state = SessionState::Allocating;
                        None
                    }
                    Err(status) => self.fail(*status),
                }
            }
            (SessionState::Allocating, MonitorEvent::AllocDone { op, result })
                if *op == self.op =>
            {
                match result {
                    Ok(region) => {
                        self.region = *region;
                        // §3 step 7: grant the region to the serving device.
                        self.op = monitor.share(
                            ctx,
                            self.memctl,
                            self.region,
                            self.target,
                            self.pasid.as_u32(),
                            self.va_base,
                            3, // RW
                        );
                        self.state = SessionState::Sharing;
                        None
                    }
                    Err(status) => self.fail(*status),
                }
            }
            (SessionState::Sharing, MonitorEvent::ShareDone { op, status }) if *op == self.op => {
                if !status.is_ok() {
                    return self.fail(*status);
                }
                // Lay out the queue in our (now mapped) region and tell the
                // SSD where it is.
                let mut view = ctx.dma_view(self.pasid);
                match FileClient::create(&mut view, self.va_base, self.queue_size) {
                    Ok((client, setup)) => {
                        self.client = Some(client);
                        ctx.doorbell(self.target, self.conn, setup);
                        self.state = SessionState::Ready;
                        Some(SessionEvent::Ready {
                            conn: self.conn,
                            file_size: self.file_size,
                        })
                    }
                    Err(_) => self.fail(Status::Failed),
                }
            }
            (SessionState::Ready, MonitorEvent::Doorbell { conn, value })
                if *conn == self.conn && *value == DOORBELL_COMPLETION =>
            {
                Some(SessionEvent::Completions { conn: self.conn })
            }
            (_, MonitorEvent::Error { conn, .. }) if *conn == self.conn => {
                self.fail(Status::Failed)
            }
            (_, MonitorEvent::PeerFailed { device, .. })
                if *device == self.target || *device == self.memctl =>
            {
                self.fail(Status::Failed)
            }
            _ => None,
        }
    }
}

impl SessionState {
    /// Serializes into a snapshot section.
    pub fn snap_encode(self, w: &mut lastcpu_snap::SnapWriter) {
        match self {
            SessionState::Idle => w.put_u8(0),
            SessionState::Opening => w.put_u8(1),
            SessionState::Allocating => w.put_u8(2),
            SessionState::Sharing => w.put_u8(3),
            SessionState::Ready => w.put_u8(4),
            SessionState::Failed(s) => {
                w.put_u8(5);
                s.snap_encode(w);
            }
        }
    }

    /// Inverse of [`SessionState::snap_encode`].
    pub fn snap_decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<Self> {
        Ok(match r.u8()? {
            0 => SessionState::Idle,
            1 => SessionState::Opening,
            2 => SessionState::Allocating,
            3 => SessionState::Sharing,
            4 => SessionState::Ready,
            5 => SessionState::Failed(Status::snap_decode(r)?),
            t => return Err(r.corrupt(format!("bad SessionState tag {t}"))),
        })
    }
}

impl lastcpu_snap::Snapshot for FileSession {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u32(self.memctl.0);
        w.put_u32(self.target.0);
        w.put_u16(self.service.0);
        w.put_u128(self.token.0);
        w.put_u32(self.pasid.0);
        w.put_u64(self.va_base);
        w.put_u16(self.queue_size);
        self.state.snap_encode(w);
        w.put_u64(self.op);
        w.put_u64(self.conn.0);
        w.put_u64(self.region);
        w.put_u64(self.shm_bytes);
        w.put_u64(self.file_size);
        w.put_opt(self.client.as_ref(), |w, c| c.snapshot(w));
    }
}

impl lastcpu_snap::Restore for FileSession {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.memctl = DeviceId(r.u32()?);
        self.target = DeviceId(r.u32()?);
        self.service = ServiceId(r.u16()?);
        self.token = Token(r.u128()?);
        self.pasid = Pasid(r.u32()?);
        self.va_base = r.u64()?;
        self.queue_size = r.u16()?;
        self.state = SessionState::snap_decode(r)?;
        self.op = r.u64()?;
        self.conn = ConnId(r.u64()?);
        self.region = r.u64()?;
        self.shm_bytes = r.u64()?;
        self.file_size = r.u64()?;
        self.client = r.opt(|r| {
            let mut c = FileClient::placeholder();
            c.restore(r)?;
            Ok(c)
        })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastcpu_bus::CorrId;
    use lastcpu_bus::{Dst, Envelope, Payload, RequestId};
    use lastcpu_iommu::Iommu;
    use lastcpu_mem::{Dram, Perms, PhysAddr, VirtAddr, PAGE_SIZE};
    use lastcpu_sim::MetricsHub;
    use lastcpu_sim::{DetRng, SimTime};

    const MEMCTL: DeviceId = DeviceId(5);
    const SSD: DeviceId = DeviceId(2);
    const ME: DeviceId = DeviceId(1);
    const VA: u64 = 0x100_0000;

    struct Fix {
        iommu: Iommu,
        dram: Dram,
        rng: DetRng,
        req: u64,
        stats: MetricsHub,
    }

    impl Fix {
        fn new() -> Self {
            let mut iommu = Iommu::new(64);
            iommu.bind_pasid(Pasid(1));
            // Pre-map the region the session will use (in the real system
            // the bus does this when memctl instructs it).
            for i in 0..(crate::ssd::FILE_CONN_SHM / PAGE_SIZE) {
                iommu
                    .map(
                        Pasid(1),
                        VirtAddr::new(VA + i * PAGE_SIZE),
                        PhysAddr::new(0x20_0000 + i * PAGE_SIZE),
                        Perms::RW,
                    )
                    .unwrap();
            }
            Fix {
                iommu,
                dram: Dram::new(1 << 24),
                rng: DetRng::new(7),
                req: 0,
                stats: MetricsHub::new(),
            }
        }

        fn ctx(&mut self) -> DeviceCtx<'_> {
            DeviceCtx::new(
                SimTime::ZERO,
                ME,
                None,
                &mut self.iommu,
                &mut self.dram,
                &mut self.rng,
                &mut self.req,
                CorrId::NONE,
                &self.stats,
            )
        }
    }

    fn feed(
        fix: &mut Fix,
        monitor: &mut Monitor,
        session: &mut FileSession,
        env: Envelope,
    ) -> (Vec<SessionEvent>, Vec<Envelope>) {
        let mut ctx = fix.ctx();
        let mut out = Vec::new();
        for ev in monitor.handle(&mut ctx, &env) {
            if let Some(se) = session.on_event(&mut ctx, monitor, &ev) {
                out.push(se);
            }
        }
        let (actions, _, _) = ctx.finish();
        let sent = actions
            .into_iter()
            .filter_map(|a| match a {
                crate::device::Action::SendBus(e) => Some(e),
                _ => None,
            })
            .collect();
        (out, sent)
    }

    #[test]
    fn full_setup_sequence() {
        let mut fix = Fix::new();
        let mut monitor = Monitor::new();
        let mut session =
            FileSession::new(MEMCTL, SSD, ServiceId(100), Token::NONE, Pasid(1), VA, 16);

        // Step 3: open.
        let mut ctx = fix.ctx();
        session.start(&mut ctx, &mut monitor);
        let (actions, _, _) = ctx.finish();
        let open_req = match &actions[0] {
            crate::device::Action::SendBus(e) => {
                assert!(matches!(e.payload, Payload::OpenRequest { .. }));
                e.req
            }
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(session.state(), SessionState::Opening);

        // Step 4: SSD accepts, demanding shared memory.
        let mut size_params = lastcpu_bus::wire::WireWriter::new();
        size_params.u64(4242);
        let (evs, sent) = feed(
            &mut fix,
            &mut monitor,
            &mut session,
            Envelope {
                src: SSD,
                dst: Dst::Device(ME),
                req: open_req,
                corr: CorrId::NONE,
                payload: Payload::OpenResponse {
                    status: Status::Ok,
                    conn: ConnId(7),
                    shm_bytes: crate::ssd::FILE_CONN_SHM,
                    params: size_params.finish(),
                },
            },
        );
        assert!(evs.is_empty());
        assert_eq!(session.state(), SessionState::Allocating);
        // Step 5: MemAlloc went to the memory controller.
        let alloc_req = sent[0].req;
        assert_eq!(sent[0].dst, Dst::Device(MEMCTL));
        assert!(matches!(sent[0].payload, Payload::MemAlloc { va: VA, .. }));

        // Step 6 happened at the bus; we get the response.
        let (evs, sent) = feed(
            &mut fix,
            &mut monitor,
            &mut session,
            Envelope {
                src: MEMCTL,
                dst: Dst::Device(ME),
                req: alloc_req,
                corr: CorrId::NONE,
                payload: Payload::MemAllocResponse {
                    status: Status::Ok,
                    region: 55,
                },
            },
        );
        assert!(evs.is_empty());
        assert_eq!(session.state(), SessionState::Sharing);
        assert_eq!(session.region(), 55);
        // Step 7: Share to the SSD.
        let share_req = sent[0].req;
        assert!(matches!(
            sent[0].payload,
            Payload::Share {
                region: 55,
                target: SSD,
                ..
            }
        ));

        let mut ctx = fix.ctx();
        let mut ready = Vec::new();
        for ev in monitor.handle(
            &mut ctx,
            &Envelope {
                src: MEMCTL,
                dst: Dst::Device(ME),
                req: share_req,
                corr: CorrId::NONE,
                payload: Payload::ShareResponse { status: Status::Ok },
            },
        ) {
            if let Some(se) = session.on_event(&mut ctx, &mut monitor, &ev) {
                ready.push(se);
            }
        }
        assert_eq!(
            ready,
            vec![SessionEvent::Ready {
                conn: ConnId(7),
                file_size: 4242
            }]
        );
        assert_eq!(session.state(), SessionState::Ready);
        // The setup doorbell went to the SSD.
        let (actions, _, _) = ctx.finish();
        assert!(actions.iter().any(|a| matches!(
            a,
            crate::device::Action::Doorbell { to, conn, value }
                if *to == SSD && *conn == ConnId(7) && *value != 0
        )));
        assert!(session.client_mut().is_some());
    }

    #[test]
    fn open_denied_fails_session() {
        let mut fix = Fix::new();
        let mut monitor = Monitor::new();
        let mut session =
            FileSession::new(MEMCTL, SSD, ServiceId(100), Token::NONE, Pasid(1), VA, 16);
        let mut ctx = fix.ctx();
        session.start(&mut ctx, &mut monitor);
        let (actions, _, _) = ctx.finish();
        let open_req = match &actions[0] {
            crate::device::Action::SendBus(e) => e.req,
            other => panic!("unexpected {other:?}"),
        };
        let (evs, _) = feed(
            &mut fix,
            &mut monitor,
            &mut session,
            Envelope {
                src: SSD,
                dst: Dst::Device(ME),
                req: open_req,
                corr: CorrId::NONE,
                payload: Payload::OpenResponse {
                    status: Status::Denied,
                    conn: ConnId(0),
                    shm_bytes: 0,
                    params: vec![],
                },
            },
        );
        assert_eq!(
            evs,
            vec![SessionEvent::Failed {
                status: Status::Denied
            }]
        );
        assert_eq!(session.state(), SessionState::Failed(Status::Denied));
        assert!(session.client_mut().is_none());
    }

    #[test]
    fn peer_failure_kills_session() {
        let mut fix = Fix::new();
        let mut monitor = Monitor::new();
        let mut session =
            FileSession::new(MEMCTL, SSD, ServiceId(100), Token::NONE, Pasid(1), VA, 16);
        let mut ctx = fix.ctx();
        session.start(&mut ctx, &mut monitor);
        drop(ctx);
        let (evs, _) = feed(
            &mut fix,
            &mut monitor,
            &mut session,
            Envelope {
                src: DeviceId::BUS,
                dst: Dst::Broadcast,
                req: RequestId(0),
                corr: CorrId::NONE,
                payload: Payload::DeviceFailed { device: SSD },
            },
        );
        assert_eq!(
            evs,
            vec![SessionEvent::Failed {
                status: Status::Failed
            }]
        );
    }
}
