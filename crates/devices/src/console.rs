//! The operator console device (§4 "System Maintenance").
//!
//! The paper: a CPU-less server in a datacenter has no local console; an
//! operator reaches it remotely and reads application logs through the
//! ordinary service fabric, authenticating against the auth service. The
//! [`ConsoleDevice`] scripts exactly that session:
//!
//! 1. discover the `auth` service and log in with operator credentials;
//! 2. discover the device exporting the target log file;
//! 3. run the Figure 2 session setup against it (via
//!    [`crate::session::FileSession`]);
//! 4. read the whole log through the VIRTIO queue.
//!
//! When the read completes the log contents are available from
//! [`ConsoleDevice::log`], which the "operator" (the example binary or an
//! integration test) inspects. Every byte travelled the CPU-less path:
//! control messages over the bus, data over IOMMU-translated DMA.

use lastcpu_bus::{DeviceId, Envelope, Status, Token};
use lastcpu_mem::Pasid;
use lastcpu_sim::SimDuration;

use crate::auth;
use crate::device::{Device, DeviceCtx};
use crate::monitor::{Monitor, MonitorEvent};
use crate::session::{FileSession, SessionEvent};
use crate::ssd::{FileOp, FileStatus, DOORBELL_WORK};

/// Where the console maps its shared region.
const VA_BASE: u64 = 0x4000_0000;
/// Read chunk size (must fit a client slot minus the status byte).
const CHUNK: u32 = 2048;

/// Console progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsoleState {
    /// Waiting for registration.
    Boot,
    /// Discovering the auth service.
    FindingAuth,
    /// Logging in.
    LoggingIn,
    /// Discovering the log file's owner.
    FindingLog,
    /// Running the session handshake.
    Connecting,
    /// Reading the log.
    Reading,
    /// Log fully read.
    Done,
    /// Something failed.
    Failed(Status),
}

/// The remote operator console.
pub struct ConsoleDevice {
    name: String,
    monitor: Monitor,
    memctl: DeviceId,
    user: String,
    password: String,
    log_path: String,
    state: ConsoleState,
    discover_op: u64,
    login_op: u64,
    token: Token,
    session: Option<FileSession>,
    log: Vec<u8>,
    expected: u64,
    next_offset: u64,
}

impl ConsoleDevice {
    /// Creates a console that will read `log_path` as `user`/`password`.
    ///
    /// `memctl` is the memory controller's bus address (part of the
    /// machine's wiring, like knowing which slot the MCH sits in).
    pub fn new(name: &str, memctl: DeviceId, user: &str, password: &str, log_path: &str) -> Self {
        ConsoleDevice {
            name: name.to_string(),
            monitor: Monitor::new(),
            memctl,
            user: user.to_string(),
            password: password.to_string(),
            log_path: log_path.to_string(),
            state: ConsoleState::Boot,
            discover_op: 0,
            login_op: 0,
            token: Token::NONE,
            session: None,
            log: Vec::new(),
            expected: 0,
            next_offset: 0,
        }
    }

    /// Current progress.
    pub fn state(&self) -> ConsoleState {
        self.state
    }

    /// The log contents once [`ConsoleState::Done`].
    pub fn log(&self) -> Option<&[u8]> {
        (self.state == ConsoleState::Done).then_some(self.log.as_slice())
    }

    fn fail(&mut self, status: Status) {
        self.state = ConsoleState::Failed(status);
    }

    fn drive(&mut self, ctx: &mut DeviceCtx<'_>, ev: &MonitorEvent) {
        // Session events first.
        if let Some(session) = self.session.as_mut() {
            match session.on_event(ctx, &mut self.monitor, ev) {
                Some(SessionEvent::Ready { file_size, .. }) => {
                    self.expected = file_size;
                    self.state = ConsoleState::Reading;
                    self.issue_reads(ctx);
                    return;
                }
                Some(SessionEvent::Completions { .. }) => {
                    self.drain(ctx);
                    return;
                }
                Some(SessionEvent::Failed { status }) => {
                    self.fail(status);
                    return;
                }
                None => {}
            }
        }
        match (self.state, ev) {
            (ConsoleState::Boot, MonitorEvent::Registered) => {
                self.state = ConsoleState::FindingAuth;
                self.discover_op = self.monitor.discover(ctx, "auth");
            }
            (ConsoleState::FindingAuth, MonitorEvent::DiscoveryDone { op, hits })
                if *op == self.discover_op =>
            {
                let Some((dev, svc)) = hits
                    .iter()
                    .find(|(_, s)| s.name == "auth")
                    .map(|(d, s)| (*d, s.id))
                else {
                    self.fail(Status::NotFound);
                    return;
                };
                self.state = ConsoleState::LoggingIn;
                self.login_op = self.monitor.open(
                    ctx,
                    dev,
                    svc,
                    Token::NONE,
                    auth::encode_login(&self.user, &self.password),
                );
            }
            (ConsoleState::LoggingIn, MonitorEvent::OpenDone { op, result, .. })
                if *op == self.login_op =>
            {
                match result {
                    Ok((_, _, params)) => match auth::decode_login_response(params) {
                        Some(token) => {
                            self.token = token;
                            self.state = ConsoleState::FindingLog;
                            self.discover_op = self
                                .monitor
                                .discover(ctx, &format!("file:{}", self.log_path));
                        }
                        None => self.fail(Status::Failed),
                    },
                    Err(status) => self.fail(*status),
                }
            }
            (ConsoleState::FindingLog, MonitorEvent::DiscoveryDone { op, hits })
                if *op == self.discover_op =>
            {
                let wanted = format!("file:{}", self.log_path);
                let Some((dev, svc)) = hits
                    .iter()
                    .find(|(_, s)| s.name == wanted)
                    .map(|(d, s)| (*d, s.id))
                else {
                    self.fail(Status::NotFound);
                    return;
                };
                self.state = ConsoleState::Connecting;
                let mut session = FileSession::new(
                    self.memctl,
                    dev,
                    svc,
                    self.token,
                    Pasid(ctx.dev.0), // console's private address space
                    VA_BASE,
                    16,
                );
                session.start(ctx, &mut self.monitor);
                self.session = Some(session);
            }
            _ => {}
        }
    }

    /// Issues reads for the remainder of the file, as queue space allows.
    fn issue_reads(&mut self, ctx: &mut DeviceCtx<'_>) {
        let Some(session) = self.session.as_mut() else {
            return;
        };
        if self.expected == 0 {
            self.state = ConsoleState::Done;
            return;
        }
        let pasid = Pasid(ctx.dev.0);
        let mut issued = false;
        let mut offset = self.next_offset;
        if let Some((client, _conn)) = session.client_mut() {
            while offset < self.expected {
                let len = CHUNK.min((self.expected - offset) as u32);
                let op = FileOp::Read { offset, len };
                let mut view = ctx.dma_view(pasid);
                if !client.can_submit() || client.submit(&mut view, &op, len).is_err() {
                    break;
                }
                offset += len as u64;
                issued = true;
            }
        }
        self.next_offset = offset;
        if issued {
            // Ring the work doorbell at the serving device.
            if let Some(session) = self.session.as_ref() {
                ctx.doorbell(session.target(), session.conn(), DOORBELL_WORK);
            }
        }
    }

    /// Drains completions into the log buffer.
    fn drain(&mut self, ctx: &mut DeviceCtx<'_>) {
        let pasid = Pasid(ctx.dev.0);
        let Some(session) = self.session.as_mut() else {
            return;
        };
        let mut got = Vec::new();
        if let Some((client, _)) = session.client_mut() {
            let mut view = ctx.dma_view(pasid);
            match client.completions(&mut view) {
                Ok(done) => got = done,
                Err(_) => {
                    self.fail(Status::Failed);
                    return;
                }
            }
        }
        for (_, status, payload) in got {
            if status != FileStatus::Ok {
                self.fail(Status::Failed);
                return;
            }
            self.log.extend_from_slice(&payload);
        }
        if self.log.len() as u64 >= self.expected {
            self.state = ConsoleState::Done;
        } else {
            self.issue_reads(ctx);
        }
    }
}

impl Device for ConsoleDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "console"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.busy(SimDuration::from_micros(5));
        let name = self.name.clone();
        self.monitor.start(ctx, &name, "console");
        self.monitor
            .enable_heartbeat(ctx, SimDuration::from_millis(2));
    }

    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        for ev in self.monitor.handle(ctx, &env) {
            self.drive(ctx, &ev);
        }
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        if let Some(events) = self.monitor.on_timer(ctx, token) {
            for ev in events {
                self.drive(ctx, &ev);
            }
        }
    }

    fn on_reset(&mut self, ctx: &mut DeviceCtx<'_>) {
        self.monitor.reset();
        self.session = None;
        self.state = ConsoleState::Boot;
        self.log.clear();
        self.next_offset = 0;
        let name = self.name.clone();
        self.monitor.start(ctx, &name, "console");
        self.monitor
            .enable_heartbeat(ctx, SimDuration::from_millis(2));
    }
}
