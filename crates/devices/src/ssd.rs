//! The smart SSD: a self-managing storage device.
//!
//! This is the server half of the paper's §3 example. The SSD exposes:
//!
//! - one `file:<path>` service per exported file (what the NIC discovers by
//!   broadcasting the file name);
//! - an `fs` control service (create/delete/list, connectionless — the
//!   request rides in the open parameters);
//! - a `loader` service (§4 *Access Control*): uploads a new binary image
//!   into `/boot/`, guarded by sealed tokens.
//!
//! A file connection is one isolated context (§2.1). Its data path is a
//! VIRTIO split queue living in application shared memory (§3 step 7): the
//! client allocates the region, grants it to the SSD through the memory
//! controller, lays out a virtqueue in it, and rings a setup doorbell whose
//! value encodes the queue's base address and size. Every byte of queue
//! traffic then moves by DMA through the SSD's IOMMU under the
//! application's PASID.
//!
//! **Isolation scheduler.** With `isolation = true` (default) the SSD
//! serves connections round-robin, at most [`SsdConfig::quantum`] requests
//! per turn, re-arming a poll timer between turns; a flooding tenant then
//! shares the device instead of owning it. With `isolation = false` the SSD
//! drains whichever connection rang first to empty — the configuration the
//! E3 experiment uses as its no-isolation baseline.

use std::collections::{HashMap, VecDeque};

use lastcpu_bus::wire::{WireReader, WireWriter};
use lastcpu_bus::{
    ConnId, DeviceId, Envelope, RequestId, ResourceKind, ServiceDesc, ServiceId, Status,
};
use lastcpu_iommu::IommuFault;
use lastcpu_mem::Pasid;
use lastcpu_sim::{profile, SimDuration};
use lastcpu_virtio::{DescChain, QueueError, QueueLayout, VirtqueueDevice};

use crate::device::{Device, DeviceCtx};
use crate::fs::{FlashFs, FsError};
use crate::monitor::{AuthMode, Monitor, MonitorEvent};

/// Service id of the `fs` control service.
pub const FS_SERVICE: ServiceId = ServiceId(1);
/// Service id of the loader service.
pub const LOADER_SERVICE: ServiceId = ServiceId(2);
/// First service id used for exported files.
pub const FILE_SERVICE_BASE: u16 = 100;

/// Shared-memory bytes a file connection requires (queue + buffers).
pub const FILE_CONN_SHM: u64 = 256 * 1024;

/// Timer token for continuing queue processing.
const TOKEN_POLL: u64 = 1;

/// Doorbell values (client → SSD): a setup doorbell carries the queue base
/// (page-aligned) OR'd with log2(queue size); a work doorbell is 0.
pub const DOORBELL_WORK: u64 = 0;
/// Doorbell value (SSD → client): completions available.
pub const DOORBELL_COMPLETION: u64 = 1;

/// Encodes a queue-setup doorbell value.
pub fn setup_doorbell(queue_base_va: u64, queue_size: u16) -> u64 {
    debug_assert_eq!(queue_base_va & 0xFFF, 0, "queue base must be page aligned");
    debug_assert!(queue_size.is_power_of_two());
    queue_base_va | queue_size.trailing_zeros() as u64
}

fn decode_setup_doorbell(value: u64) -> Option<(u64, u16)> {
    let log2 = (value & 0xFFF) as u32;
    if log2 == 0 || log2 > 15 {
        return None;
    }
    Some((value & !0xFFF, 1u16 << log2))
}

// --- File-service wire protocol (rides in virtqueue buffers) -----------

/// File operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileOp {
    /// Read `len` bytes at `offset`.
    Read {
        /// Byte offset.
        offset: u64,
        /// Bytes to read.
        len: u32,
    },
    /// Write `data` at `offset`.
    Write {
        /// Byte offset.
        offset: u64,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// Query the file size.
    Stat,
    /// Durability barrier.
    Flush,
}

impl FileOp {
    /// Encodes the request.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Encodes the request into a caller-supplied buffer (appended), so the
    /// submit path can reuse one buffer across requests.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let mut w = WireWriter::with_buf(std::mem::take(buf));
        match self {
            FileOp::Read { offset, len } => {
                w.u8(1);
                w.u64(*offset);
                w.u32(*len);
            }
            FileOp::Write { offset, data } => {
                w.u8(2);
                w.u64(*offset);
                w.bytes(data);
            }
            FileOp::Stat => w.u8(3),
            FileOp::Flush => w.u8(4),
        }
        *buf = w.finish();
    }

    /// Decodes a request.
    pub fn decode(buf: &[u8]) -> Option<FileOp> {
        let mut r = WireReader::new(buf);
        let op = match r.u8().ok()? {
            1 => FileOp::Read {
                offset: r.u64().ok()?,
                len: r.u32().ok()?,
            },
            2 => FileOp::Write {
                offset: r.u64().ok()?,
                data: r.bytes().ok()?,
            },
            3 => FileOp::Stat,
            4 => FileOp::Flush,
            _ => return None,
        };
        r.expect_end().ok()?;
        Some(op)
    }
}

/// A decoded file-op view borrowing write payloads from the request bytes.
/// The SSD serve loop decodes through this so WRITE data is never copied
/// out of the request buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileOpRef<'a> {
    /// Read `len` bytes at `offset`.
    Read {
        /// Byte offset.
        offset: u64,
        /// Byte count.
        len: u32,
    },
    /// Write bytes at `offset`.
    Write {
        /// Byte offset.
        offset: u64,
        /// Payload, borrowed from the request buffer.
        data: &'a [u8],
    },
    /// Query the file size.
    Stat,
    /// Durability barrier.
    Flush,
}

impl<'a> FileOpRef<'a> {
    /// Decodes a request without copying the write payload.
    pub fn decode(buf: &'a [u8]) -> Option<FileOpRef<'a>> {
        let mut r = WireReader::new(buf);
        let op = match r.u8().ok()? {
            1 => FileOpRef::Read {
                offset: r.u64().ok()?,
                len: r.u32().ok()?,
            },
            2 => FileOpRef::Write {
                offset: r.u64().ok()?,
                data: r.bytes_ref().ok()?,
            },
            3 => FileOpRef::Stat,
            4 => FileOpRef::Flush,
            _ => return None,
        };
        r.expect_end().ok()?;
        Some(op)
    }
}

/// File-operation response status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileStatus {
    /// Success.
    Ok,
    /// Read crossed end of file.
    Eof,
    /// Device out of space.
    NoSpace,
    /// Flash-level I/O error.
    Io,
    /// Malformed request.
    Bad,
}

impl FileStatus {
    fn to_u8(self) -> u8 {
        match self {
            FileStatus::Ok => 0,
            FileStatus::Eof => 1,
            FileStatus::NoSpace => 2,
            FileStatus::Io => 3,
            FileStatus::Bad => 4,
        }
    }

    fn from_u8(v: u8) -> FileStatus {
        match v {
            0 => FileStatus::Ok,
            1 => FileStatus::Eof,
            2 => FileStatus::NoSpace,
            3 => FileStatus::Io,
            _ => FileStatus::Bad,
        }
    }
}

/// Encodes a file-op response: status byte + payload.
pub fn encode_response(status: FileStatus, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 1);
    encode_response_into(status, payload, &mut out);
    out
}

/// Like [`encode_response`], but clears and reuses a caller buffer.
pub fn encode_response_into(status: FileStatus, payload: &[u8], buf: &mut Vec<u8>) {
    buf.clear();
    buf.push(status.to_u8());
    buf.extend_from_slice(payload);
}

/// Splits a file-op response into status and payload.
pub fn decode_response(buf: &[u8]) -> Option<(FileStatus, &[u8])> {
    let (&s, rest) = buf.split_first()?;
    Some((FileStatus::from_u8(s), rest))
}

// --- fs control-service parameters --------------------------------------

/// Operations on the `fs` control service (carried in open params).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsOp {
    /// Create a file and export it as a service.
    Create {
        /// File path.
        path: String,
    },
    /// Delete a file and withdraw its service.
    Delete {
        /// File path.
        path: String,
    },
    /// List files (names returned newline-separated in response params).
    List,
}

impl FsOp {
    /// Encodes into open-request params.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            FsOp::Create { path } => {
                w.u8(1);
                w.string(path);
            }
            FsOp::Delete { path } => {
                w.u8(2);
                w.string(path);
            }
            FsOp::List => w.u8(3),
        }
        w.finish()
    }

    fn decode(buf: &[u8]) -> Option<FsOp> {
        let mut r = WireReader::new(buf);
        let op = match r.u8().ok()? {
            1 => FsOp::Create {
                path: r.string().ok()?,
            },
            2 => FsOp::Delete {
                path: r.string().ok()?,
            },
            3 => FsOp::List,
            _ => return None,
        };
        r.expect_end().ok()?;
        Some(op)
    }
}

/// Encodes loader open params: image name + contents.
pub fn encode_loader_params(image: &str, contents: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.string(image);
    w.bytes(contents);
    w.finish()
}

// --- The device ----------------------------------------------------------

/// SSD configuration.
#[derive(Debug, Clone)]
pub struct SsdConfig {
    /// Per-connection isolation scheduling (the paper's §2.1 requirement).
    pub isolation: bool,
    /// Requests served per connection per scheduling turn when isolating.
    pub quantum: u32,
    /// Files to create and export at power-on.
    pub exports: Vec<String>,
    /// Auth for file services.
    pub file_auth: AuthMode,
    /// Auth for the loader service.
    pub loader_auth: AuthMode,
    /// Firmware overhead per request (command parse, dispatch).
    pub per_request_overhead: SimDuration,
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig {
            isolation: true,
            quantum: 4,
            exports: Vec::new(),
            file_auth: AuthMode::Open,
            loader_auth: AuthMode::Open,
            per_request_overhead: SimDuration::from_micros(1),
        }
    }
}

/// One file connection (isolation context).
struct FileConn {
    peer: DeviceId,
    pasid: Pasid,
    file: String,
    queue: Option<VirtqueueDevice>,
    /// Requests served (per-context accounting).
    served: u64,
}

/// Per-SSD counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct SsdStats {
    /// File requests served.
    pub requests: u64,
    /// Bytes read from files.
    pub bytes_read: u64,
    /// Bytes written to files.
    pub bytes_written: u64,
    /// Connections reset due to data-path faults.
    pub conn_resets: u64,
    /// Loader images installed.
    pub images_loaded: u64,
}

/// The smart SSD device.
pub struct SmartSsd {
    name: String,
    monitor: Monitor,
    fs: FlashFs,
    config: SsdConfig,
    /// ServiceId → exported file path.
    exported: HashMap<ServiceId, String>,
    next_file_svc: u16,
    conns: HashMap<ConnId, FileConn>,
    /// Connections with work pending, in arrival order.
    work: VecDeque<ConnId>,
    poll_armed: bool,
    stats: SsdStats,
    /// Reused descriptor-walk buffers: the serve loop pops every chain into
    /// this one `DescChain` and reads request bytes into this one `Vec`, so
    /// steady-state request service allocates nothing for the walk itself.
    scratch_chain: DescChain,
    scratch_req: Vec<u8>,
    /// Reused response buffer: READ payloads are gathered here (after the
    /// status byte) and written back via DMA, with no per-request `Vec`.
    scratch_resp: Vec<u8>,
}

impl SmartSsd {
    /// Creates an SSD with the given filesystem and configuration.
    pub fn new(name: &str, fs: FlashFs, config: SsdConfig) -> Self {
        let mut ssd = SmartSsd {
            name: name.to_string(),
            monitor: Monitor::new(),
            fs,
            config,
            exported: HashMap::new(),
            next_file_svc: FILE_SERVICE_BASE,
            conns: HashMap::new(),
            work: VecDeque::new(),
            poll_armed: false,
            stats: SsdStats::default(),
            scratch_chain: DescChain {
                head: 0,
                readable: Vec::new(),
                writable: Vec::new(),
            },
            scratch_req: Vec::new(),
            scratch_resp: Vec::new(),
        };
        ssd.monitor.add_service(
            ServiceDesc {
                id: FS_SERVICE,
                name: "fs".into(),
                resource: ResourceKind::Storage,
            },
            ssd.config.file_auth.clone(),
        );
        ssd.monitor.add_service(
            ServiceDesc {
                id: LOADER_SERVICE,
                name: "loader".into(),
                resource: ResourceKind::Storage,
            },
            ssd.config.loader_auth.clone(),
        );
        ssd
    }

    /// Counters.
    pub fn stats(&self) -> SsdStats {
        self.stats
    }

    /// The filesystem (inspection, fault injection).
    pub fn fs_mut(&mut self) -> &mut FlashFs {
        &mut self.fs
    }

    /// The monitor (connection inspection in tests).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Adjusts the isolation scheduler's quantum (requests per context per
    /// turn); used by the ablation experiments.
    pub fn set_quantum(&mut self, quantum: u32) {
        self.config.quantum = quantum.max(1);
    }

    /// Requests served on `conn` (per-context accounting).
    pub fn conn_served(&self, conn: ConnId) -> u64 {
        self.conns.get(&conn).map_or(0, |c| c.served)
    }

    /// Debug snapshot: `(conn, peer, served, queued_for_service)` rows.
    pub fn debug_conns(&self) -> Vec<(u64, u32, u64, bool)> {
        let mut v: Vec<_> = self
            .conns
            .iter()
            .map(|(c, s)| (c.0, s.peer.0, s.served, self.work.contains(c)))
            .collect();
        v.sort();
        v
    }

    fn export_file(&mut self, path: &str) -> ServiceId {
        let id = ServiceId(self.next_file_svc);
        self.next_file_svc += 1;
        self.exported.insert(id, path.to_string());
        self.monitor.add_service(
            ServiceDesc {
                id,
                name: format!("file:{path}"),
                resource: ResourceKind::Storage,
            },
            self.config.file_auth.clone(),
        );
        id
    }

    fn handle_fs_open(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        req: RequestId,
        from: DeviceId,
        params: &[u8],
    ) {
        ctx.busy(SimDuration::from_micros(2));
        match FsOp::decode(params) {
            Some(FsOp::Create { path }) => match self.fs.create(&path) {
                Ok(()) => {
                    let svc = self.export_file(&path);
                    self.monitor.announce(ctx, svc);
                    let mut w = WireWriter::new();
                    w.u16(svc.0);
                    // Control conns carry no shared memory and are closed
                    // by the response itself (conn id unused by clients).
                    self.monitor
                        .accept_open(ctx, req, from, FS_SERVICE, None, 0, w.finish());
                }
                Err(FsError::Exists) => self.monitor.reject_open(ctx, req, from, Status::Failed),
                Err(FsError::NoSpace) => {
                    self.monitor
                        .reject_open(ctx, req, from, Status::NoResources)
                }
                Err(_) => self.monitor.reject_open(ctx, req, from, Status::Failed),
            },
            Some(FsOp::Delete { path }) => {
                let svc = self
                    .exported
                    .iter()
                    .find(|(_, p)| **p == path)
                    .map(|(&s, _)| s);
                match self.fs.delete(&path) {
                    Ok(()) => {
                        if let Some(svc) = svc {
                            self.exported.remove(&svc);
                            ctx.send_bus(
                                lastcpu_bus::Dst::Bus,
                                lastcpu_bus::Payload::Withdraw { service: svc },
                            );
                        }
                        self.monitor
                            .accept_open(ctx, req, from, FS_SERVICE, None, 0, vec![]);
                    }
                    Err(FsError::NotFound) => {
                        self.monitor.reject_open(ctx, req, from, Status::NotFound)
                    }
                    Err(_) => self.monitor.reject_open(ctx, req, from, Status::Failed),
                }
            }
            Some(FsOp::List) => {
                let listing = self.fs.list().join("\n");
                self.monitor
                    .accept_open(ctx, req, from, FS_SERVICE, None, 0, listing.into_bytes());
            }
            None => self.monitor.reject_open(ctx, req, from, Status::BadRequest),
        }
    }

    fn handle_loader_open(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        req: RequestId,
        from: DeviceId,
        principal: Option<u64>,
        params: &[u8],
    ) {
        let mut r = WireReader::new(params);
        let parsed = (|| -> Option<(String, Vec<u8>)> {
            let name = r.string().ok()?;
            let contents = r.bytes().ok()?;
            r.expect_end().ok()?;
            Some((name, contents))
        })();
        match parsed {
            Some((image, contents)) => {
                let path = format!("/boot/{image}");
                if !self.fs.exists(&path) && self.fs.create(&path).is_err() {
                    self.monitor.reject_open(ctx, req, from, Status::Failed);
                    return;
                }
                match self.fs.write(&path, 0, &contents) {
                    Ok(cost) => {
                        ctx.busy(cost);
                        self.stats.images_loaded += 1;
                        ctx.trace(format!(
                            "loader: installed {path} ({} bytes) for principal {principal:?}",
                            contents.len()
                        ));
                        self.monitor.accept_open(
                            ctx,
                            req,
                            from,
                            LOADER_SERVICE,
                            principal,
                            0,
                            vec![],
                        );
                    }
                    Err(FsError::NoSpace) => {
                        self.monitor
                            .reject_open(ctx, req, from, Status::NoResources)
                    }
                    Err(_) => self.monitor.reject_open(ctx, req, from, Status::Failed),
                }
            }
            None => self.monitor.reject_open(ctx, req, from, Status::BadRequest),
        }
    }

    fn handle_file_open(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        req: RequestId,
        from: DeviceId,
        service: ServiceId,
        principal: Option<u64>,
        params: &[u8],
    ) {
        let Some(path) = self.exported.get(&service).cloned() else {
            self.monitor.reject_open(ctx, req, from, Status::NotFound);
            return;
        };
        let mut r = WireReader::new(params);
        let pasid = match r.u32() {
            Ok(p) if r.expect_end().is_ok() => p,
            _ => {
                self.monitor.reject_open(ctx, req, from, Status::BadRequest);
                return;
            }
        };
        let mut w = WireWriter::new();
        w.u64(self.fs.len(&path).unwrap_or(0));
        let conn = self.monitor.accept_open(
            ctx,
            req,
            from,
            service,
            principal,
            FILE_CONN_SHM,
            w.finish(),
        );
        self.conns.insert(
            conn,
            FileConn {
                peer: from,
                pasid: Pasid(pasid),
                file: path,
                queue: None,
                served: 0,
            },
        );
    }

    fn on_doorbell(&mut self, ctx: &mut DeviceCtx<'_>, conn: ConnId, value: u64) {
        let Some(state) = self.conns.get_mut(&conn) else {
            return;
        };
        if state.queue.is_none() {
            // First doorbell: queue setup.
            if let Some((base, size)) = decode_setup_doorbell(value) {
                let layout = QueueLayout::new(base, size);
                state.queue = Some(VirtqueueDevice::attach(layout));
                ctx.trace(format!("{conn:?}: queue attached at {base:#x} size {size}"));
            } else {
                self.reset_conn(ctx, conn, "bad queue setup doorbell");
            }
            return;
        }
        if value == DOORBELL_WORK {
            if !self.work.contains(&conn) {
                self.work.push_back(conn);
            }
            self.pump(ctx);
        }
    }

    /// Serves queued work according to the isolation policy.
    fn pump(&mut self, ctx: &mut DeviceCtx<'_>) {
        let quantum = if self.config.isolation {
            self.config.quantum
        } else {
            u32::MAX
        };
        if let Some(conn) = self.work.pop_front() {
            let more = self.serve_conn(ctx, conn, quantum);
            if more {
                self.work.push_back(conn);
            }
        }
        if !self.work.is_empty() && !self.poll_armed {
            // Continue after the cost accumulated so far has elapsed.
            self.poll_armed = true;
            ctx.set_timer(SimDuration::from_nanos(1), TOKEN_POLL);
        }
    }

    /// Serves up to `quantum` requests on `conn`. Returns whether requests
    /// may remain.
    ///
    /// The connection state is taken out of the table for the duration so
    /// the queue endpoint, the filesystem and the DMA context can be
    /// borrowed simultaneously.
    fn serve_conn(&mut self, ctx: &mut DeviceCtx<'_>, conn: ConnId, quantum: u32) -> bool {
        // Named sub-scope: allocations here show as `ssd.serve` in the E9
        // attribution table instead of vanishing into `engine.deliver`.
        let _sp = profile::span("ssd.serve");
        let Some(mut state) = self.conns.remove(&conn) else {
            return false;
        };
        let Some(queue) = state.queue.as_mut() else {
            self.conns.insert(conn, state);
            return false;
        };
        let pasid = state.pasid;
        let peer = state.peer;
        let mut served_any = false;
        let mut drained = false;
        let mut failed = false;
        for _ in 0..quantum {
            // Pop into the reusable scratch chain: no per-request Vec pair.
            let popped = {
                let mut view = ctx.dma_view(pasid);
                queue.pop_into(&mut view, &mut self.scratch_chain)
            };
            match popped {
                Ok(true) => {
                    match Self::serve_request(
                        &mut self.fs,
                        &mut self.stats,
                        &self.config,
                        queue,
                        ctx,
                        pasid,
                        &state.file,
                        &self.scratch_chain,
                        &mut self.scratch_req,
                        &mut self.scratch_resp,
                    ) {
                        Ok(()) => {
                            state.served += 1;
                            served_any = true;
                        }
                        Err(_) => {
                            failed = true;
                            break;
                        }
                    }
                }
                Ok(false) => {
                    drained = true;
                    break;
                }
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        if failed {
            // Connection context is gone: fence it and tell the peer (§4).
            self.work.retain(|&c| c != conn);
            self.stats.conn_resets += 1;
            self.monitor.reset_conn(ctx, conn, "data-path fault");
            return false;
        }
        if served_any {
            ctx.doorbell(peer, conn, DOORBELL_COMPLETION);
        }
        self.conns.insert(conn, state);
        !drained
    }

    /// Executes one request chain against the filesystem.
    #[allow(clippy::too_many_arguments)] // Split borrows of self.
    fn serve_request(
        fs: &mut FlashFs,
        stats: &mut SsdStats,
        config: &SsdConfig,
        queue: &mut VirtqueueDevice,
        ctx: &mut DeviceCtx<'_>,
        pasid: Pasid,
        file: &str,
        chain: &DescChain,
        req_buf: &mut Vec<u8>,
        resp_buf: &mut Vec<u8>,
    ) -> Result<(), QueueError> {
        ctx.busy(config.per_request_overhead);
        {
            let mut view = ctx.dma_view(pasid);
            // Gather into the reusable request buffer (capacity persists
            // across requests; segments are read in place).
            queue.read_request_into(&mut view, chain, req_buf)?;
        }
        // Borrowed decode (WRITE payloads stay in `req_buf`) and a reusable
        // response buffer: steady-state service allocates nothing.
        match FileOpRef::decode(req_buf) {
            Some(FileOpRef::Read { offset, len }) => {
                // Read straight into the response body, after the status
                // byte — no intermediate data buffer.
                resp_buf.clear();
                resp_buf.resize(1 + len as usize, 0);
                match fs.read(file, offset, &mut resp_buf[1..]) {
                    Ok(cost) => {
                        ctx.busy(cost);
                        stats.bytes_read += len as u64;
                        resp_buf[0] = FileStatus::Ok.to_u8();
                    }
                    Err(FsError::PastEof) => encode_response_into(FileStatus::Eof, &[], resp_buf),
                    Err(_) => encode_response_into(FileStatus::Io, &[], resp_buf),
                }
            }
            Some(FileOpRef::Write { offset, data }) => match fs.write(file, offset, data) {
                Ok(cost) => {
                    ctx.busy(cost);
                    stats.bytes_written += data.len() as u64;
                    encode_response_into(
                        FileStatus::Ok,
                        &(data.len() as u32).to_le_bytes(),
                        resp_buf,
                    );
                }
                Err(FsError::NoSpace) => encode_response_into(FileStatus::NoSpace, &[], resp_buf),
                Err(_) => encode_response_into(FileStatus::Io, &[], resp_buf),
            },
            Some(FileOpRef::Stat) => {
                let size = fs.len(file).unwrap_or(0);
                encode_response_into(FileStatus::Ok, &size.to_le_bytes(), resp_buf);
            }
            Some(FileOpRef::Flush) => {
                ctx.busy(SimDuration::from_micros(10));
                encode_response_into(FileStatus::Ok, &[], resp_buf);
            }
            None => encode_response_into(FileStatus::Bad, &[], resp_buf),
        }
        stats.requests += 1;
        let written = {
            let mut view = ctx.dma_view(pasid);
            match queue.write_response(&mut view, chain, resp_buf) {
                Ok(n) => n,
                Err(QueueError::ResponseTooLarge { .. }) => {
                    // Client under-provisioned its buffer: report truncated
                    // status-only response.
                    queue.write_response(&mut view, chain, &[FileStatus::Bad.to_u8()])?
                }
                Err(e) => return Err(e),
            }
        };
        let mut view = ctx.dma_view(pasid);
        queue.push_used(&mut view, chain.head, written)?;
        Ok(())
    }

    /// Resets one connection after a fatal per-connection error (§4).
    fn reset_conn(&mut self, ctx: &mut DeviceCtx<'_>, conn: ConnId, why: &str) {
        self.conns.remove(&conn);
        self.work.retain(|&c| c != conn);
        self.stats.conn_resets += 1;
        self.monitor.reset_conn(ctx, conn, why);
    }
}

impl Device for SmartSsd {
    fn snapshot_state(&self, w: &mut lastcpu_snap::SnapWriter) -> lastcpu_snap::Result<()> {
        lastcpu_snap::Snapshot::snapshot(self, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        lastcpu_snap::Restore::restore(self, r)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "smart-ssd"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.busy(SimDuration::from_micros(50)); // self-test: scan bad blocks
        let exports = self.config.exports.clone();
        for path in exports {
            if !self.fs.exists(&path) {
                // Cannot fail on an empty, just-formatted device.
                self.fs.create(&path).expect("create export at power-on");
            }
            self.export_file(&path);
        }
        let name = self.name.clone();
        self.monitor.start(ctx, &name, "smart-ssd");
        self.monitor
            .enable_heartbeat(ctx, SimDuration::from_millis(2));
    }

    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        let _sp = profile::span("ssd.on_msg");
        for ev in self.monitor.handle(ctx, &env) {
            match ev {
                MonitorEvent::OpenRequested {
                    req,
                    from,
                    service,
                    principal,
                    params,
                } => {
                    if service == FS_SERVICE {
                        self.handle_fs_open(ctx, req, from, &params);
                    } else if service == LOADER_SERVICE {
                        self.handle_loader_open(ctx, req, from, principal, &params);
                    } else {
                        self.handle_file_open(ctx, req, from, service, principal, &params);
                    }
                }
                MonitorEvent::Doorbell { conn, value } => {
                    self.on_doorbell(ctx, conn, value);
                }
                MonitorEvent::PeerClosed { conn } => {
                    self.conns.remove(&conn);
                    self.work.retain(|&c| c != conn);
                }
                MonitorEvent::PeerFailed {
                    dropped_server_conns,
                    ..
                } => {
                    for conn in dropped_server_conns {
                        self.conns.remove(&conn);
                        self.work.retain(|&c| c != conn);
                    }
                }
                _ => {}
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        let _sp = profile::span("ssd.on_timer");
        // The SSD runs no client-side operations, so monitor timer events
        // (discovery completions) cannot occur; heartbeats are handled
        // inside the monitor.
        if self.monitor.on_timer(ctx, token).is_some() {
            return;
        }
        if token == TOKEN_POLL {
            self.poll_armed = false;
            self.pump(ctx);
        }
    }

    fn on_fault(&mut self, ctx: &mut DeviceCtx<'_>, fault: IommuFault) {
        // Faults surface synchronously during DMA and the affected conn is
        // reset there; an async fault with no conn attribution is only
        // logged (it cannot corrupt another context).
        ctx.trace(format!("{}: fault {fault}", self.name));
    }

    fn on_reset(&mut self, ctx: &mut DeviceCtx<'_>) {
        self.conns.clear();
        self.work.clear();
        self.poll_armed = false;
        self.monitor.reset();
        // Re-introduce ourselves (§2.2: a reset device re-runs self-test).
        ctx.busy(SimDuration::from_micros(50));
        let name = self.name.clone();
        self.monitor.start(ctx, &name, "smart-ssd");
        self.monitor
            .enable_heartbeat(ctx, SimDuration::from_millis(2));
    }
}

// --- Driver-side client ---------------------------------------------------

/// Driver-side endpoint for a file connection.
///
/// Owns the virtqueue driver half and a buffer arena inside the connection's
/// shared-memory region. Used by the smart NIC's applications and by the
/// console device; also usable from tests over [`lastcpu_virtio::FlatMemory`].
pub struct FileClient {
    driver: lastcpu_virtio::VirtqueueDriver,
    arena: lastcpu_virtio::BufferArena,
    /// head → (req_va, resp_va, resp_capacity).
    inflight: HashMap<u16, (u64, u64, u32)>,
    /// Reused request-encode buffer (capacity persists across submits).
    encode_buf: Vec<u8>,
}

/// Arena slot size for request/response buffers.
pub const CLIENT_SLOT: u64 = 4096;

impl FileClient {
    /// Lays out a virtqueue plus buffer arena in `[region_base,
    /// region_base + FILE_CONN_SHM)` and returns the client together with
    /// the setup-doorbell value to ring on the serving SSD.
    pub fn create<M: lastcpu_virtio::QueueMemory>(
        mem: &mut M,
        region_base: u64,
        queue_size: u16,
    ) -> Result<(Self, u64), QueueError> {
        let layout = QueueLayout::new(region_base, queue_size);
        let driver = lastcpu_virtio::VirtqueueDriver::create(mem, layout)?;
        let arena_base = layout.end().div_ceil(CLIENT_SLOT) * CLIENT_SLOT;
        let region_end = region_base + FILE_CONN_SHM;
        if arena_base + 2 * CLIENT_SLOT > region_end {
            return Err(QueueError::Corrupt("region too small for queue + buffers"));
        }
        let slots = ((region_end - arena_base) / CLIENT_SLOT).min(u16::MAX as u64) as u16;
        Ok((
            FileClient {
                driver,
                arena: lastcpu_virtio::BufferArena::new(arena_base, CLIENT_SLOT, slots),
                inflight: HashMap::new(),
                encode_buf: Vec::new(),
            },
            setup_doorbell(region_base, queue_size),
        ))
    }

    /// Requests submitted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Whether another request can be submitted right now.
    pub fn can_submit(&self) -> bool {
        self.driver.free_descriptors() >= 2 && self.arena.free_slots() >= 2
    }

    /// Submits a file operation, reserving `resp_capacity` bytes for the
    /// response payload. Returns the request handle (the descriptor head).
    ///
    /// Requests and responses are limited to one [`CLIENT_SLOT`] each;
    /// larger transfers are chunked by the caller.
    pub fn submit<M: lastcpu_virtio::QueueMemory>(
        &mut self,
        mem: &mut M,
        op: &FileOp,
        resp_capacity: u32,
    ) -> Result<u16, QueueError> {
        // Encode into the reusable buffer (lent out for the duration so the
        // rest of `self` stays borrowable).
        let mut req = std::mem::take(&mut self.encode_buf);
        req.clear();
        op.encode_into(&mut req);
        let res = self.submit_encoded(mem, &req, resp_capacity);
        self.encode_buf = req;
        res
    }

    fn submit_encoded<M: lastcpu_virtio::QueueMemory>(
        &mut self,
        mem: &mut M,
        req: &[u8],
        resp_capacity: u32,
    ) -> Result<u16, QueueError> {
        let resp_len = resp_capacity + 1; // status byte
        if req.len() as u64 > CLIENT_SLOT || resp_len as u64 > CLIENT_SLOT {
            return Err(QueueError::ResponseTooLarge {
                need: (req.len() as u64).max(resp_len as u64),
                have: CLIENT_SLOT,
            });
        }
        if !self.can_submit() {
            return Err(QueueError::Full);
        }
        let req_va = self.arena.alloc().expect("checked can_submit");
        let resp_va = self.arena.alloc().expect("checked can_submit");
        mem.write(req_va, req)?;
        let head =
            match self
                .driver
                .submit_request(mem, req_va, req.len() as u32, resp_va, resp_len)
            {
                Ok(h) => h,
                Err(e) => {
                    self.arena.free(req_va);
                    self.arena.free(resp_va);
                    return Err(e);
                }
            };
        self.inflight.insert(head, (req_va, resp_va, resp_len));
        Ok(head)
    }

    /// Drains one completion into `buf` (cleared and reused; on success it
    /// holds the response payload with the status byte stripped). Returns
    /// `None` when the queue has no further completions.
    ///
    /// This is the zero-alloc drain shape: callers loop over it with one
    /// long-lived buffer instead of materializing a `Vec` per completion.
    pub fn next_completion<M: lastcpu_virtio::QueueMemory>(
        &mut self,
        mem: &mut M,
        buf: &mut Vec<u8>,
    ) -> Result<Option<(u16, FileStatus)>, QueueError> {
        let Some(c) = self.driver.complete(mem)? else {
            return Ok(None);
        };
        let (req_va, resp_va, cap) = self
            .inflight
            .remove(&c.head)
            .ok_or(QueueError::Corrupt("completion for unknown head"))?;
        let n = c.written.min(cap) as usize;
        buf.clear();
        buf.resize(n, 0);
        mem.read(resp_va, buf)?;
        self.arena.free(req_va);
        self.arena.free(resp_va);
        if buf.is_empty() {
            return Err(QueueError::Corrupt("empty file-op response"));
        }
        let status = FileStatus::from_u8(buf[0]);
        buf.copy_within(1.., 0);
        buf.truncate(n - 1);
        Ok(Some((c.head, status)))
    }

    /// Drains completions, returning `(head, status, payload)` triples.
    pub fn completions<M: lastcpu_virtio::QueueMemory>(
        &mut self,
        mem: &mut M,
    ) -> Result<Vec<(u16, FileStatus, Vec<u8>)>, QueueError> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        while let Some((head, status)) = self.next_completion(mem, &mut buf)? {
            out.push((head, status, std::mem::take(&mut buf)));
        }
        Ok(out)
    }
}

impl lastcpu_snap::Snapshot for SmartSsd {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_str(&self.name);
        self.monitor.snapshot(w);
        self.fs.snapshot(w);
        w.put_bool(self.config.isolation);
        w.put_u32(self.config.quantum);
        w.put_len(self.config.exports.len());
        for e in &self.config.exports {
            w.put_str(e);
        }
        self.config.file_auth.snap_encode(w);
        self.config.loader_auth.snap_encode(w);
        w.put_u64(self.config.per_request_overhead.as_nanos());
        let mut svcs: Vec<_> = self.exported.iter().map(|(s, p)| (s.0, p)).collect();
        svcs.sort_unstable();
        w.put_len(svcs.len());
        for (s, p) in svcs {
            w.put_u16(s);
            w.put_str(p);
        }
        w.put_u16(self.next_file_svc);
        let mut conns: Vec<_> = self.conns.keys().copied().collect();
        conns.sort_by_key(|c| c.0);
        w.put_len(conns.len());
        for c in conns {
            let fc = &self.conns[&c];
            w.put_u64(c.0);
            w.put_u32(fc.peer.0);
            w.put_u32(fc.pasid.0);
            w.put_str(&fc.file);
            w.put_opt(fc.queue.as_ref(), |w, q| q.snapshot(w));
            w.put_u64(fc.served);
        }
        w.put_len(self.work.len());
        for c in &self.work {
            w.put_u64(c.0);
        }
        w.put_bool(self.poll_armed);
        w.put_u64(self.stats.requests);
        w.put_u64(self.stats.bytes_read);
        w.put_u64(self.stats.bytes_written);
        w.put_u64(self.stats.conn_resets);
        w.put_u64(self.stats.images_loaded);
        // scratch_* buffers are reused walk scratch, cleared before every
        // use — deliberately not state.
    }
}

impl lastcpu_snap::Restore for SmartSsd {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.name = r.str()?;
        self.monitor.restore(r)?;
        self.fs.restore(r)?;
        self.config.isolation = r.bool()?;
        self.config.quantum = r.u32()?;
        let n = r.len()?;
        self.config.exports = Vec::with_capacity(n);
        for _ in 0..n {
            self.config.exports.push(r.str()?);
        }
        self.config.file_auth = AuthMode::snap_decode(r)?;
        self.config.loader_auth = AuthMode::snap_decode(r)?;
        self.config.per_request_overhead = SimDuration::from_nanos(r.u64()?);
        let n = r.len()?;
        self.exported = HashMap::with_capacity(n);
        for _ in 0..n {
            let s = ServiceId(r.u16()?);
            self.exported.insert(s, r.str()?);
        }
        self.next_file_svc = r.u16()?;
        let n = r.len()?;
        self.conns = HashMap::with_capacity(n);
        for _ in 0..n {
            let c = ConnId(r.u64()?);
            let peer = DeviceId(r.u32()?);
            let pasid = Pasid(r.u32()?);
            let file = r.str()?;
            let queue = r.opt(|r| {
                let mut q = VirtqueueDevice::attach(QueueLayout::new(0, 1));
                q.restore(r)?;
                Ok(q)
            })?;
            let served = r.u64()?;
            self.conns.insert(
                c,
                FileConn {
                    peer,
                    pasid,
                    file,
                    queue,
                    served,
                },
            );
        }
        let n = r.len()?;
        self.work = VecDeque::with_capacity(n);
        for _ in 0..n {
            self.work.push_back(ConnId(r.u64()?));
        }
        self.poll_armed = r.bool()?;
        self.stats.requests = r.u64()?;
        self.stats.bytes_read = r.u64()?;
        self.stats.bytes_written = r.u64()?;
        self.stats.conn_resets = r.u64()?;
        self.stats.images_loaded = r.u64()?;
        Ok(())
    }
}

impl lastcpu_snap::Snapshot for FileClient {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        self.driver.snapshot(w);
        self.arena.snapshot(w);
        let mut heads: Vec<_> = self.inflight.keys().copied().collect();
        heads.sort_unstable();
        w.put_len(heads.len());
        for h in heads {
            let (req_va, resp_va, cap) = self.inflight[&h];
            w.put_u16(h);
            w.put_u64(req_va);
            w.put_u64(resp_va);
            w.put_u32(cap);
        }
    }
}

impl lastcpu_snap::Restore for FileClient {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.driver.restore(r)?;
        self.arena.restore(r)?;
        let n = r.len()?;
        self.inflight = HashMap::with_capacity(n);
        for _ in 0..n {
            let h = r.u16()?;
            let req_va = r.u64()?;
            let resp_va = r.u64()?;
            let cap = r.u32()?;
            self.inflight.insert(h, (req_va, resp_va, cap));
        }
        Ok(())
    }
}

impl FileClient {
    /// A client with empty state, intended as the target of a
    /// [`lastcpu_snap::Restore`]; unusable until restored.
    pub fn placeholder() -> Self {
        FileClient {
            driver: lastcpu_virtio::VirtqueueDriver::detached(),
            arena: lastcpu_virtio::BufferArena::new(0, CLIENT_SLOT, 1),
            inflight: HashMap::new(),
            encode_buf: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastcpu_virtio::{FlatMemory, VirtqueueDevice};

    #[test]
    fn file_op_round_trips() {
        for op in [
            FileOp::Read {
                offset: 7,
                len: 100,
            },
            FileOp::Write {
                offset: 0,
                data: vec![1, 2, 3],
            },
            FileOp::Stat,
            FileOp::Flush,
        ] {
            assert_eq!(FileOp::decode(&op.encode()), Some(op));
        }
        assert_eq!(FileOp::decode(&[9, 9]), None);
        assert_eq!(FileOp::decode(&[]), None);
    }

    #[test]
    fn fs_op_round_trips() {
        for op in [
            FsOp::Create {
                path: "/a/b".into(),
            },
            FsOp::Delete {
                path: "/a/b".into(),
            },
            FsOp::List,
        ] {
            assert_eq!(FsOp::decode(&op.encode()), Some(op));
        }
        assert_eq!(FsOp::decode(&[0]), None);
    }

    #[test]
    fn response_encoding_round_trips() {
        let r = encode_response(FileStatus::Ok, b"payload");
        let (s, p) = decode_response(&r).unwrap();
        assert_eq!(s, FileStatus::Ok);
        assert_eq!(p, b"payload");
        assert_eq!(decode_response(&[]), None);
        for st in [
            FileStatus::Ok,
            FileStatus::Eof,
            FileStatus::NoSpace,
            FileStatus::Io,
            FileStatus::Bad,
        ] {
            let enc = encode_response(st, &[]);
            assert_eq!(decode_response(&enc).unwrap().0, st);
        }
    }

    #[test]
    fn setup_doorbell_round_trips() {
        let v = setup_doorbell(0x40_0000, 64);
        assert_eq!(decode_setup_doorbell(v), Some((0x40_0000, 64)));
        // A work doorbell is not a setup doorbell.
        assert_eq!(decode_setup_doorbell(DOORBELL_WORK), None);
    }

    #[test]
    fn client_round_trip_against_raw_device_endpoint() {
        let mut mem = FlatMemory::new(FILE_CONN_SHM as usize + 0x2000);
        let (mut client, setup) = FileClient::create(&mut mem, 0x1000, 16).unwrap();
        let (base, size) = decode_setup_doorbell(setup).unwrap();
        assert_eq!((base, size), (0x1000, 16));
        let mut dev = VirtqueueDevice::attach(QueueLayout::new(base, size));

        let head = client
            .submit(&mut mem, &FileOp::Read { offset: 0, len: 5 }, 16)
            .unwrap();
        assert_eq!(client.in_flight(), 1);

        // Device side: echo a canned response.
        let chain = dev.pop(&mut mem).unwrap().unwrap();
        let req = dev.read_request(&mut mem, &chain).unwrap();
        assert_eq!(
            FileOp::decode(&req),
            Some(FileOp::Read { offset: 0, len: 5 })
        );
        let resp = encode_response(FileStatus::Ok, b"hello");
        let n = dev.write_response(&mut mem, &chain, &resp).unwrap();
        dev.push_used(&mut mem, chain.head, n).unwrap();

        let done = client.completions(&mut mem).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, head);
        assert_eq!(done[0].1, FileStatus::Ok);
        assert_eq!(done[0].2, b"hello");
        assert_eq!(client.in_flight(), 0);
    }

    #[test]
    fn client_backpressure_and_release() {
        let mut mem = FlatMemory::new(FILE_CONN_SHM as usize + 0x2000);
        // Queue of 4 descriptors → 2 requests in flight max.
        let (mut client, _) = FileClient::create(&mut mem, 0x1000, 4).unwrap();
        let mut heads = vec![];
        while client.can_submit() {
            heads.push(client.submit(&mut mem, &FileOp::Stat, 16).unwrap());
        }
        assert_eq!(heads.len(), 2);
        assert!(matches!(
            client.submit(&mut mem, &FileOp::Stat, 16),
            Err(QueueError::Full)
        ));
        // Serve one; capacity returns.
        let mut dev = VirtqueueDevice::attach(QueueLayout::new(0x1000, 4));
        let chain = dev.pop(&mut mem).unwrap().unwrap();
        let resp = encode_response(FileStatus::Ok, &[]);
        let n = dev.write_response(&mut mem, &chain, &resp).unwrap();
        dev.push_used(&mut mem, chain.head, n).unwrap();
        assert_eq!(client.completions(&mut mem).unwrap().len(), 1);
        assert!(client.can_submit());
    }

    #[test]
    fn oversized_request_rejected() {
        let mut mem = FlatMemory::new(FILE_CONN_SHM as usize + 0x2000);
        let (mut client, _) = FileClient::create(&mut mem, 0x1000, 16).unwrap();
        let big = FileOp::Write {
            offset: 0,
            data: vec![0; CLIENT_SLOT as usize + 1],
        };
        assert!(matches!(
            client.submit(&mut mem, &big, 16),
            Err(QueueError::ResponseTooLarge { .. })
        ));
        assert!(matches!(
            client.submit(&mut mem, &FileOp::Stat, CLIENT_SLOT as u32),
            Err(QueueError::ResponseTooLarge { .. })
        ));
    }
}
