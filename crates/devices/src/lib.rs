//! Self-managing devices for the CPU-less system.
//!
//! §2.1 of the paper defines what a device must do to be *self-managing*:
//! manage its own internal state, expose its resources as services in a
//! standard way, multiplex those services into isolated per-application
//! contexts, and handle its own errors. This crate provides:
//!
//! - [`device`]: the [`Device`] actor trait and [`DeviceCtx`], the execution
//!   context through which a device reaches the world — control messages to
//!   the bus, IOMMU-translated DMA to shared memory, network frames, timers,
//!   doorbells. A device has *no other capabilities*: in particular it can
//!   neither touch physical memory nor program any IOMMU.
//! - [`monitor`]: the resource-monitor runtime embedded in every
//!   self-managing device (the paper compares it to a LegoOS resource
//!   monitor). It implements the client and server sides of the bus
//!   protocol: discovery, service sessions with per-connection isolation
//!   contexts, shared-memory allocation/grants, heartbeats, failure
//!   notifications. It is also the "development library" of §4
//!   (*Programmability*): applications on devices call `discover` /
//!   `open` / `alloc_shared` instead of system calls.
//! - [`flash`], [`ftl`], [`fs`]: the smart SSD's storage stack — a NAND
//!   model with real latencies and wear, a page-mapped flash translation
//!   layer with garbage collection, and a small flash filesystem.
//! - [`ssd`]: the smart SSD device: exposes `fs` and `file:<path>` services
//!   over VIRTIO queues in shared memory (the server half of the paper's §3
//!   example).
//! - [`nic`]: the smart NIC: network port plus a hosted offloaded
//!   application ([`nic::NicApp`]), the client half of §3.
//! - [`accel`]: an FPGA-style compute accelerator with spatially partitioned
//!   regions (AmorphOS-style sharing).
//! - [`auth`]: an authentication service issuing the capability tokens that
//!   `OpenRequest`s carry (§4 *Access Control*).
//! - [`console`]: a remote-console device for operators (§4 *System
//!   Maintenance*).

pub mod accel;
pub mod auth;
pub mod console;
pub mod device;
pub mod flash;
pub mod fs;
pub mod ftl;
pub mod monitor;
pub mod nic;
pub mod session;
pub mod ssd;

pub use device::{Action, Device, DeviceCtx, DmaView};
pub use monitor::{AuthMode, Monitor, MonitorEvent};
