//! A small flash filesystem over the FTL.
//!
//! Flat namespace, byte-granular reads and writes (read-modify-write at
//! page granularity underneath), per-file logical-page extent lists. The
//! directory is an in-memory structure owned by the SSD firmware; rebuilding
//! it from flash at mount is out of scope for the emulator and documented
//! as such in DESIGN.md.

use std::collections::BTreeMap;
use std::fmt;

use lastcpu_sim::SimDuration;

use crate::ftl::{Ftl, FtlError};

/// Errors from filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// No such file.
    NotFound,
    /// File already exists.
    Exists,
    /// No space for the requested growth.
    NoSpace,
    /// Read past end of file.
    PastEof,
    /// The FTL failed.
    Ftl(FtlError),
}

impl From<FtlError> for FsError {
    fn from(e: FtlError) -> Self {
        match e {
            FtlError::NoSpace => FsError::NoSpace,
            other => FsError::Ftl(other),
        }
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file"),
            FsError::Exists => write!(f, "file exists"),
            FsError::NoSpace => write!(f, "no space"),
            FsError::PastEof => write!(f, "read past end of file"),
            FsError::Ftl(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FsError {}

#[derive(Debug, Clone)]
struct FileMeta {
    /// Logical pages backing the file, in order.
    lpns: Vec<u32>,
    /// Size in bytes.
    size: u64,
}

/// The flash filesystem.
pub struct FlashFs {
    ftl: Ftl,
    files: BTreeMap<String, FileMeta>,
    /// Logical pages not owned by any file.
    free_lpns: Vec<u32>,
}

impl FlashFs {
    /// Formats a filesystem over `ftl`.
    pub fn format(ftl: Ftl) -> Self {
        let free_lpns = (0..ftl.logical_pages()).rev().collect();
        FlashFs {
            ftl,
            files: BTreeMap::new(),
            free_lpns,
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u32 {
        self.ftl.page_size()
    }

    /// Free capacity in bytes.
    pub fn free_bytes(&self) -> u64 {
        self.free_lpns.len() as u64 * self.page_size() as u64
    }

    /// The underlying FTL (stats, fault injection).
    pub fn ftl_mut(&mut self) -> &mut Ftl {
        &mut self.ftl
    }

    /// Creates an empty file.
    pub fn create(&mut self, name: &str) -> Result<(), FsError> {
        if self.files.contains_key(name) {
            return Err(FsError::Exists);
        }
        self.files.insert(
            name.to_string(),
            FileMeta {
                lpns: Vec::new(),
                size: 0,
            },
        );
        Ok(())
    }

    /// Whether `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// File size in bytes.
    pub fn len(&self, name: &str) -> Result<u64, FsError> {
        self.files
            .get(name)
            .map(|m| m.size)
            .ok_or(FsError::NotFound)
    }

    /// Lists file names in lexicographic order.
    pub fn list(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }

    /// Deletes a file, trimming its pages.
    pub fn delete(&mut self, name: &str) -> Result<(), FsError> {
        let meta = self.files.remove(name).ok_or(FsError::NotFound)?;
        for lpn in meta.lpns {
            // Trim cannot fail for pages we own.
            self.ftl.trim(lpn).expect("owned page in range");
            self.free_lpns.push(lpn);
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes at `offset`, returning the flash time spent.
    ///
    /// Fails with [`FsError::PastEof`] if the range extends past the end.
    pub fn read(
        &mut self,
        name: &str,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<SimDuration, FsError> {
        let meta = self.files.get(name).ok_or(FsError::NotFound)?;
        if offset + buf.len() as u64 > meta.size {
            return Err(FsError::PastEof);
        }
        let ps = self.page_size() as u64;
        let lpns = meta.lpns.clone();
        let mut cost = SimDuration::ZERO;
        let mut done = 0usize;
        let mut pos = offset;
        let mut page_buf = vec![0u8; ps as usize];
        while done < buf.len() {
            let page_idx = (pos / ps) as usize;
            let in_page = (ps - pos % ps) as usize;
            let chunk = in_page.min(buf.len() - done);
            let lpn = lpns[page_idx];
            cost += self.ftl.read(lpn, &mut page_buf)?;
            let start = (pos % ps) as usize;
            buf[done..done + chunk].copy_from_slice(&page_buf[start..start + chunk]);
            done += chunk;
            pos += chunk as u64;
        }
        Ok(cost)
    }

    /// Writes `data` at `offset`, growing the file as needed. Returns the
    /// flash time spent.
    pub fn write(&mut self, name: &str, offset: u64, data: &[u8]) -> Result<SimDuration, FsError> {
        if data.is_empty() {
            return if self.files.contains_key(name) {
                Ok(SimDuration::ZERO)
            } else {
                Err(FsError::NotFound)
            };
        }
        let ps = self.page_size() as u64;
        let end = offset + data.len() as u64;
        let pages_needed = end.div_ceil(ps) as usize;
        {
            let meta = self.files.get(name).ok_or(FsError::NotFound)?;
            if pages_needed > meta.lpns.len()
                && self.free_lpns.len() < pages_needed - meta.lpns.len()
            {
                return Err(FsError::NoSpace);
            }
        }
        // Grow the extent list.
        let mut grew: Vec<u32> = Vec::new();
        {
            let meta = self.files.get(name).expect("checked above");
            for _ in meta.lpns.len()..pages_needed {
                grew.push(self.free_lpns.pop().expect("checked space"));
            }
        }
        let meta = self.files.get_mut(name).expect("checked above");
        meta.lpns.extend(grew);
        meta.size = meta.size.max(end);
        let lpns = meta.lpns.clone();
        let size = meta.size;

        let mut cost = SimDuration::ZERO;
        let mut done = 0usize;
        let mut pos = offset;
        let mut page_buf = vec![0u8; ps as usize];
        while done < data.len() {
            let page_idx = (pos / ps) as usize;
            let in_page = (ps - pos % ps) as usize;
            let chunk = in_page.min(data.len() - done);
            let lpn = lpns[page_idx];
            if chunk as u64 != ps {
                // Partial page: read-modify-write (skip the read for a
                // fresh page past the old size — it reads zero anyway).
                cost += self.ftl.read(lpn, &mut page_buf)?;
            } else {
                page_buf.fill(0);
            }
            let start = (pos % ps) as usize;
            page_buf[start..start + chunk].copy_from_slice(&data[done..done + chunk]);
            cost += self.ftl.write(lpn, &page_buf)?;
            done += chunk;
            pos += chunk as u64;
        }
        debug_assert!(size >= end);
        Ok(cost)
    }
}

impl fmt::Debug for FlashFs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FlashFs(files={}, free={}KiB)",
            self.files.len(),
            self.free_bytes() / 1024
        )
    }
}

impl lastcpu_snap::Snapshot for FlashFs {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        self.ftl.snapshot(w);
        w.put_len(self.files.len());
        for (name, meta) in &self.files {
            w.put_str(name);
            w.put_u64(meta.size);
            w.put_len(meta.lpns.len());
            for &l in &meta.lpns {
                w.put_u32(l);
            }
        }
        w.put_len(self.free_lpns.len());
        for &l in &self.free_lpns {
            w.put_u32(l);
        }
    }
}

impl lastcpu_snap::Restore for FlashFs {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.ftl.restore(r)?;
        let n = r.len()?;
        self.files = BTreeMap::new();
        for _ in 0..n {
            let name = r.str()?;
            let size = r.u64()?;
            let k = r.len()?;
            let mut lpns = Vec::with_capacity(k);
            for _ in 0..k {
                lpns.push(r.u32()?);
            }
            self.files.insert(name, FileMeta { lpns, size });
        }
        let n = r.len()?;
        self.free_lpns = Vec::with_capacity(n);
        for _ in 0..n {
            self.free_lpns.push(r.u32()?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flash::{NandChip, NandConfig};

    fn fs() -> FlashFs {
        FlashFs::format(Ftl::new(NandChip::new(NandConfig {
            blocks: 32,
            pages_per_block: 8,
            page_size: 64,
            max_erase_cycles: u32::MAX,
            ..NandConfig::default()
        })))
    }

    #[test]
    fn create_write_read() {
        let mut f = fs();
        f.create("/data/kv.db").unwrap();
        f.write("/data/kv.db", 0, b"hello flash").unwrap();
        let mut buf = [0u8; 11];
        f.read("/data/kv.db", 0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello flash");
        assert_eq!(f.len("/data/kv.db").unwrap(), 11);
    }

    #[test]
    fn create_duplicate_rejected() {
        let mut f = fs();
        f.create("a").unwrap();
        assert_eq!(f.create("a"), Err(FsError::Exists));
    }

    #[test]
    fn missing_file_errors() {
        let mut f = fs();
        let mut buf = [0u8; 1];
        assert_eq!(f.read("nope", 0, &mut buf), Err(FsError::NotFound));
        assert_eq!(f.write("nope", 0, b"x"), Err(FsError::NotFound));
        assert_eq!(f.len("nope"), Err(FsError::NotFound));
        assert_eq!(f.delete("nope"), Err(FsError::NotFound));
    }

    #[test]
    fn writes_spanning_pages() {
        let mut f = fs();
        f.create("big").unwrap();
        let data: Vec<u8> = (0..300).map(|i| (i % 256) as u8).collect();
        f.write("big", 10, &data).unwrap();
        assert_eq!(f.len("big").unwrap(), 310);
        let mut buf = vec![0u8; 300];
        f.read("big", 10, &mut buf).unwrap();
        assert_eq!(buf, data);
        // Bytes before the write offset read as zero.
        let mut head = [0xAAu8; 10];
        f.read("big", 0, &mut head).unwrap();
        assert_eq!(head, [0u8; 10]);
    }

    #[test]
    fn overwrite_middle_preserves_rest() {
        let mut f = fs();
        f.create("x").unwrap();
        f.write("x", 0, &[1u8; 200]).unwrap();
        f.write("x", 50, &[2u8; 20]).unwrap();
        let mut buf = [0u8; 200];
        f.read("x", 0, &mut buf).unwrap();
        assert!(buf[..50].iter().all(|&b| b == 1));
        assert!(buf[50..70].iter().all(|&b| b == 2));
        assert!(buf[70..].iter().all(|&b| b == 1));
        assert_eq!(f.len("x").unwrap(), 200);
    }

    #[test]
    fn read_past_eof_rejected() {
        let mut f = fs();
        f.create("x").unwrap();
        f.write("x", 0, b"abc").unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(f.read("x", 0, &mut buf), Err(FsError::PastEof));
        assert_eq!(f.read("x", 3, &mut buf[..1]), Err(FsError::PastEof));
    }

    #[test]
    fn delete_frees_space() {
        let mut f = fs();
        let before = f.free_bytes();
        f.create("x").unwrap();
        f.write("x", 0, &vec![0u8; 1000]).unwrap();
        assert!(f.free_bytes() < before);
        f.delete("x").unwrap();
        assert_eq!(f.free_bytes(), before);
        assert!(!f.exists("x"));
    }

    #[test]
    fn no_space_reported_cleanly() {
        let mut f = fs();
        f.create("hog").unwrap();
        let cap = f.free_bytes();
        f.write("hog", 0, &vec![1u8; cap as usize]).unwrap();
        f.create("more").unwrap();
        assert_eq!(f.write("more", 0, b"x"), Err(FsError::NoSpace));
        // Existing data intact.
        let mut buf = [0u8; 1];
        f.read("hog", cap - 1, &mut buf).unwrap();
        assert_eq!(buf[0], 1);
    }

    #[test]
    fn list_is_sorted() {
        let mut f = fs();
        f.create("b").unwrap();
        f.create("a").unwrap();
        assert_eq!(f.list(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn empty_write_is_noop() {
        let mut f = fs();
        f.create("x").unwrap();
        assert_eq!(f.write("x", 5, &[]).unwrap(), SimDuration::ZERO);
        assert_eq!(f.len("x").unwrap(), 0);
    }

    #[test]
    fn flash_cost_is_reported() {
        let mut f = fs();
        f.create("x").unwrap();
        let wcost = f.write("x", 0, &[1u8; 128]).unwrap();
        assert!(wcost > SimDuration::ZERO);
        let mut buf = [0u8; 128];
        let rcost = f.read("x", 0, &mut buf).unwrap();
        assert!(rcost > SimDuration::ZERO);
        assert!(rcost < wcost, "flash reads are cheaper than programs");
    }
}
