//! NAND flash chip model.
//!
//! Models the constraints that make flash management non-trivial and the
//! latencies that dominate the SSD's service times:
//!
//! - pages must be erased (block-granular) before they can be programmed;
//! - pages within a block must be programmed in order;
//! - erase wears a block out; worn-out blocks go bad and must be retired
//!   (also available as fault injection for the E4 experiment);
//! - read ≪ program ≪ erase latency.
//!
//! Each operation returns the virtual time it took; the caller (FTL → SSD
//! device) accumulates it into the handler's cost.

use std::collections::HashMap;
use std::fmt;

use lastcpu_sim::SimDuration;

/// Flash geometry and timing.
#[derive(Debug, Clone, Copy)]
pub struct NandConfig {
    /// Number of erase blocks.
    pub blocks: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Page size in bytes.
    pub page_size: u32,
    /// Page read latency.
    pub read_latency: SimDuration,
    /// Page program latency.
    pub program_latency: SimDuration,
    /// Block erase latency.
    pub erase_latency: SimDuration,
    /// Erase cycles before a block wears out (`u32::MAX` = never).
    pub max_erase_cycles: u32,
}

impl Default for NandConfig {
    fn default() -> Self {
        // TLC-ish NAND behind an SSD controller.
        NandConfig {
            blocks: 256,
            pages_per_block: 64,
            page_size: 4096,
            read_latency: SimDuration::from_micros(25),
            program_latency: SimDuration::from_micros(200),
            erase_latency: SimDuration::from_millis(2),
            max_erase_cycles: 3000,
        }
    }
}

/// Errors from flash operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashError {
    /// Block or page index out of range.
    OutOfRange,
    /// Program on a page that is not erased.
    NotErased,
    /// Pages within a block must be programmed sequentially.
    OutOfOrderProgram,
    /// The block is marked bad.
    BadBlock,
    /// Data length does not equal the page size.
    BadLength,
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FlashError::OutOfRange => "address out of range",
            FlashError::NotErased => "program on non-erased page",
            FlashError::OutOfOrderProgram => "out-of-order program within block",
            FlashError::BadBlock => "block is bad",
            FlashError::BadLength => "data length != page size",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FlashError {}

#[derive(Debug, Clone, Default)]
struct BlockState {
    erase_count: u32,
    /// Index of the next page that may be programmed (sequential rule).
    write_ptr: u32,
    bad: bool,
}

/// Aggregate flash statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct FlashStats {
    /// Pages read.
    pub reads: u64,
    /// Pages programmed.
    pub programs: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Blocks that have gone bad.
    pub bad_blocks: u32,
}

/// A NAND chip.
pub struct NandChip {
    config: NandConfig,
    /// Programmed page contents, keyed by (block, page). Erased pages are
    /// absent (read back as 0xFF, as on real NAND).
    data: HashMap<(u32, u32), Vec<u8>>,
    blocks: Vec<BlockState>,
    stats: FlashStats,
}

impl NandChip {
    /// A chip with the given geometry, fully erased.
    pub fn new(config: NandConfig) -> Self {
        NandChip {
            blocks: vec![BlockState::default(); config.blocks as usize],
            data: HashMap::new(),
            config,
            stats: FlashStats::default(),
        }
    }

    /// The chip's geometry and timing.
    pub fn config(&self) -> &NandConfig {
        &self.config
    }

    /// Counters.
    pub fn stats(&self) -> FlashStats {
        self.stats
    }

    /// Total pages on the chip.
    pub fn total_pages(&self) -> u64 {
        self.config.blocks as u64 * self.config.pages_per_block as u64
    }

    fn in_range(&self, block: u32, page: u32) -> Result<(), FlashError> {
        if block >= self.config.blocks || page >= self.config.pages_per_block {
            return Err(FlashError::OutOfRange);
        }
        Ok(())
    }

    fn check(&self, block: u32, page: u32) -> Result<(), FlashError> {
        self.in_range(block, page)?;
        if self.blocks[block as usize].bad {
            return Err(FlashError::BadBlock);
        }
        Ok(())
    }

    /// Reads one page into `buf` (must be exactly one page long).
    ///
    /// Reads succeed even on *bad* blocks: wear-out kills erase/program,
    /// not (usually) reads — which is what lets an FTL relocate the live
    /// data off a block it is retiring.
    pub fn read_page(
        &mut self,
        block: u32,
        page: u32,
        buf: &mut [u8],
    ) -> Result<SimDuration, FlashError> {
        self.in_range(block, page)?;
        if buf.len() != self.config.page_size as usize {
            return Err(FlashError::BadLength);
        }
        match self.data.get(&(block, page)) {
            Some(d) => buf.copy_from_slice(d),
            None => buf.fill(0xFF), // erased pages read all-ones
        }
        self.stats.reads += 1;
        Ok(self.config.read_latency)
    }

    /// Programs one page (must be erased; must be the block's next page).
    pub fn program_page(
        &mut self,
        block: u32,
        page: u32,
        data: &[u8],
    ) -> Result<SimDuration, FlashError> {
        self.check(block, page)?;
        if data.len() != self.config.page_size as usize {
            return Err(FlashError::BadLength);
        }
        let st = &mut self.blocks[block as usize];
        if page < st.write_ptr {
            return Err(FlashError::NotErased);
        }
        if page > st.write_ptr {
            return Err(FlashError::OutOfOrderProgram);
        }
        st.write_ptr += 1;
        self.data.insert((block, page), data.to_vec());
        self.stats.programs += 1;
        Ok(self.config.program_latency)
    }

    /// Erases one block. Wears the block; a worn-out block goes bad.
    pub fn erase_block(&mut self, block: u32) -> Result<SimDuration, FlashError> {
        self.check(block, 0)?;
        for page in 0..self.config.pages_per_block {
            self.data.remove(&(block, page));
        }
        let max = self.config.max_erase_cycles;
        let st = &mut self.blocks[block as usize];
        st.write_ptr = 0;
        st.erase_count += 1;
        self.stats.erases += 1;
        if st.erase_count >= max {
            st.bad = true;
            self.stats.bad_blocks += 1;
        }
        Ok(self.config.erase_latency)
    }

    /// Erase count of a block (wear metric).
    pub fn erase_count(&self, block: u32) -> u32 {
        self.blocks.get(block as usize).map_or(0, |b| b.erase_count)
    }

    /// Whether a block is bad.
    pub fn is_bad(&self, block: u32) -> bool {
        match self.blocks.get(block as usize) {
            Some(b) => b.bad,
            None => true,
        }
    }

    /// Fault injection: marks a block bad immediately.
    pub fn force_bad_block(&mut self, block: u32) {
        if let Some(b) = self.blocks.get_mut(block as usize) {
            if !b.bad {
                b.bad = true;
                self.stats.bad_blocks += 1;
            }
        }
    }
}

impl fmt::Debug for NandChip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NandChip(blocks={}, bad={}, programs={})",
            self.config.blocks, self.stats.bad_blocks, self.stats.programs
        )
    }
}

impl lastcpu_snap::Snapshot for NandChip {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u32(self.config.blocks);
        w.put_u32(self.config.pages_per_block);
        w.put_u32(self.config.page_size);
        w.put_u64(self.config.read_latency.as_nanos());
        w.put_u64(self.config.program_latency.as_nanos());
        w.put_u64(self.config.erase_latency.as_nanos());
        w.put_u32(self.config.max_erase_cycles);
        w.put_u64(self.stats.reads);
        w.put_u64(self.stats.programs);
        w.put_u64(self.stats.erases);
        w.put_u32(self.stats.bad_blocks);
        w.put_len(self.blocks.len());
        for b in &self.blocks {
            w.put_u32(b.erase_count);
            w.put_u32(b.write_ptr);
            w.put_bool(b.bad);
        }
        let mut pages: Vec<_> = self.data.keys().copied().collect();
        pages.sort_unstable();
        w.put_len(pages.len());
        for (blk, pg) in pages {
            w.put_u32(blk);
            w.put_u32(pg);
            w.put_bytes_rle(&self.data[&(blk, pg)]);
        }
    }
}

impl lastcpu_snap::Restore for NandChip {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.config.blocks = r.u32()?;
        self.config.pages_per_block = r.u32()?;
        self.config.page_size = r.u32()?;
        self.config.read_latency = SimDuration::from_nanos(r.u64()?);
        self.config.program_latency = SimDuration::from_nanos(r.u64()?);
        self.config.erase_latency = SimDuration::from_nanos(r.u64()?);
        self.config.max_erase_cycles = r.u32()?;
        self.stats.reads = r.u64()?;
        self.stats.programs = r.u64()?;
        self.stats.erases = r.u64()?;
        self.stats.bad_blocks = r.u32()?;
        let n = r.len()?;
        if n != self.config.blocks as usize {
            return Err(r.corrupt(format!(
                "block-state count {n} != configured blocks {}",
                self.config.blocks
            )));
        }
        self.blocks = Vec::with_capacity(n);
        for _ in 0..n {
            self.blocks.push(BlockState {
                erase_count: r.u32()?,
                write_ptr: r.u32()?,
                bad: r.bool()?,
            });
        }
        let n = r.len()?;
        self.data = HashMap::with_capacity(n);
        for _ in 0..n {
            let blk = r.u32()?;
            let pg = r.u32()?;
            let body = r.bytes_rle()?;
            if body.len() != self.config.page_size as usize {
                return Err(r.corrupt(format!(
                    "page ({blk},{pg}) body is {} bytes, want {}",
                    body.len(),
                    self.config.page_size
                )));
            }
            self.data.insert((blk, pg), body);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> NandChip {
        NandChip::new(NandConfig {
            blocks: 4,
            pages_per_block: 4,
            page_size: 16,
            max_erase_cycles: 3,
            ..NandConfig::default()
        })
    }

    #[test]
    fn erased_pages_read_ff() {
        let mut c = small();
        let mut buf = [0u8; 16];
        c.read_page(0, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn program_read_round_trip() {
        let mut c = small();
        let data = [7u8; 16];
        let t = c.program_page(1, 0, &data).unwrap();
        assert!(t > SimDuration::ZERO);
        let mut buf = [0u8; 16];
        c.read_page(1, 0, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn double_program_rejected() {
        let mut c = small();
        c.program_page(0, 0, &[1; 16]).unwrap();
        assert_eq!(c.program_page(0, 0, &[2; 16]), Err(FlashError::NotErased));
    }

    #[test]
    fn out_of_order_program_rejected() {
        let mut c = small();
        assert_eq!(
            c.program_page(0, 2, &[1; 16]),
            Err(FlashError::OutOfOrderProgram)
        );
        c.program_page(0, 0, &[1; 16]).unwrap();
        c.program_page(0, 1, &[1; 16]).unwrap();
    }

    #[test]
    fn erase_enables_reprogramming() {
        let mut c = small();
        c.program_page(0, 0, &[1; 16]).unwrap();
        c.erase_block(0).unwrap();
        let mut buf = [0u8; 16];
        c.read_page(0, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xFF));
        c.program_page(0, 0, &[2; 16]).unwrap();
    }

    #[test]
    fn wear_out_marks_bad() {
        let mut c = small(); // max 3 cycles
        c.erase_block(0).unwrap();
        c.erase_block(0).unwrap();
        assert!(!c.is_bad(0));
        c.erase_block(0).unwrap();
        assert!(c.is_bad(0));
        assert_eq!(c.erase_block(0), Err(FlashError::BadBlock));
        assert_eq!(c.stats().bad_blocks, 1);
    }

    #[test]
    fn forced_bad_block_rejects_writes_but_still_reads() {
        let mut c = small();
        c.program_page(2, 0, &[7; 16]).unwrap();
        c.force_bad_block(2);
        let mut buf = [0u8; 16];
        // Reads survive (so an FTL can evacuate the block)…
        c.read_page(2, 0, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 16]);
        // …but program and erase are refused.
        assert_eq!(c.program_page(2, 1, &[0; 16]), Err(FlashError::BadBlock));
        assert_eq!(c.erase_block(2), Err(FlashError::BadBlock));
        // Idempotent.
        c.force_bad_block(2);
        assert_eq!(c.stats().bad_blocks, 1);
    }

    #[test]
    fn bounds_checked() {
        let mut c = small();
        let mut buf = [0u8; 16];
        assert_eq!(c.read_page(9, 0, &mut buf), Err(FlashError::OutOfRange));
        assert_eq!(c.read_page(0, 9, &mut buf), Err(FlashError::OutOfRange));
        assert_eq!(c.program_page(0, 0, &[0; 5]), Err(FlashError::BadLength));
    }

    #[test]
    fn latencies_are_ordered() {
        let cfg = NandConfig::default();
        assert!(cfg.read_latency < cfg.program_latency);
        assert!(cfg.program_latency < cfg.erase_latency);
    }
}
