//! The authentication service (§4 "Access Control").
//!
//! The paper: *"an access control service can be provided by a smart storage
//! controller ... roughly equivalent to the 'login' program and 'passwd'
//! file on Linux"*. The [`AuthDevice`] holds a credential table and issues
//! *sealed capability tokens*: a token binds a principal id to a tag derived
//! from a secret shared (at deployment time) with the services that trust
//! this authority. Services validate tokens locally — no per-open round
//! trip to the auth device, which keeps the open path at the two messages
//! of Figure 2.
//!
//! The sealing function is a SplitMix64 mix, *not* a cryptographic MAC; the
//! emulator models the protocol structure (who checks what, when), not
//! cryptographic strength.

use std::collections::HashMap;

use lastcpu_bus::wire::{WireReader, WireWriter};
use lastcpu_bus::{Envelope, ResourceKind, ServiceDesc, ServiceId, Token};
use lastcpu_sim::SimDuration;

use crate::device::{Device, DeviceCtx};
use crate::monitor::{AuthMode, Monitor, MonitorEvent};

/// Mixes `v` with SplitMix64's finalizer.
fn mix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seals `principal` under `secret`, producing a token whose low 64 bits
/// are the principal and whose high 64 bits are the authentication tag.
pub fn seal(secret: u64, principal: u64) -> Token {
    let tag = mix(secret ^ mix(principal));
    Token(((tag as u128) << 64) | principal as u128)
}

/// Verifies a sealed token, returning the principal on success.
pub fn verify(secret: u64, token: Token) -> Option<u64> {
    let principal = token.0 as u64;
    let tag = (token.0 >> 64) as u64;
    if mix(secret ^ mix(principal)) == tag {
        Some(principal)
    } else {
        None
    }
}

/// Hashes a username to its principal id (FNV-1a).
pub fn principal_id(user: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in user.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Service id of the login service on an [`AuthDevice`].
pub const LOGIN_SERVICE: ServiceId = ServiceId(1);

/// Encodes login parameters for an `OpenRequest` to the login service.
pub fn encode_login(user: &str, password: &str) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.string(user);
    w.string(password);
    w.finish()
}

/// Decodes the token out of a successful login `OpenResponse`'s params.
pub fn decode_login_response(params: &[u8]) -> Option<Token> {
    let mut r = WireReader::new(params);
    let t = r.u128().ok()?;
    r.expect_end().ok()?;
    Some(Token(t))
}

/// The authentication device.
pub struct AuthDevice {
    name: String,
    monitor: Monitor,
    secret: u64,
    /// user → password hash.
    users: HashMap<String, u64>,
    logins_ok: u64,
    logins_failed: u64,
}

impl AuthDevice {
    /// Creates an auth device with a sealing secret and a credential table
    /// of `(user, password)` pairs.
    pub fn new(name: &str, secret: u64, users: &[(&str, &str)]) -> Self {
        let mut monitor = Monitor::new();
        monitor.add_service(
            ServiceDesc {
                id: LOGIN_SERVICE,
                name: "auth".into(),
                resource: ResourceKind::Storage,
            },
            // The login service itself is open; the *password* is the
            // authentication factor.
            AuthMode::Open,
        );
        AuthDevice {
            name: name.to_string(),
            monitor,
            secret,
            users: users
                .iter()
                .map(|(u, p)| (u.to_string(), principal_id(p)))
                .collect(),
            logins_ok: 0,
            logins_failed: 0,
        }
    }

    /// The sealing secret (deployment configuration shared with trusting
    /// services).
    pub fn secret(&self) -> u64 {
        self.secret
    }

    /// `(successful, failed)` login counts.
    pub fn login_counts(&self) -> (u64, u64) {
        (self.logins_ok, self.logins_failed)
    }
}

impl Device for AuthDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "auth-service"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.busy(SimDuration::from_micros(2)); // self-test
        let name = self.name.clone();
        self.monitor.start(ctx, &name, "auth-service");
        self.monitor
            .enable_heartbeat(ctx, SimDuration::from_millis(2));
    }

    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        for ev in self.monitor.handle(ctx, &env) {
            if let MonitorEvent::OpenRequested {
                req, from, params, ..
            } = ev
            {
                // Parse credentials.
                let mut r = WireReader::new(&params);
                let creds = (|| -> Option<(String, String)> {
                    let u = r.string().ok()?;
                    let p = r.string().ok()?;
                    r.expect_end().ok()?;
                    Some((u, p))
                })();
                ctx.busy(SimDuration::from_micros(1)); // table lookup + seal
                let token = creds.and_then(|(user, password)| {
                    (self.users.get(&user) == Some(&principal_id(&password)))
                        .then(|| seal(self.secret, principal_id(&user)))
                });
                match token {
                    Some(t) => {
                        self.logins_ok += 1;
                        let mut w = WireWriter::new();
                        w.u128(t.0);
                        // A login session carries no shared memory; the
                        // token rides back in the response params.
                        self.monitor.accept_open(
                            ctx,
                            req,
                            from,
                            LOGIN_SERVICE,
                            None,
                            0,
                            w.finish(),
                        );
                    }
                    None => {
                        self.logins_failed += 1;
                        self.monitor
                            .reject_open(ctx, req, from, lastcpu_bus::Status::Denied);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        let _ = self.monitor.on_timer(ctx, token);
    }

    fn on_reset(&mut self, ctx: &mut DeviceCtx<'_>) {
        self.monitor.reset();
        // Re-run self-test and re-introduce ourselves (§2.2).
        ctx.busy(SimDuration::from_micros(2));
        let name = self.name.clone();
        self.monitor.start(ctx, &name, "auth-service");
        self.monitor
            .enable_heartbeat(ctx, SimDuration::from_millis(2));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_verify_round_trip() {
        let t = seal(0xDEAD, 42);
        assert_eq!(verify(0xDEAD, t), Some(42));
    }

    #[test]
    fn wrong_secret_rejected() {
        let t = seal(0xDEAD, 42);
        assert_eq!(verify(0xBEEF, t), None);
    }

    #[test]
    fn forged_principal_rejected() {
        let t = seal(0xDEAD, 42);
        // Attacker swaps the principal, keeping the tag.
        let forged = Token((t.0 & !0xFFFF_FFFF_FFFF_FFFFu128) | 43);
        assert_eq!(verify(0xDEAD, forged), None);
    }

    #[test]
    fn none_token_never_verifies() {
        assert_eq!(verify(0, Token::NONE), None);
        assert_eq!(verify(0xDEAD, Token::NONE), None);
    }

    #[test]
    fn principal_ids_distinct() {
        assert_ne!(principal_id("alice"), principal_id("bob"));
        assert_eq!(principal_id("alice"), principal_id("alice"));
    }

    #[test]
    fn login_params_round_trip() {
        let p = encode_login("alice", "hunter2");
        let mut r = WireReader::new(&p);
        assert_eq!(r.string().unwrap(), "alice");
        assert_eq!(r.string().unwrap(), "hunter2");
    }

    #[test]
    fn login_response_decoding() {
        let t = seal(1, 2);
        let mut w = WireWriter::new();
        w.u128(t.0);
        assert_eq!(decode_login_response(&w.finish()), Some(t));
        assert_eq!(decode_login_response(&[1, 2, 3]), None);
    }
}
