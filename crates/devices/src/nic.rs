//! The smart NIC: a programmable network device hosting offloaded
//! applications.
//!
//! §3 of the paper: "all application logic would be compiled to run on the
//! smartNIC. The development environment for the smartNIC would include a
//! library that encapsulates the functionality of the system bus". Here
//! the hosted application implements [`NicApp`]; the "library" it links
//! against is the [`Monitor`] the NIC passes in through [`NicEnv`].
//!
//! The NIC itself handles device lifecycle (self-test, `Hello`, heartbeats,
//! reset) and forwards everything else: network frames, monitor events,
//! timers and IOMMU faults go to the application. A loader-style
//! `install()` hook swaps the application image, modelling the firmware
//! update path.

use lastcpu_bus::Envelope;
use lastcpu_iommu::IommuFault;
use lastcpu_net::Frame;
use lastcpu_sim::SimDuration;

use crate::device::{Device, DeviceCtx};
use crate::monitor::{Monitor, MonitorEvent};

/// Environment handed to the hosted application: the execution context and
/// the device's monitor (the paper's device-side OS library).
pub struct NicEnv<'a, 'b> {
    /// The handler execution context.
    pub ctx: &'a mut DeviceCtx<'b>,
    /// The NIC's resource monitor / libos.
    pub monitor: &'a mut Monitor,
}

/// An application offloaded onto a smart NIC.
pub trait NicApp {
    /// Application name (for traces).
    fn app_name(&self) -> &str;

    /// Called once the NIC is registered on the bus.
    fn on_start(&mut self, env: &mut NicEnv<'_, '_>);

    /// A network frame arrived on the NIC's port.
    fn on_net(&mut self, env: &mut NicEnv<'_, '_>, frame: Frame);

    /// A monitor event (discovery result, open completion, doorbell, ...).
    fn on_event(&mut self, env: &mut NicEnv<'_, '_>, ev: MonitorEvent);

    /// An application timer fired (tokens without the monitor's top bit).
    fn on_timer(&mut self, _env: &mut NicEnv<'_, '_>, _token: u64) {}

    /// The NIC's IOMMU delivered a fault attributable to this app's DMA.
    fn on_fault(&mut self, _env: &mut NicEnv<'_, '_>, _fault: IommuFault) {}

    /// The device was reset; drop all state.
    fn on_reset(&mut self) {}

    /// Serializes the application's durable state for a machine
    /// checkpoint (the NIC body embeds it in its own section). Loud
    /// default, mirroring [`Device::snapshot_state`].
    fn snapshot_state(&self, _w: &mut lastcpu_snap::SnapWriter) -> lastcpu_snap::Result<()> {
        Err(lastcpu_snap::SnapError::Unsupported(format!(
            "nic app {:?}",
            self.app_name()
        )))
    }

    /// Loads state written by [`NicApp::snapshot_state`] back in place.
    fn restore_state(&mut self, _r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        Err(lastcpu_snap::SnapError::Unsupported(format!(
            "nic app {:?}",
            self.app_name()
        )))
    }
}

/// A smart NIC hosting application `A`.
pub struct SmartNic<A> {
    name: String,
    monitor: Monitor,
    app: A,
    app_started: bool,
    /// Firmware image version (bumped by [`SmartNic::install`]).
    app_version: u32,
}

impl<A: NicApp + 'static> SmartNic<A> {
    /// Creates a NIC hosting `app`.
    pub fn new(name: &str, app: A) -> Self {
        SmartNic {
            name: name.to_string(),
            monitor: Monitor::new(),
            app,
            app_started: false,
            app_version: 1,
        }
    }

    /// The hosted application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// The hosted application, mutably.
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    /// The NIC's monitor (inspection).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Current application image version.
    pub fn app_version(&self) -> u32 {
        self.app_version
    }

    /// Installs a new application image (the loader path): replaces the
    /// app, bumps the version and restarts it.
    pub fn install(&mut self, ctx: &mut DeviceCtx<'_>, app: A) {
        self.app = app;
        self.app_version += 1;
        ctx.busy(SimDuration::from_millis(1)); // image flash + restart
        let mut env = NicEnv {
            ctx,
            monitor: &mut self.monitor,
        };
        self.app.on_start(&mut env);
    }
}

impl<A: NicApp + 'static> Device for SmartNic<A> {
    fn snapshot_state(&self, w: &mut lastcpu_snap::SnapWriter) -> lastcpu_snap::Result<()> {
        w.put_str(&self.name);
        w.put_u32(self.app_version);
        w.put_bool(self.app_started);
        lastcpu_snap::Snapshot::snapshot(&self.monitor, w);
        self.app.snapshot_state(w)
    }

    fn restore_state(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.name = r.str()?;
        self.app_version = r.u32()?;
        self.app_started = r.bool()?;
        lastcpu_snap::Restore::restore(&mut self.monitor, r)?;
        self.app.restore_state(r)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "smart-nic"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.busy(SimDuration::from_micros(20)); // self-test: PHY bring-up
        let name = self.name.clone();
        self.monitor.start(ctx, &name, "smart-nic");
        self.monitor
            .enable_heartbeat(ctx, SimDuration::from_millis(2));
    }

    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        // Named sub-scope: the monitor's event vector and session
        // bookkeeping attribute as `nic.on_msg` in the E9 table.
        let _sp = lastcpu_sim::profile::span("nic.on_msg");
        let events = self.monitor.handle(ctx, &env);
        for ev in events {
            // The app starts once registration completes, so its first
            // discovery happens on a live bus.
            if ev == MonitorEvent::Registered && !self.app_started {
                self.app_started = true;
                let mut e = NicEnv {
                    ctx,
                    monitor: &mut self.monitor,
                };
                self.app.on_start(&mut e);
                continue;
            }
            let mut e = NicEnv {
                ctx,
                monitor: &mut self.monitor,
            };
            self.app.on_event(&mut e, ev);
        }
    }

    fn on_net(&mut self, ctx: &mut DeviceCtx<'_>, frame: Frame) {
        // Per-frame firmware cost: parse + dispatch.
        ctx.busy(SimDuration::from_nanos(300));
        let mut e = NicEnv {
            ctx,
            monitor: &mut self.monitor,
        };
        self.app.on_net(&mut e, frame);
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        match self.monitor.on_timer(ctx, token) {
            None => {
                let mut e = NicEnv {
                    ctx,
                    monitor: &mut self.monitor,
                };
                self.app.on_timer(&mut e, token);
            }
            Some(events) => {
                // Monitor timers can complete operations (e.g. a discovery
                // window closing); those events belong to the app.
                for ev in events {
                    let mut e = NicEnv {
                        ctx,
                        monitor: &mut self.monitor,
                    };
                    self.app.on_event(&mut e, ev);
                }
            }
        }
    }

    fn on_fault(&mut self, ctx: &mut DeviceCtx<'_>, fault: IommuFault) {
        let mut e = NicEnv {
            ctx,
            monitor: &mut self.monitor,
        };
        self.app.on_fault(&mut e, fault);
    }

    fn on_reset(&mut self, ctx: &mut DeviceCtx<'_>) {
        self.monitor.reset();
        self.app.on_reset();
        self.app_started = false;
        ctx.busy(SimDuration::from_micros(20));
        let name = self.name.clone();
        self.monitor.start(ctx, &name, "smart-nic");
        self.monitor
            .enable_heartbeat(ctx, SimDuration::from_millis(2));
    }
}

/// A trivial app that echoes every frame back to its sender — the NIC
/// equivalent of a loopback firmware, used in tests and as the default
/// image in the loader example.
pub struct EchoApp {
    frames_echoed: u64,
}

impl EchoApp {
    /// A fresh echo app.
    pub fn new() -> Self {
        EchoApp { frames_echoed: 0 }
    }

    /// Frames echoed so far.
    pub fn frames_echoed(&self) -> u64 {
        self.frames_echoed
    }
}

impl Default for EchoApp {
    fn default() -> Self {
        Self::new()
    }
}

impl NicApp for EchoApp {
    fn app_name(&self) -> &str {
        "echo"
    }

    fn on_start(&mut self, _env: &mut NicEnv<'_, '_>) {}

    fn on_net(&mut self, env: &mut NicEnv<'_, '_>, frame: Frame) {
        self.frames_echoed += 1;
        let Some(port) = env.ctx.port else { return };
        env.ctx
            .net_tx(Frame::unicast(port, frame.src, frame.payload));
    }

    fn on_event(&mut self, _env: &mut NicEnv<'_, '_>, _ev: MonitorEvent) {}

    fn snapshot_state(&self, w: &mut lastcpu_snap::SnapWriter) -> lastcpu_snap::Result<()> {
        lastcpu_snap::Snapshot::snapshot(self, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        lastcpu_snap::Restore::restore(self, r)
    }
}

impl<A: lastcpu_snap::Snapshot> lastcpu_snap::Snapshot for SmartNic<A> {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_str(&self.name);
        w.put_u32(self.app_version);
        w.put_bool(self.app_started);
        self.monitor.snapshot(w);
        self.app.snapshot(w);
    }
}

impl<A: lastcpu_snap::Restore> lastcpu_snap::Restore for SmartNic<A> {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.name = r.str()?;
        self.app_version = r.u32()?;
        self.app_started = r.bool()?;
        self.monitor.restore(r)?;
        self.app.restore(r)
    }
}

impl lastcpu_snap::Snapshot for EchoApp {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u64(self.frames_echoed);
    }
}

impl lastcpu_snap::Restore for EchoApp {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.frames_echoed = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastcpu_bus::CorrId;
    use lastcpu_bus::{DeviceId, Dst, Payload, RequestId};
    use lastcpu_iommu::Iommu;
    use lastcpu_mem::Dram;
    use lastcpu_net::PortId;
    use lastcpu_sim::MetricsHub;
    use lastcpu_sim::{DetRng, SimTime};

    struct Fix {
        iommu: Iommu,
        dram: Dram,
        rng: DetRng,
        req: u64,
        stats: MetricsHub,
    }

    impl Fix {
        fn new() -> Self {
            Fix {
                iommu: Iommu::new(16),
                dram: Dram::new(1 << 20),
                rng: DetRng::new(7),
                req: 0,
                stats: MetricsHub::new(),
            }
        }

        fn ctx(&mut self) -> DeviceCtx<'_> {
            DeviceCtx::new(
                SimTime::ZERO,
                DeviceId(1),
                Some(PortId(9)),
                &mut self.iommu,
                &mut self.dram,
                &mut self.rng,
                &mut self.req,
                CorrId::NONE,
                &self.stats,
            )
        }
    }

    /// App that records lifecycle callbacks.
    #[derive(Default)]
    struct SpyApp {
        started: u32,
        frames: u32,
        events: u32,
        resets: u32,
    }

    impl NicApp for SpyApp {
        fn app_name(&self) -> &str {
            "spy"
        }

        fn on_start(&mut self, _env: &mut NicEnv<'_, '_>) {
            self.started += 1;
        }

        fn on_net(&mut self, _env: &mut NicEnv<'_, '_>, _frame: Frame) {
            self.frames += 1;
        }

        fn on_event(&mut self, _env: &mut NicEnv<'_, '_>, _ev: MonitorEvent) {
            self.events += 1;
        }

        fn on_reset(&mut self) {
            self.resets += 1;
        }
    }

    fn hello_ack() -> Envelope {
        Envelope {
            src: DeviceId::BUS,
            dst: Dst::Device(DeviceId(1)),
            req: RequestId(0),
            corr: CorrId::NONE,
            payload: Payload::HelloAck {
                assigned: DeviceId(1),
            },
        }
    }

    #[test]
    fn app_starts_on_registration_not_before() {
        let mut fix = Fix::new();
        let mut nic = SmartNic::new("nic0", SpyApp::default());
        let mut ctx = fix.ctx();
        nic.on_start(&mut ctx);
        assert_eq!(nic.app().started, 0);
        drop(ctx);
        let mut ctx = fix.ctx();
        nic.on_message(&mut ctx, hello_ack());
        assert_eq!(nic.app().started, 1);
        // A second HelloAck does not restart the app.
        nic.on_message(&mut ctx, hello_ack());
        assert_eq!(nic.app().started, 1);
        assert_eq!(nic.app().events, 1, "second Registered surfaces as event");
    }

    #[test]
    fn frames_reach_the_app() {
        let mut fix = Fix::new();
        let mut nic = SmartNic::new("nic0", SpyApp::default());
        let mut ctx = fix.ctx();
        nic.on_net(
            &mut ctx,
            Frame::unicast(PortId(2), PortId(9), vec![1, 2, 3]),
        );
        assert_eq!(nic.app().frames, 1);
        assert!(ctx.elapsed() > SimDuration::ZERO, "per-frame cost charged");
    }

    #[test]
    fn echo_app_reflects_frames() {
        let mut fix = Fix::new();
        let mut nic = SmartNic::new("nic0", EchoApp::new());
        let mut ctx = fix.ctx();
        nic.on_net(
            &mut ctx,
            Frame::unicast(PortId(2), PortId(9), b"ping".to_vec()),
        );
        let (actions, _, _) = ctx.finish();
        let tx = actions
            .iter()
            .find_map(|a| match a {
                crate::device::Action::NetTx(f) => Some(f.clone()),
                _ => None,
            })
            .expect("echo transmits");
        assert_eq!(tx.dst, PortId(2));
        assert_eq!(tx.src, PortId(9));
        assert_eq!(tx.payload, b"ping");
        assert_eq!(nic.app().frames_echoed(), 1);
    }

    #[test]
    fn install_swaps_image_and_restarts() {
        let mut fix = Fix::new();
        let mut nic = SmartNic::new("nic0", SpyApp::default());
        assert_eq!(nic.app_version(), 1);
        let mut ctx = fix.ctx();
        nic.install(&mut ctx, SpyApp::default());
        assert_eq!(nic.app_version(), 2);
        assert_eq!(nic.app().started, 1, "new image starts immediately");
    }

    #[test]
    fn reset_restarts_lifecycle() {
        let mut fix = Fix::new();
        let mut nic = SmartNic::new("nic0", SpyApp::default());
        let mut ctx = fix.ctx();
        nic.on_message(&mut ctx, hello_ack());
        drop(ctx);
        let mut ctx = fix.ctx();
        nic.on_reset(&mut ctx);
        assert_eq!(nic.app().resets, 1);
        let (actions, _, _) = ctx.finish();
        // Reset re-sends Hello.
        assert!(actions.iter().any(|a| matches!(
            a,
            crate::device::Action::SendBus(Envelope {
                payload: Payload::Hello { .. },
                ..
            })
        )));
        drop(actions);
        // And the app starts again on re-registration.
        let mut ctx = fix.ctx();
        nic.on_message(&mut ctx, hello_ack());
        assert_eq!(nic.app().started, 2);
    }

    #[test]
    fn app_timers_pass_through() {
        let mut fix = Fix::new();
        let mut nic = SmartNic::new("nic0", SpyApp::default());
        let mut ctx = fix.ctx();
        nic.on_timer(&mut ctx, 7); // app-namespace token
                                   // SpyApp has no on_timer counter; just verify no panic and that a
                                   // monitor token is swallowed.
        nic.on_timer(&mut ctx, 1 << 63);
    }
}
