//! The device actor model.
//!
//! A device is a mailbox-driven actor. The simulator (in `lastcpu-core`)
//! calls the [`Device`] hooks with a [`DeviceCtx`] that (a) exposes the only
//! capabilities a device legitimately has, and (b) accounts the virtual time
//! the handler consumes, so outgoing effects are timestamped after the work
//! that produced them.
//!
//! Data-plane accesses are synchronous in *state* (the bytes move now, so
//! the next event observes them) but asynchronous in *time* (their cost
//! accumulates in the context and delays everything the handler emits).
//! This is the standard discrete-event compromise and keeps device code
//! straight-line instead of a continuation swamp.

use lastcpu_bus::{ConnId, DeviceId, Dst, Envelope, Payload, RequestId};
use lastcpu_iommu::{AccessKind, Iommu, IommuFault};
use lastcpu_mem::{Dram, Pasid, VirtAddr};
use lastcpu_net::{Frame, PortId};
use lastcpu_sim::{BufPool, Bytes, CorrId, DetRng, MetricsHub, SimDuration, SimTime};
use lastcpu_virtio::{MemFault, QueueMemory};

/// An outgoing effect queued by a device handler.
///
/// Effects are applied by the simulator *after* the handler returns, at
/// `now + elapsed` where `elapsed` is the compute/DMA time the handler
/// accumulated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send a control-plane message (via the system bus).
    SendBus(Envelope),
    /// Send a doorbell over the *data plane* — modelled after MSI: a memory
    /// write to a special address, far cheaper than a bus message (§2.3
    /// "Notifications").
    Doorbell {
        /// Receiving device.
        to: DeviceId,
        /// Connection the doorbell belongs to.
        conn: ConnId,
        /// Implementation-defined value.
        value: u64,
    },
    /// Arm a timer; [`Device::on_timer`] fires with `token` after `delay`.
    SetTimer {
        /// Delay from the effect's application time.
        delay: SimDuration,
        /// Opaque token returned to the device.
        token: u64,
    },
    /// Transmit a network frame (smart NICs only — the simulator ignores it
    /// for devices without a port).
    NetTx(Frame),
    /// Emit a trace record.
    Trace(String),
    /// Emit a critical-path stage mark (see `lastcpu_sim::critpath`).
    Stage {
        /// Milestone label (`server.recv`, `server.done`, …).
        stage: &'static str,
        /// Primary join key.
        id: u64,
        /// Secondary disambiguator.
        aux: u64,
    },
    /// The device declares itself failed (self-detected fatal error). The
    /// simulator tells the bus, which fences and broadcasts (§4).
    Halt {
        /// Why the device died.
        reason: String,
    },
}

/// The execution context of one handler invocation.
pub struct DeviceCtx<'a> {
    /// Virtual time the handler started.
    pub now: SimTime,
    /// The device's bus address.
    pub dev: DeviceId,
    /// The device's network port, if it has one.
    pub port: Option<PortId>,
    /// Correlation id of the activity this handler belongs to. The simulator
    /// sets it from the triggering event (envelope, timer, frame) and every
    /// outgoing envelope is stamped with it, so causality survives hops.
    pub corr: CorrId,
    /// The system-wide metrics hub. Device firmware registers its own
    /// counters/histograms here (keyed `subsystem.device.metric`); handles
    /// obtained once are plain `Cell` writes on the hot path.
    pub stats: &'a MetricsHub,
    /// Whether the system's trace sink is collecting. Devices use this to
    /// skip building [`Action::Trace`] / [`Action::Stage`] payloads on hot
    /// paths when nothing would record them.
    pub tracing: bool,
    iommu: &'a mut Iommu,
    dram: &'a mut Dram,
    rng: &'a mut DetRng,
    next_req: &'a mut u64,
    pool: Option<&'a BufPool>,
    /// Accumulated handler cost.
    elapsed: SimDuration,
    /// Queued effects.
    actions: Vec<Action>,
    /// Faults raised by DMA during this handler (for stats; the handler
    /// also sees each fault as an `Err` return).
    faults: Vec<IommuFault>,
}

impl<'a> DeviceCtx<'a> {
    /// Creates a context. Called by the simulator only.
    #[allow(clippy::too_many_arguments)] // Wiring constructor for the simulator.
    pub fn new(
        now: SimTime,
        dev: DeviceId,
        port: Option<PortId>,
        iommu: &'a mut Iommu,
        dram: &'a mut Dram,
        rng: &'a mut DetRng,
        next_req: &'a mut u64,
        corr: CorrId,
        stats: &'a MetricsHub,
    ) -> Self {
        DeviceCtx {
            now,
            dev,
            port,
            corr,
            stats,
            tracing: false,
            iommu,
            dram,
            rng,
            next_req,
            pool: None,
            elapsed: SimDuration::ZERO,
            actions: Vec::new(),
            faults: Vec::new(),
        }
    }

    /// Marks the context as tracing-enabled (the simulator sets this from
    /// the trace sink's state before each callback).
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Attaches the machine's payload-buffer pool (simulator only).
    pub fn with_pool(mut self, pool: &'a BufPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Seeds the action/fault buffers with reusable scratch `Vec`s
    /// (simulator only; the simulator stores the `Vec`s back after
    /// draining them, so the per-handler allocations disappear).
    pub fn with_scratch(mut self, actions: Vec<Action>, faults: Vec<IommuFault>) -> Self {
        debug_assert!(actions.is_empty() && faults.is_empty());
        self.actions = actions;
        self.faults = faults;
        self
    }

    /// An empty payload buffer, drawn from the machine's pool when one is
    /// attached. Encode into it and hand it to [`DeviceCtx::net_tx`] (via
    /// [`Frame::unicast`]); the storage recycles when the frame is consumed
    /// at the receiver.
    pub fn take_buf(&self) -> Bytes {
        match self.pool {
            Some(p) => p.take(),
            None => Bytes::new(),
        }
    }

    /// A payload buffer initialized with a copy of `src` (pooled when a
    /// pool is attached).
    pub fn take_buf_copy(&self, src: &[u8]) -> Bytes {
        match self.pool {
            Some(p) => p.take_copy(src),
            None => src.into(),
        }
    }

    /// Consumes the context, returning queued actions, accumulated cost and
    /// faults. Called by the simulator only.
    pub fn finish(self) -> (Vec<Action>, SimDuration, Vec<IommuFault>) {
        (self.actions, self.elapsed, self.faults)
    }

    /// The device's deterministic RNG.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Time accumulated so far in this handler.
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Charges `d` of device compute time (firmware work, hash lookups...).
    pub fn busy(&mut self, d: SimDuration) {
        self.elapsed += d;
    }

    /// Allocates a fresh request id for an outgoing request.
    pub fn next_request_id(&mut self) -> RequestId {
        let r = RequestId(*self.next_req);
        *self.next_req += 1;
        r
    }

    /// Queues a control-plane message with a fresh request id, returning it.
    pub fn send_bus(&mut self, dst: Dst, payload: Payload) -> RequestId {
        let req = self.next_request_id();
        self.send_bus_with_req(dst, req, payload);
        req
    }

    /// Queues a control-plane message echoing an existing request id
    /// (responses).
    pub fn send_bus_with_req(&mut self, dst: Dst, req: RequestId, payload: Payload) {
        self.actions.push(Action::SendBus(Envelope {
            src: self.dev,
            dst,
            req,
            corr: self.corr,
            payload,
        }));
    }

    /// Queues a data-plane doorbell.
    pub fn doorbell(&mut self, to: DeviceId, conn: ConnId, value: u64) {
        self.actions.push(Action::Doorbell { to, conn, value });
    }

    /// Arms a timer.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.actions.push(Action::SetTimer { delay, token });
    }

    /// Queues a network transmission.
    pub fn net_tx(&mut self, frame: Frame) {
        self.actions.push(Action::NetTx(frame));
    }

    /// Emits a trace record.
    pub fn trace(&mut self, what: impl Into<String>) {
        self.actions.push(Action::Trace(what.into()));
    }

    /// Emits a critical-path stage mark. A no-op while the trace sink is
    /// disabled, so per-operation marks cost performance runs nothing.
    #[inline]
    pub fn stage(&mut self, stage: &'static str, id: u64, aux: u64) {
        if self.tracing {
            self.actions.push(Action::Stage { stage, id, aux });
        }
    }

    /// Declares the device failed.
    pub fn halt(&mut self, reason: impl Into<String>) {
        self.actions.push(Action::Halt {
            reason: reason.into(),
        });
    }

    /// DMA-reads `buf.len()` bytes at `va` in address space `pasid`.
    ///
    /// Charges translation plus DRAM access time. On a fault, the fault is
    /// recorded (it will also be counted by the simulator) and returned.
    pub fn dma_read(
        &mut self,
        pasid: Pasid,
        va: VirtAddr,
        buf: &mut [u8],
    ) -> Result<(), IommuFault> {
        self.dma(
            pasid,
            va,
            buf.len() as u64,
            AccessKind::Read,
            |dram, pa, off, chunk, buf| dram.read(pa, &mut buf[off..off + chunk]).map(|_| ()),
            buf,
        )
    }

    /// DMA-writes `data` at `va` in address space `pasid`.
    pub fn dma_write(&mut self, pasid: Pasid, va: VirtAddr, data: &[u8]) -> Result<(), IommuFault> {
        // The closure-based helper needs a mutable buffer; clone-free path:
        let mut remaining = data;
        let mut cur = va;
        while !remaining.is_empty() {
            let in_page = (lastcpu_mem::PAGE_SIZE - cur.page_offset()) as usize;
            let chunk = in_page.min(remaining.len());
            let t = match self.iommu.translate(pasid, cur, AccessKind::Write) {
                Ok(t) => t,
                Err(f) => {
                    // A faulting access still paid for the lookup and walk.
                    let cm = self.iommu.cost_model();
                    self.elapsed += cm.tlb_lookup + cm.walk_per_access.saturating_mul(4);
                    self.faults.push(f);
                    return Err(f);
                }
            };
            self.elapsed += t.cost;
            self.elapsed += self.dram.access_time(chunk as u64);
            self.dram
                .write(t.pa, &remaining[..chunk])
                .expect("translated address within DRAM");
            remaining = &remaining[chunk..];
            cur = cur + chunk as u64;
        }
        Ok(())
    }

    fn dma(
        &mut self,
        pasid: Pasid,
        va: VirtAddr,
        len: u64,
        access: AccessKind,
        op: impl Fn(
            &mut Dram,
            lastcpu_mem::PhysAddr,
            usize,
            usize,
            &mut [u8],
        ) -> Result<(), lastcpu_mem::DramError>,
        buf: &mut [u8],
    ) -> Result<(), IommuFault> {
        let mut off = 0usize;
        let mut cur = va;
        while off < len as usize {
            let in_page = (lastcpu_mem::PAGE_SIZE - cur.page_offset()) as usize;
            let chunk = in_page.min(len as usize - off);
            let t = match self.iommu.translate(pasid, cur, access) {
                Ok(t) => t,
                Err(f) => {
                    // A faulting access still paid for the lookup and walk.
                    let cm = self.iommu.cost_model();
                    self.elapsed += cm.tlb_lookup + cm.walk_per_access.saturating_mul(4);
                    self.faults.push(f);
                    return Err(f);
                }
            };
            self.elapsed += t.cost;
            self.elapsed += self.dram.access_time(chunk as u64);
            op(self.dram, t.pa, off, chunk, buf).expect("translated address within DRAM");
            off += chunk;
            cur = cur + chunk as u64;
        }
        Ok(())
    }

    /// A [`QueueMemory`] view of one address space, for virtqueue endpoints.
    pub fn dma_view(&mut self, pasid: Pasid) -> DmaView<'a, '_> {
        DmaView { ctx: self, pasid }
    }
}

/// [`QueueMemory`] implementation backed by IOMMU-translated DMA.
pub struct DmaView<'a, 'b> {
    ctx: &'b mut DeviceCtx<'a>,
    pasid: Pasid,
}

impl QueueMemory for DmaView<'_, '_> {
    fn read(&mut self, va: u64, buf: &mut [u8]) -> Result<(), MemFault> {
        self.ctx
            .dma_read(self.pasid, VirtAddr::new(va), buf)
            .map_err(|f| MemFault {
                va: f.va.as_u64(),
                write: false,
            })
    }

    fn write(&mut self, va: u64, buf: &[u8]) -> Result<(), MemFault> {
        self.ctx
            .dma_write(self.pasid, VirtAddr::new(va), buf)
            .map_err(|f| MemFault {
                va: f.va.as_u64(),
                write: true,
            })
    }
}

/// A self-managing device.
///
/// All hooks receive a fresh [`DeviceCtx`]; state persists in `self`.
///
/// The `Any` supertrait lets the simulator hand back typed references to
/// devices for inspection in tests and experiments.
pub trait Device: std::any::Any {
    /// Short stable name, e.g. `"nic0"`.
    fn name(&self) -> &str;

    /// Device kind, e.g. `"smart-ssd"`.
    fn kind(&self) -> &str;

    /// Called once when the system powers on: run self-test, send `Hello`,
    /// announce services, start applications (§2.2 "System
    /// Initialization").
    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>);

    /// A control-plane message (or doorbell) arrived.
    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope);

    /// A timer armed with [`DeviceCtx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64);

    /// A network frame arrived on the device's port (NICs only).
    fn on_net(&mut self, _ctx: &mut DeviceCtx<'_>, _frame: Frame) {}

    /// The device's IOMMU delivered a fault from an earlier DMA (§4 "Error
    /// Handling": each device handles its own faults).
    fn on_fault(&mut self, _ctx: &mut DeviceCtx<'_>, _fault: IommuFault) {}

    /// The bus pulsed the reset line. The device must drop all state and
    /// re-introduce itself (`Hello`) if it recovers.
    fn on_reset(&mut self, _ctx: &mut DeviceCtx<'_>) {}

    /// Serializes the device's durable state into a checkpoint section
    /// body. The default fails loudly: a device type either implements
    /// this or cannot appear in a checkpointed machine — silently
    /// skipping state would make restore verification meaningless.
    fn snapshot_state(&self, _w: &mut lastcpu_snap::SnapWriter) -> lastcpu_snap::Result<()> {
        Err(lastcpu_snap::SnapError::Unsupported(format!(
            "device {:?} (kind {:?})",
            self.name(),
            self.kind()
        )))
    }

    /// Loads state written by [`Device::snapshot_state`] back in place.
    fn restore_state(&mut self, _r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        Err(lastcpu_snap::SnapError::Unsupported(format!(
            "device {:?} (kind {:?})",
            self.name(),
            self.kind()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastcpu_mem::{Perms, PhysAddr};

    fn fixture() -> (Iommu, Dram, DetRng, u64) {
        let mut iommu = Iommu::new(16);
        iommu.bind_pasid(Pasid(1));
        iommu
            .map(
                Pasid(1),
                VirtAddr::new(0x1000),
                PhysAddr::new(0x4000),
                Perms::RW,
            )
            .unwrap();
        iommu
            .map(
                Pasid(1),
                VirtAddr::new(0x2000),
                PhysAddr::new(0x5000),
                Perms::RW,
            )
            .unwrap();
        (iommu, Dram::new(1 << 20), DetRng::new(1), 0)
    }

    #[test]
    fn dma_round_trip_and_cost() {
        let (mut iommu, mut dram, mut rng, mut req) = fixture();
        let hub = MetricsHub::new();
        let mut ctx = DeviceCtx::new(
            SimTime::ZERO,
            DeviceId(1),
            None,
            &mut iommu,
            &mut dram,
            &mut rng,
            &mut req,
            CorrId::NONE,
            &hub,
        );
        ctx.dma_write(Pasid(1), VirtAddr::new(0x1ff0), b"span across pages!")
            .unwrap();
        let mut back = [0u8; 18];
        ctx.dma_read(Pasid(1), VirtAddr::new(0x1ff0), &mut back)
            .unwrap();
        assert_eq!(&back, b"span across pages!");
        assert!(ctx.elapsed() > SimDuration::ZERO);
        let (actions, cost, faults) = ctx.finish();
        assert!(actions.is_empty());
        assert!(cost > SimDuration::ZERO);
        assert!(faults.is_empty());
    }

    #[test]
    fn dma_fault_is_returned_and_recorded() {
        let (mut iommu, mut dram, mut rng, mut req) = fixture();
        let hub = MetricsHub::new();
        let mut ctx = DeviceCtx::new(
            SimTime::ZERO,
            DeviceId(1),
            None,
            &mut iommu,
            &mut dram,
            &mut rng,
            &mut req,
            CorrId::NONE,
            &hub,
        );
        let mut buf = [0u8; 4];
        let err = ctx
            .dma_read(Pasid(1), VirtAddr::new(0x9000), &mut buf)
            .unwrap_err();
        assert_eq!(err.va, VirtAddr::new(0x9000));
        let (_, _, faults) = ctx.finish();
        assert_eq!(faults.len(), 1);
    }

    #[test]
    fn request_ids_are_unique_and_persistent() {
        let (mut iommu, mut dram, mut rng, mut req) = fixture();
        let hub = MetricsHub::new();
        {
            let mut ctx = DeviceCtx::new(
                SimTime::ZERO,
                DeviceId(1),
                None,
                &mut iommu,
                &mut dram,
                &mut rng,
                &mut req,
                CorrId::NONE,
                &hub,
            );
            assert_eq!(ctx.send_bus(Dst::Bus, Payload::Heartbeat), RequestId(0));
            assert_eq!(ctx.send_bus(Dst::Bus, Payload::Heartbeat), RequestId(1));
        }
        // A later handler continues the sequence.
        let mut ctx = DeviceCtx::new(
            SimTime::ZERO,
            DeviceId(1),
            None,
            &mut iommu,
            &mut dram,
            &mut rng,
            &mut req,
            CorrId::NONE,
            &hub,
        );
        assert_eq!(ctx.next_request_id(), RequestId(2));
    }

    #[test]
    fn actions_queue_in_order() {
        let (mut iommu, mut dram, mut rng, mut req) = fixture();
        let hub = MetricsHub::new();
        let mut ctx = DeviceCtx::new(
            SimTime::ZERO,
            DeviceId(1),
            Some(PortId(4)),
            &mut iommu,
            &mut dram,
            &mut rng,
            &mut req,
            CorrId::NONE,
            &hub,
        );
        ctx.set_timer(SimDuration::from_micros(5), 42);
        ctx.doorbell(DeviceId(2), ConnId(7), 1);
        ctx.trace("hello");
        ctx.halt("test");
        let (actions, _, _) = ctx.finish();
        assert!(matches!(actions[0], Action::SetTimer { token: 42, .. }));
        assert!(matches!(actions[1], Action::Doorbell { value: 1, .. }));
        assert!(matches!(actions[2], Action::Trace(_)));
        assert!(matches!(actions[3], Action::Halt { .. }));
    }

    #[test]
    fn dma_view_implements_queue_memory() {
        let (mut iommu, mut dram, mut rng, mut req) = fixture();
        let hub = MetricsHub::new();
        let mut ctx = DeviceCtx::new(
            SimTime::ZERO,
            DeviceId(1),
            None,
            &mut iommu,
            &mut dram,
            &mut rng,
            &mut req,
            CorrId::NONE,
            &hub,
        );
        let mut view = ctx.dma_view(Pasid(1));
        view.write(0x1000, b"via view").unwrap();
        let mut b = [0u8; 8];
        view.read(0x1000, &mut b).unwrap();
        assert_eq!(&b, b"via view");
        // Faults map to MemFault with the right direction.
        assert_eq!(
            view.write(0x9000, b"x"),
            Err(MemFault {
                va: 0x9000,
                write: true
            })
        );
    }

    #[test]
    fn busy_accumulates() {
        let (mut iommu, mut dram, mut rng, mut req) = fixture();
        let hub = MetricsHub::new();
        let mut ctx = DeviceCtx::new(
            SimTime::ZERO,
            DeviceId(1),
            None,
            &mut iommu,
            &mut dram,
            &mut rng,
            &mut req,
            CorrId::NONE,
            &hub,
        );
        ctx.busy(SimDuration::from_nanos(100));
        ctx.busy(SimDuration::from_nanos(50));
        assert_eq!(ctx.elapsed(), SimDuration::from_nanos(150));
    }
}
