//! An FPGA-style compute accelerator with spatially partitioned regions.
//!
//! §2.1 cites AmorphOS for "dynamic isolation of FPGA resources for
//! multiple applications"; this device models that resource class
//! ([`lastcpu_bus::ResourceKind::Compute`]): a fabric of `R` regions,
//! allocated to connections at open time, each connection's jobs executing
//! on its own regions only — spatial isolation, no interference between
//! tenants by construction.
//!
//! Jobs are submitted by doorbell: the value encodes the work size in
//! abstract *work units*; completion is signalled by a doorbell back. More
//! regions mean proportionally faster completion, which gives experiments a
//! knob connecting resource allocation to performance.
//!
//! Two sharing modes, matching §2.1's two isolation techniques:
//! [`ShareMode::Spatial`] partitions the fabric (an open is denied when no
//! regions remain — hardware partitioning, as in SR-IOV or AmorphOS's fixed
//! zones), while [`ShareMode::TimeShared`] always admits tenants and
//! stretches their job times by the fabric's oversubscription factor (the
//! software technique "if the device contains an embedded CPU").

use std::collections::HashMap;

use lastcpu_bus::wire::{WireReader, WireWriter};
use lastcpu_bus::{ConnId, DeviceId, Envelope, ResourceKind, ServiceDesc, ServiceId, Status};
use lastcpu_sim::SimDuration;

use crate::device::{Device, DeviceCtx};
use crate::monitor::{AuthMode, Monitor, MonitorEvent};

/// Service id of the fabric service.
pub const FABRIC_SERVICE: ServiceId = ServiceId(1);

/// Doorbell value sent back on job completion, OR'd with the job id.
pub const DOORBELL_JOB_DONE: u64 = 1 << 63;

/// How the fabric is shared between tenants (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShareMode {
    /// Hard spatial partitioning: opens beyond capacity are denied.
    Spatial,
    /// Admit everyone; oversubscription stretches every job's time by
    /// `granted_total / total_regions` when that ratio exceeds 1.
    TimeShared,
}

/// Encodes fabric open params: number of regions requested.
pub fn encode_fabric_params(regions: u16) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u16(regions);
    w.finish()
}

fn decode_fabric_params(buf: &[u8]) -> Option<u16> {
    let mut r = WireReader::new(buf);
    let n = r.u16().ok()?;
    r.expect_end().ok()?;
    Some(n)
}

struct FabricConn {
    peer: DeviceId,
    regions: u16,
    jobs_done: u64,
}

/// Accelerator counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct AccelStats {
    /// Jobs completed.
    pub jobs: u64,
    /// Total work units executed.
    pub work_units: u64,
    /// Opens rejected for lack of regions.
    pub rejected: u64,
}

/// The compute accelerator device.
pub struct Accelerator {
    name: String,
    monitor: Monitor,
    total_regions: u16,
    free_regions: u16,
    mode: ShareMode,
    conns: HashMap<ConnId, FabricConn>,
    /// Time to execute one work unit on one region.
    unit_time: SimDuration,
    stats: AccelStats,
    next_job: u64,
}

impl Accelerator {
    /// Creates a spatially partitioned accelerator with `regions` fabric
    /// regions.
    pub fn new(name: &str, regions: u16) -> Self {
        Self::with_mode(name, regions, ShareMode::Spatial)
    }

    /// Creates an accelerator with an explicit sharing mode.
    pub fn with_mode(name: &str, regions: u16, mode: ShareMode) -> Self {
        let mut monitor = Monitor::new();
        monitor.add_service(
            ServiceDesc {
                id: FABRIC_SERVICE,
                name: "fpga".into(),
                resource: ResourceKind::Compute,
            },
            AuthMode::Open,
        );
        Accelerator {
            name: name.to_string(),
            monitor,
            total_regions: regions,
            free_regions: regions,
            mode,
            conns: HashMap::new(),
            unit_time: SimDuration::from_micros(10),
            stats: AccelStats::default(),
            next_job: 1,
        }
    }

    /// Counters.
    pub fn stats(&self) -> AccelStats {
        self.stats
    }

    /// Regions not currently allocated.
    pub fn free_regions(&self) -> u16 {
        self.free_regions
    }

    /// Total fabric regions.
    pub fn total_regions(&self) -> u16 {
        self.total_regions
    }

    /// Regions granted across live tenants (exceeds `total_regions` when
    /// time-shared and oversubscribed).
    pub fn granted_regions(&self) -> u32 {
        self.conns.values().map(|c| c.regions as u32).sum()
    }

    /// Current job-time stretch factor from oversubscription (1.0 when not
    /// oversubscribed or when spatially partitioned).
    pub fn oversubscription(&self) -> f64 {
        match self.mode {
            ShareMode::Spatial => 1.0,
            ShareMode::TimeShared => {
                (self.granted_regions() as f64 / self.total_regions as f64).max(1.0)
            }
        }
    }
}

impl Device for Accelerator {
    fn snapshot_state(&self, w: &mut lastcpu_snap::SnapWriter) -> lastcpu_snap::Result<()> {
        lastcpu_snap::Snapshot::snapshot(self, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        lastcpu_snap::Restore::restore(self, r)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "fpga-accelerator"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.busy(SimDuration::from_millis(5)); // fabric configuration scan
        let name = self.name.clone();
        self.monitor.start(ctx, &name, "fpga-accelerator");
        self.monitor
            .enable_heartbeat(ctx, SimDuration::from_millis(2));
    }

    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        for ev in self.monitor.handle(ctx, &env) {
            match ev {
                MonitorEvent::OpenRequested {
                    req,
                    from,
                    principal,
                    params,
                    ..
                } => {
                    let wanted = decode_fabric_params(&params).unwrap_or(0);
                    let admit = wanted > 0
                        && (self.mode == ShareMode::TimeShared || wanted <= self.free_regions);
                    if wanted == 0 {
                        self.monitor.reject_open(ctx, req, from, Status::BadRequest);
                    } else if !admit {
                        self.stats.rejected += 1;
                        self.monitor
                            .reject_open(ctx, req, from, Status::NoResources);
                    } else {
                        // Partial reconfiguration takes real time.
                        ctx.busy(SimDuration::from_millis(2).saturating_mul(wanted as u64));
                        self.free_regions = self.free_regions.saturating_sub(wanted);
                        let conn = self.monitor.accept_open(
                            ctx,
                            req,
                            from,
                            FABRIC_SERVICE,
                            principal,
                            0,
                            encode_fabric_params(wanted),
                        );
                        self.conns.insert(
                            conn,
                            FabricConn {
                                peer: from,
                                regions: wanted,
                                jobs_done: 0,
                            },
                        );
                    }
                }
                MonitorEvent::Doorbell { conn, value } => {
                    let Some(c) = self.conns.get_mut(&conn) else {
                        continue;
                    };
                    // A job: `value` work units across the conn's regions,
                    // stretched by oversubscription when time-shared.
                    let work = value.max(1);
                    let regions = c.regions;
                    let base = self
                        .unit_time
                        .saturating_mul(work)
                        .as_nanos()
                        .div_ceil(regions as u64);
                    let stretched = (base as f64 * self.oversubscription()) as u64;
                    let c = self.conns.get_mut(&conn).expect("checked above");
                    ctx.busy(SimDuration::from_nanos(stretched));
                    c.jobs_done += 1;
                    self.stats.jobs += 1;
                    self.stats.work_units += work;
                    let job = self.next_job;
                    self.next_job += 1;
                    ctx.doorbell(c.peer, conn, DOORBELL_JOB_DONE | job);
                }
                MonitorEvent::PeerClosed { conn } => {
                    if let Some(c) = self.conns.remove(&conn) {
                        self.free_regions = (self.free_regions + c.regions).min(self.total_regions);
                    }
                }
                MonitorEvent::PeerFailed {
                    dropped_server_conns,
                    ..
                } => {
                    for conn in dropped_server_conns {
                        if let Some(c) = self.conns.remove(&conn) {
                            self.free_regions =
                                (self.free_regions + c.regions).min(self.total_regions);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        let _ = self.monitor.on_timer(ctx, token);
    }

    fn on_reset(&mut self, ctx: &mut DeviceCtx<'_>) {
        self.conns.clear();
        self.free_regions = self.total_regions;
        self.monitor.reset();
        ctx.busy(SimDuration::from_millis(5));
        let name = self.name.clone();
        self.monitor.start(ctx, &name, "fpga-accelerator");
        self.monitor
            .enable_heartbeat(ctx, SimDuration::from_millis(2));
    }
}

impl lastcpu_snap::Snapshot for Accelerator {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_str(&self.name);
        self.monitor.snapshot(w);
        w.put_u16(self.total_regions);
        w.put_u16(self.free_regions);
        w.put_u8(match self.mode {
            ShareMode::Spatial => 0,
            ShareMode::TimeShared => 1,
        });
        w.put_u64(self.unit_time.as_nanos());
        w.put_u64(self.stats.jobs);
        w.put_u64(self.stats.work_units);
        w.put_u64(self.stats.rejected);
        w.put_u64(self.next_job);
        let mut conns: Vec<_> = self.conns.keys().copied().collect();
        conns.sort_by_key(|c| c.0);
        w.put_len(conns.len());
        for c in conns {
            let fc = &self.conns[&c];
            w.put_u64(c.0);
            w.put_u32(fc.peer.0);
            w.put_u16(fc.regions);
            w.put_u64(fc.jobs_done);
        }
    }
}

impl lastcpu_snap::Restore for Accelerator {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.name = r.str()?;
        self.monitor.restore(r)?;
        self.total_regions = r.u16()?;
        self.free_regions = r.u16()?;
        self.mode = match r.u8()? {
            0 => ShareMode::Spatial,
            1 => ShareMode::TimeShared,
            t => return Err(r.corrupt(format!("bad ShareMode tag {t}"))),
        };
        self.unit_time = SimDuration::from_nanos(r.u64()?);
        self.stats.jobs = r.u64()?;
        self.stats.work_units = r.u64()?;
        self.stats.rejected = r.u64()?;
        self.next_job = r.u64()?;
        let n = r.len()?;
        self.conns = HashMap::with_capacity(n);
        for _ in 0..n {
            let c = ConnId(r.u64()?);
            let fc = FabricConn {
                peer: DeviceId(r.u32()?),
                regions: r.u16()?,
                jobs_done: r.u64()?,
            };
            self.conns.insert(c, fc);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastcpu_bus::CorrId;
    use lastcpu_bus::{Dst, Payload, RequestId, Token};
    use lastcpu_iommu::Iommu;
    use lastcpu_mem::Dram;
    use lastcpu_sim::MetricsHub;
    use lastcpu_sim::{DetRng, SimTime};

    struct Fix {
        iommu: Iommu,
        dram: Dram,
        rng: DetRng,
        req: u64,
        stats: MetricsHub,
    }

    impl Fix {
        fn new() -> Self {
            Fix {
                iommu: Iommu::new(16),
                dram: Dram::new(1 << 20),
                rng: DetRng::new(7),
                req: 0,
                stats: MetricsHub::new(),
            }
        }

        fn ctx(&mut self) -> DeviceCtx<'_> {
            DeviceCtx::new(
                SimTime::ZERO,
                DeviceId(1),
                None,
                &mut self.iommu,
                &mut self.dram,
                &mut self.rng,
                &mut self.req,
                CorrId::NONE,
                &self.stats,
            )
        }
    }

    fn open_env(regions: u16) -> Envelope {
        Envelope {
            src: DeviceId(9),
            dst: Dst::Device(DeviceId(1)),
            req: RequestId(1),
            corr: CorrId::NONE,
            payload: Payload::OpenRequest {
                service: FABRIC_SERVICE,
                token: Token::NONE,
                params: encode_fabric_params(regions),
            },
        }
    }

    fn open_conn(fix: &mut Fix, acc: &mut Accelerator, regions: u16) -> Option<ConnId> {
        let mut ctx = fix.ctx();
        acc.on_message(&mut ctx, open_env(regions));
        let (actions, _, _) = ctx.finish();
        actions.iter().find_map(|a| match a {
            crate::device::Action::SendBus(Envelope {
                payload:
                    Payload::OpenResponse {
                        status: Status::Ok,
                        conn,
                        ..
                    },
                ..
            }) => Some(*conn),
            _ => None,
        })
    }

    #[test]
    fn regions_allocated_and_exhausted() {
        let mut fix = Fix::new();
        let mut acc = Accelerator::new("fpga0", 4);
        assert!(open_conn(&mut fix, &mut acc, 3).is_some());
        assert_eq!(acc.free_regions(), 1);
        assert!(open_conn(&mut fix, &mut acc, 2).is_none());
        assert_eq!(acc.stats().rejected, 1);
        assert!(open_conn(&mut fix, &mut acc, 1).is_some());
        assert_eq!(acc.free_regions(), 0);
    }

    #[test]
    fn zero_region_request_rejected() {
        let mut fix = Fix::new();
        let mut acc = Accelerator::new("fpga0", 4);
        assert!(open_conn(&mut fix, &mut acc, 0).is_none());
        assert_eq!(acc.free_regions(), 4);
    }

    #[test]
    fn jobs_complete_faster_with_more_regions() {
        let mut fix = Fix::new();
        let mut acc = Accelerator::new("fpga0", 8);
        let wide = open_conn(&mut fix, &mut acc, 8).unwrap();
        let mut ctx = fix.ctx();
        acc.on_message(
            &mut ctx,
            Envelope {
                src: DeviceId(9),
                dst: Dst::Device(DeviceId(1)),
                req: RequestId(2),
                corr: CorrId::NONE,
                payload: Payload::Doorbell {
                    conn: wide,
                    value: 800,
                },
            },
        );
        let wide_time = ctx.elapsed();
        let (actions, _, _) = ctx.finish();
        assert!(actions.iter().any(|a| matches!(
            a,
            crate::device::Action::Doorbell { value, .. } if value & DOORBELL_JOB_DONE != 0
        )));

        let mut fix2 = Fix::new();
        let mut acc2 = Accelerator::new("fpga1", 8);
        let narrow = open_conn(&mut fix2, &mut acc2, 1).unwrap();
        let mut ctx = fix2.ctx();
        acc2.on_message(
            &mut ctx,
            Envelope {
                src: DeviceId(9),
                dst: Dst::Device(DeviceId(1)),
                req: RequestId(2),
                corr: CorrId::NONE,
                payload: Payload::Doorbell {
                    conn: narrow,
                    value: 800,
                },
            },
        );
        let narrow_time = ctx.elapsed();
        assert!(
            narrow_time.as_nanos() >= wide_time.as_nanos() * 7,
            "1 region ({narrow_time}) should be ~8x slower than 8 ({wide_time})"
        );
        assert_eq!(acc2.stats().jobs, 1);
        assert_eq!(acc2.stats().work_units, 800);
    }

    #[test]
    fn close_returns_regions() {
        let mut fix = Fix::new();
        let mut acc = Accelerator::new("fpga0", 4);
        let conn = open_conn(&mut fix, &mut acc, 4).unwrap();
        assert_eq!(acc.free_regions(), 0);
        let mut ctx = fix.ctx();
        acc.on_message(
            &mut ctx,
            Envelope {
                src: DeviceId(9),
                dst: Dst::Device(DeviceId(1)),
                req: RequestId(3),
                corr: CorrId::NONE,
                payload: Payload::CloseRequest { conn },
            },
        );
        assert_eq!(acc.free_regions(), 4);
    }

    #[test]
    fn peer_failure_returns_regions() {
        let mut fix = Fix::new();
        let mut acc = Accelerator::new("fpga0", 4);
        open_conn(&mut fix, &mut acc, 4).unwrap();
        let mut ctx = fix.ctx();
        acc.on_message(
            &mut ctx,
            Envelope {
                src: DeviceId::BUS,
                dst: Dst::Broadcast,
                req: RequestId(0),
                corr: CorrId::NONE,
                payload: Payload::DeviceFailed {
                    device: DeviceId(9),
                },
            },
        );
        assert_eq!(acc.free_regions(), 4);
    }
}
