//! Page-mapping flash translation layer.
//!
//! Presents a linear logical-page address space over the NAND chip:
//! out-of-place writes, a logical→physical page map, and greedy garbage
//! collection. One block is permanently reserved as the *GC spare* — the
//! relocation destination — which is the classic way to guarantee GC can
//! always make progress; additionally two blocks' worth of pages are held
//! back as over-provisioning so a logically full device still has garbage
//! to collect. Write amplification and GC stalls are real here — they are
//! part of the SSD service-time distribution the isolation experiment
//! observes.

use std::collections::HashMap;
use std::fmt;

use lastcpu_sim::{BackoffPolicy, SimDuration};

use crate::flash::{FlashError, NandChip};

/// Over-provisioning divisor: at least `total/16` pages are reserved.
const OP_DIVISOR: u64 = 16;

/// Errors from FTL operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtlError {
    /// Logical page number beyond the exported capacity.
    OutOfRange,
    /// No space left (no free blocks and no garbage to collect).
    NoSpace,
    /// The underlying flash failed.
    Flash(FlashError),
}

impl From<FlashError> for FtlError {
    fn from(e: FlashError) -> Self {
        FtlError::Flash(e)
    }
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::OutOfRange => write!(f, "logical page out of range"),
            FtlError::NoSpace => write!(f, "flash out of space"),
            FtlError::Flash(e) => write!(f, "flash error: {e}"),
        }
    }
}

impl std::error::Error for FtlError {}

/// FTL statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct FtlStats {
    /// Host-issued page writes.
    pub host_writes: u64,
    /// NAND page programs (host + GC movement).
    pub nand_writes: u64,
    /// GC passes run.
    pub gc_runs: u64,
    /// Valid pages relocated by GC.
    pub gc_moved_pages: u64,
    /// Blocks retired after program failures.
    pub retired_blocks: u64,
    /// Writes abandoned after the bounded-backoff retry budget ran out.
    pub retry_exhausted: u64,
}

impl FtlStats {
    /// Write amplification factor (NAND writes per host write).
    pub fn waf(&self) -> f64 {
        if self.host_writes == 0 {
            1.0
        } else {
            self.nand_writes as f64 / self.host_writes as f64
        }
    }
}

/// The page-mapping FTL.
pub struct Ftl {
    nand: NandChip,
    /// Logical page → physical (block, page).
    map: Vec<Option<(u32, u32)>>,
    /// Physical (block, page) → logical page, for GC.
    rmap: HashMap<(u32, u32), u32>,
    /// Valid-page count per block.
    valid: Vec<u32>,
    /// Fully erased blocks ready for allocation.
    free_blocks: Vec<u32>,
    /// Block currently absorbing writes and its next page index.
    active: Option<(u32, u32)>,
    /// Erased block reserved as the GC relocation destination.
    spare: Option<u32>,
    logical_pages: u32,
    stats: FtlStats,
    /// Bounded retry policy for program failures; the backoff delay is
    /// charged to the triggering operation's cost.
    retry: BackoffPolicy,
}

impl Ftl {
    /// Builds an FTL over `nand`.
    ///
    /// Exported capacity is the physical capacity minus over-provisioning
    /// (`max(total/16, 2 blocks)`) minus the GC spare block.
    ///
    /// # Panics
    ///
    /// Panics if the chip has fewer than 4 blocks — too small to host the
    /// spare plus over-provisioning.
    pub fn new(nand: NandChip) -> Self {
        let blocks = nand.config().blocks;
        assert!(blocks >= 4, "FTL needs at least 4 blocks");
        let ppb = nand.config().pages_per_block as u64;
        let total = nand.total_pages();
        let reserved = (total / OP_DIVISOR).max(2 * ppb) + ppb; // OP + spare
        let logical = (total - reserved) as u32;
        let mut free_blocks: Vec<u32> = (0..blocks).rev().collect();
        let spare = free_blocks.pop();
        Ftl {
            map: vec![None; logical as usize],
            rmap: HashMap::new(),
            valid: vec![0; blocks as usize],
            free_blocks,
            active: None,
            spare,
            logical_pages: logical,
            nand,
            stats: FtlStats::default(),
            // Media retries back off in units comparable to NAND program
            // time; jitter is pointless against deterministic media, so the
            // policy is used jitter-free here.
            retry: BackoffPolicy {
                base: SimDuration::from_micros(50),
                cap: SimDuration::from_millis(2),
                max_retries: 6,
                jitter_pct: 0,
            },
        }
    }

    /// Overrides the bounded retry policy for program failures.
    pub fn set_retry_policy(&mut self, policy: BackoffPolicy) {
        self.retry = policy;
    }

    /// The bounded retry policy in effect.
    pub fn retry_policy(&self) -> BackoffPolicy {
        self.retry
    }

    /// Exported capacity in logical pages.
    pub fn logical_pages(&self) -> u32 {
        self.logical_pages
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u32 {
        self.nand.config().page_size
    }

    /// Counters.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// The underlying chip (wear inspection, fault injection).
    pub fn nand_mut(&mut self) -> &mut NandChip {
        &mut self.nand
    }

    /// Reads logical page `lpn` into `buf` (one full page).
    ///
    /// Never-written pages read as zeroes (the FTL presents a zeroed disk,
    /// unlike raw NAND's 0xFF).
    pub fn read(&mut self, lpn: u32, buf: &mut [u8]) -> Result<SimDuration, FtlError> {
        if lpn >= self.logical_pages {
            return Err(FtlError::OutOfRange);
        }
        match self.map[lpn as usize] {
            Some((b, p)) => Ok(self.nand.read_page(b, p, buf)?),
            None => {
                buf.fill(0);
                Ok(SimDuration::ZERO) // satisfied from the mapping table
            }
        }
    }

    /// Writes one full page to logical page `lpn` (out-of-place).
    ///
    /// A program failure (the block went bad under us) retires the block:
    /// its live pages are relocated — reads still work on bad blocks — and
    /// the write retries on fresh media under the bounded
    /// [`BackoffPolicy`]; each retry's backoff delay is charged to the
    /// write's cost. When the budget runs out the write surfaces
    /// [`FtlError::NoSpace`] and bumps `retry_exhausted`.
    pub fn write(&mut self, lpn: u32, data: &[u8]) -> Result<SimDuration, FtlError> {
        if lpn >= self.logical_pages {
            return Err(FtlError::OutOfRange);
        }
        let mut cost = SimDuration::ZERO;
        let mut retry = 0u32;
        loop {
            let (b, p, gc_stall) = self.alloc_page()?;
            cost += gc_stall;
            match self.nand.program_page(b, p, data) {
                Ok(t) => {
                    cost += t;
                    self.stats.host_writes += 1;
                    self.stats.nand_writes += 1;
                    self.invalidate(lpn);
                    self.map[lpn as usize] = Some((b, p));
                    self.rmap.insert((b, p), lpn);
                    self.valid[b as usize] += 1;
                    return Ok(cost);
                }
                Err(FlashError::BadBlock) => {
                    cost += self.retire_block(b)?;
                    retry += 1;
                    match self.retry.delay(retry) {
                        Some(d) => cost += d,
                        None => {
                            self.stats.retry_exhausted += 1;
                            return Err(FtlError::NoSpace);
                        }
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Evacuates a block that failed a program: relocates its valid pages
    /// (reads still work) and drops it from circulation. Returns the time
    /// the evacuation took.
    fn retire_block(&mut self, block: u32) -> Result<SimDuration, FtlError> {
        self.stats.retired_blocks += 1;
        if self.active.map(|(b, _)| b) == Some(block) {
            self.active = None;
        }
        self.free_blocks.retain(|&b| b != block);
        if self.spare == Some(block) {
            self.spare = self.pop_free();
        }
        let page_size = self.nand.config().page_size as usize;
        let live: Vec<(u32, u32)> = (0..self.nand.config().pages_per_block)
            .filter_map(|p| self.rmap.get(&(block, p)).map(|&lpn| (p, lpn)))
            .collect();
        let mut cost = SimDuration::ZERO;
        let mut buf = vec![0u8; page_size];
        for (p, lpn) in live {
            cost += self.nand.read_page(block, p, &mut buf)?;
            // Relocate through the normal allocation path; a second bad
            // block during relocation recurses with the same discipline.
            let (nb, np, stall) = self.alloc_page()?;
            cost += stall;
            match self.nand.program_page(nb, np, &buf) {
                Ok(t) => {
                    cost += t;
                    self.stats.nand_writes += 1;
                    self.rmap.remove(&(block, p));
                    self.valid[block as usize] -= 1;
                    self.map[lpn as usize] = Some((nb, np));
                    self.rmap.insert((nb, np), lpn);
                    self.valid[nb as usize] += 1;
                }
                Err(FlashError::BadBlock) => {
                    cost += self.retire_block(nb)?;
                    // Redo this page under the bounded backoff policy. The
                    // old code made a single unguarded direct retry whose
                    // raw `BadBlock` propagated as a hard error if *that*
                    // block failed too; now each retry retires the failed
                    // block, pays the backoff delay, and the relocation
                    // only gives up (with `retry_exhausted` accounted) once
                    // the policy's budget is spent.
                    let mut retry = 1u32;
                    loop {
                        match self.retry.delay(retry) {
                            Some(d) => cost += d,
                            None => {
                                self.stats.retry_exhausted += 1;
                                return Err(FtlError::NoSpace);
                            }
                        }
                        let (rb, rp, rstall) = self.alloc_page()?;
                        cost += rstall;
                        match self.nand.program_page(rb, rp, &buf) {
                            Ok(t) => {
                                cost += t;
                                self.stats.nand_writes += 1;
                                self.rmap.remove(&(block, p));
                                self.valid[block as usize] -= 1;
                                self.map[lpn as usize] = Some((rb, rp));
                                self.rmap.insert((rb, rp), lpn);
                                self.valid[rb as usize] += 1;
                                break;
                            }
                            Err(FlashError::BadBlock) => {
                                cost += self.retire_block(rb)?;
                                retry += 1;
                            }
                            Err(e) => return Err(e.into()),
                        }
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(cost)
    }

    /// Discards logical page `lpn` (TRIM).
    pub fn trim(&mut self, lpn: u32) -> Result<(), FtlError> {
        if lpn >= self.logical_pages {
            return Err(FtlError::OutOfRange);
        }
        self.invalidate(lpn);
        self.map[lpn as usize] = None;
        Ok(())
    }

    fn invalidate(&mut self, lpn: u32) {
        if let Some((b, p)) = self.map[lpn as usize] {
            self.rmap.remove(&(b, p));
            self.valid[b as usize] -= 1;
        }
    }

    /// Allocates the next physical page. The returned duration is the GC
    /// stall absorbed by this allocation.
    fn alloc_page(&mut self) -> Result<(u32, u32, SimDuration), FtlError> {
        let ppb = self.nand.config().pages_per_block;
        let mut stall = SimDuration::ZERO;
        loop {
            if let Some((b, p)) = self.active {
                if p < ppb {
                    self.active = Some((b, p + 1));
                    return Ok((b, p, stall));
                }
                self.active = None;
            }
            // Prefer an erased block from the pool.
            if let Some(b) = self.pop_free() {
                self.active = Some((b, 0));
                continue;
            }
            // Pool dry: collect garbage into the spare block.
            match self.gc()? {
                Some(t) => stall += t,
                None => return Err(FtlError::NoSpace),
            }
        }
    }

    fn pop_free(&mut self) -> Option<u32> {
        while let Some(b) = self.free_blocks.pop() {
            if !self.nand.is_bad(b) {
                return Some(b);
            }
        }
        None
    }

    /// One greedy GC pass: relocates the block with the fewest valid pages
    /// into the spare; the erased victim becomes the new spare; the (now
    /// partially filled) old spare becomes the active block.
    ///
    /// Returns `None` when no progress is possible: no spare, or the best
    /// victim has no garbage.
    fn gc(&mut self) -> Result<Option<SimDuration>, FtlError> {
        debug_assert!(self.active.is_none(), "gc only runs with no active block");
        let Some(spare) = self.spare else {
            return Ok(None);
        };
        let ppb = self.nand.config().pages_per_block;
        // Greedy victim: fewest valid pages among full, non-spare blocks.
        let victim = (0..self.nand.config().blocks)
            .filter(|&b| b != spare && !self.free_blocks.contains(&b) && !self.nand.is_bad(b))
            .min_by_key(|&b| self.valid[b as usize]);
        let Some(victim) = victim else {
            return Ok(None);
        };
        if self.valid[victim as usize] >= ppb {
            // The emptiest block is fully valid: there is no garbage
            // anywhere; relocating would burn an erase cycle for nothing.
            return Ok(None);
        }
        self.stats.gc_runs += 1;
        let mut moved = SimDuration::ZERO;
        let page_size = self.nand.config().page_size as usize;
        let live: Vec<(u32, u32)> = (0..ppb)
            .filter_map(|p| self.rmap.get(&(victim, p)).map(|&lpn| (p, lpn)))
            .collect();
        let mut dst_page = 0u32;
        let mut buf = vec![0u8; page_size];
        for (p, lpn) in live {
            moved += self.nand.read_page(victim, p, &mut buf)?;
            moved += self.nand.program_page(spare, dst_page, &buf)?;
            self.stats.nand_writes += 1;
            self.stats.gc_moved_pages += 1;
            self.rmap.remove(&(victim, p));
            self.valid[victim as usize] -= 1;
            self.map[lpn as usize] = Some((spare, dst_page));
            self.rmap.insert((spare, dst_page), lpn);
            self.valid[spare as usize] += 1;
            dst_page += 1;
        }
        moved += self.nand.erase_block(victim)?;
        // The old spare (partially filled) absorbs subsequent writes; the
        // erased victim is the new spare. A worn-out victim is retired and
        // a pool block is promoted to spare instead.
        self.active = if dst_page < ppb {
            Some((spare, dst_page))
        } else {
            None
        };
        if dst_page == ppb {
            // Spare came out full; it is just a regular full block now.
        }
        self.spare = if self.nand.is_bad(victim) {
            self.pop_free()
        } else {
            Some(victim)
        };
        Ok(Some(moved))
    }
}

impl fmt::Debug for Ftl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Ftl(logical_pages={}, free_blocks={}, waf={:.2})",
            self.logical_pages,
            self.free_blocks.len(),
            self.stats.waf()
        )
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::flash::{NandChip, NandConfig};
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Random write/trim/read sequences against a model map: contents
        /// always match, across arbitrary amounts of GC.
        #[test]
        fn prop_ftl_matches_model(ops in proptest::collection::vec((0u8..3, 0u32..40, any::<u8>()), 1..400)) {
            let mut ftl = Ftl::new(NandChip::new(NandConfig {
                blocks: 16,
                pages_per_block: 8,
                page_size: 16,
                max_erase_cycles: u32::MAX,
                ..NandConfig::default()
            }));
            let lp = ftl.logical_pages();
            let mut model: HashMap<u32, u8> = HashMap::new();
            for (kind, lpn_raw, fill) in ops {
                let lpn = lpn_raw % lp;
                match kind {
                    0 | 1 => {
                        ftl.write(lpn, &[fill; 16]).unwrap();
                        model.insert(lpn, fill);
                    }
                    _ => {
                        ftl.trim(lpn).unwrap();
                        model.remove(&lpn);
                    }
                }
            }
            let mut buf = [0u8; 16];
            for lpn in 0..lp {
                ftl.read(lpn, &mut buf).unwrap();
                let expect = model.get(&lpn).copied().unwrap_or(0);
                prop_assert!(buf.iter().all(|&b| b == expect), "lpn {lpn}: got {} want {expect}", buf[0]);
            }
            prop_assert!(ftl.stats().waf() >= 1.0 || ftl.stats().host_writes == 0);
        }
    }
}

#[cfg(test)]
mod retirement_tests {
    use super::*;
    use crate::flash::{NandChip, NandConfig};

    fn ftl() -> Ftl {
        Ftl::new(NandChip::new(NandConfig {
            blocks: 16,
            pages_per_block: 8,
            page_size: 32,
            max_erase_cycles: u32::MAX,
            ..NandConfig::default()
        }))
    }

    #[test]
    fn program_failure_retires_block_and_preserves_data() {
        let mut f = ftl();
        // Write some data; find the active block and kill it mid-use.
        for lpn in 0..4 {
            f.write(lpn, &[lpn as u8 + 1; 32]).unwrap();
        }
        let active_block = f.active.expect("active block in use").0;
        f.nand_mut().force_bad_block(active_block);
        // The next write hits the bad block, retires it, relocates, and
        // succeeds transparently.
        f.write(10, &[99; 32]).unwrap();
        assert!(f.stats().retired_blocks >= 1);
        // All earlier data survived the evacuation.
        let mut buf = [0u8; 32];
        for lpn in 0..4 {
            f.read(lpn, &mut buf).unwrap();
            assert_eq!(buf[0], lpn as u8 + 1, "lpn {lpn} lost in retirement");
        }
        f.read(10, &mut buf).unwrap();
        assert_eq!(buf[0], 99);
    }

    #[test]
    fn repeated_failures_eventually_surface_as_no_space() {
        let mut f = ftl();
        f.write(0, &[1; 32]).unwrap();
        // Kill every block.
        for b in 0..16 {
            f.nand_mut().force_bad_block(b);
        }
        assert!(f.write(1, &[2; 32]).is_err());
    }

    #[test]
    fn exhausted_retry_budget_surfaces_error_and_counts() {
        let mut f = ftl();
        // A zero-retry policy turns the first program failure into an
        // immediate, accounted give-up instead of a retry loop.
        f.set_retry_policy(lastcpu_sim::BackoffPolicy {
            base: lastcpu_sim::SimDuration::from_micros(1),
            cap: lastcpu_sim::SimDuration::from_micros(1),
            max_retries: 0,
            jitter_pct: 0,
        });
        f.write(0, &[7; 32]).unwrap();
        let active_block = f.active.expect("active block in use").0;
        f.nand_mut().force_bad_block(active_block);
        assert_eq!(f.write(1, &[8; 32]), Err(FtlError::NoSpace));
        assert_eq!(f.stats().retry_exhausted, 1);
        // Earlier data still readable after the failed attempt.
        let mut buf = [0u8; 32];
        f.read(0, &mut buf).unwrap();
        assert_eq!(buf[0], 7);
    }

    #[test]
    fn backoff_delay_is_charged_to_the_write_cost() {
        let mut f = ftl();
        f.write(0, &[1; 32]).unwrap();
        let clean_cost = f.write(1, &[1; 32]).unwrap();
        let active_block = f.active.expect("active block in use").0;
        f.nand_mut().force_bad_block(active_block);
        let retried_cost = f.write(2, &[2; 32]).unwrap();
        let base = f.retry_policy().base;
        assert!(
            retried_cost >= clean_cost + base,
            "retried write ({retried_cost}) must absorb at least one backoff delay over a clean write ({clean_cost})"
        );
    }

    #[test]
    fn wear_driven_retirement_during_sustained_writes() {
        // Low endurance: blocks wear out during the run; the FTL keeps
        // going until the media is really exhausted.
        let mut f = Ftl::new(NandChip::new(NandConfig {
            blocks: 16,
            pages_per_block: 8,
            page_size: 32,
            max_erase_cycles: 20,
            ..NandConfig::default()
        }));
        let lp = f.logical_pages();
        let mut writes = 0u64;
        'outer: for round in 0..2000u32 {
            for lpn in 0..lp.min(8) {
                match f.write(lpn, &[round as u8; 32]) {
                    Ok(_) => writes += 1,
                    Err(FtlError::NoSpace) => break 'outer,
                    Err(e) => panic!("unexpected {e}"),
                }
            }
        }
        // The device survived far more writes than one block's endurance
        // and died with NoSpace, not corruption.
        assert!(writes > 500, "only {writes} writes before exhaustion");
    }
}

impl lastcpu_snap::Snapshot for Ftl {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        self.nand.snapshot(w);
        w.put_u32(self.logical_pages);
        w.put_u64(self.stats.host_writes);
        w.put_u64(self.stats.nand_writes);
        w.put_u64(self.stats.gc_runs);
        w.put_u64(self.stats.gc_moved_pages);
        w.put_u64(self.stats.retired_blocks);
        w.put_u64(self.stats.retry_exhausted);
        w.put_u64(self.retry.base.as_nanos());
        w.put_u64(self.retry.cap.as_nanos());
        w.put_u32(self.retry.max_retries);
        w.put_u32(self.retry.jitter_pct);
        w.put_len(self.map.len());
        for m in &self.map {
            w.put_opt(m.as_ref(), |w, (b, p)| {
                w.put_u32(*b);
                w.put_u32(*p);
            });
        }
        w.put_len(self.valid.len());
        for &v in &self.valid {
            w.put_u32(v);
        }
        w.put_len(self.free_blocks.len());
        for &b in &self.free_blocks {
            w.put_u32(b);
        }
        w.put_opt(self.active.as_ref(), |w, (b, p)| {
            w.put_u32(*b);
            w.put_u32(*p);
        });
        w.put_opt(self.spare.as_ref(), |w, b| w.put_u32(*b));
        // rmap is derivable from map, but is serialized so restore needs no
        // recomputation pass and verify covers it directly.
        let mut rmap: Vec<_> = self.rmap.iter().map(|(&(b, p), &l)| (b, p, l)).collect();
        rmap.sort_unstable();
        w.put_len(rmap.len());
        for (b, p, l) in rmap {
            w.put_u32(b);
            w.put_u32(p);
            w.put_u32(l);
        }
    }
}

impl lastcpu_snap::Restore for Ftl {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.nand.restore(r)?;
        self.logical_pages = r.u32()?;
        self.stats.host_writes = r.u64()?;
        self.stats.nand_writes = r.u64()?;
        self.stats.gc_runs = r.u64()?;
        self.stats.gc_moved_pages = r.u64()?;
        self.stats.retired_blocks = r.u64()?;
        self.stats.retry_exhausted = r.u64()?;
        self.retry.base = SimDuration::from_nanos(r.u64()?);
        self.retry.cap = SimDuration::from_nanos(r.u64()?);
        self.retry.max_retries = r.u32()?;
        self.retry.jitter_pct = r.u32()?;
        let n = r.len()?;
        self.map = Vec::with_capacity(n);
        for _ in 0..n {
            self.map.push(r.opt(|r| Ok((r.u32()?, r.u32()?)))?);
        }
        let n = r.len()?;
        self.valid = Vec::with_capacity(n);
        for _ in 0..n {
            self.valid.push(r.u32()?);
        }
        let n = r.len()?;
        self.free_blocks = Vec::with_capacity(n);
        for _ in 0..n {
            self.free_blocks.push(r.u32()?);
        }
        self.active = r.opt(|r| Ok((r.u32()?, r.u32()?)))?;
        self.spare = r.opt(|r| r.u32())?;
        let n = r.len()?;
        self.rmap = HashMap::with_capacity(n);
        for _ in 0..n {
            let b = r.u32()?;
            let p = r.u32()?;
            let l = r.u32()?;
            self.rmap.insert((b, p), l);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flash::NandConfig;

    fn small_ftl() -> Ftl {
        Ftl::new(NandChip::new(NandConfig {
            blocks: 16,
            pages_per_block: 8,
            page_size: 32,
            max_erase_cycles: u32::MAX,
            ..NandConfig::default()
        }))
    }

    fn page(b: u8) -> Vec<u8> {
        vec![b; 32]
    }

    #[test]
    fn capacity_reserves_op_and_spare() {
        let f = small_ftl();
        // 128 total - max(128/16, 16) OP - 8 spare = 104.
        assert_eq!(f.logical_pages(), 104);
    }

    #[test]
    fn unwritten_pages_read_zero() {
        let mut f = small_ftl();
        let mut buf = [0xAAu8; 32];
        f.read(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_read_round_trip() {
        let mut f = small_ftl();
        f.write(5, &page(0x42)).unwrap();
        let mut buf = [0u8; 32];
        f.read(5, &mut buf).unwrap();
        assert_eq!(buf, [0x42u8; 32]);
    }

    #[test]
    fn overwrite_is_out_of_place_but_visible() {
        let mut f = small_ftl();
        f.write(5, &page(1)).unwrap();
        f.write(5, &page(2)).unwrap();
        let mut buf = [0u8; 32];
        f.read(5, &mut buf).unwrap();
        assert_eq!(buf, [2u8; 32]);
        // Two NAND programs for one logical page.
        assert_eq!(f.stats().nand_writes, 2);
        assert_eq!(f.stats().host_writes, 2);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut f = small_ftl();
        let lp = f.logical_pages();
        let mut buf = [0u8; 32];
        assert_eq!(f.read(lp, &mut buf), Err(FtlError::OutOfRange));
        assert_eq!(f.write(lp, &page(0)), Err(FtlError::OutOfRange));
        assert_eq!(f.trim(lp), Err(FtlError::OutOfRange));
    }

    #[test]
    fn trim_reads_back_zero() {
        let mut f = small_ftl();
        f.write(3, &page(9)).unwrap();
        f.trim(3).unwrap();
        let mut buf = [0xAAu8; 32];
        f.read(3, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn sustained_overwrites_trigger_gc_and_preserve_data() {
        let mut f = small_ftl();
        let lp = f.logical_pages();
        let hot = lp / 2;
        for lpn in 0..hot {
            f.write(lpn, &page((lpn % 251) as u8)).unwrap();
        }
        // Hammer a hot subset to force GC many times.
        for round in 0..80u32 {
            for lpn in 0..8 {
                f.write(lpn, &page((round % 250) as u8 + 1)).unwrap();
            }
        }
        assert!(f.stats().gc_runs > 0, "GC should have run");
        assert!(f.stats().waf() >= 1.0);
        // Cold data survived all the relocation.
        let mut buf = [0u8; 32];
        for lpn in 8..hot {
            f.read(lpn, &mut buf).unwrap();
            assert_eq!(buf[0], (lpn % 251) as u8, "lpn {lpn} corrupted by GC");
        }
        // Hot data has the last round's value.
        for lpn in 0..8 {
            f.read(lpn, &mut buf).unwrap();
            assert_eq!(buf[0], 79 + 1);
        }
    }

    #[test]
    fn filling_entire_logical_space_succeeds() {
        let mut f = small_ftl();
        for lpn in 0..f.logical_pages() {
            f.write(lpn, &page((lpn % 255) as u8)).unwrap();
        }
        let mut buf = [0u8; 32];
        f.read(f.logical_pages() - 1, &mut buf).unwrap();
    }

    #[test]
    fn full_device_sustains_random_overwrites() {
        // The hardest case: logical space 100% allocated, then random
        // overwrites forever. The spare + OP must keep GC progressing.
        let mut f = small_ftl();
        let lp = f.logical_pages();
        for lpn in 0..lp {
            f.write(lpn, &page(0)).unwrap();
        }
        for i in 0..2000u32 {
            let lpn = (i * 37) % lp;
            f.write(lpn, &page((i % 255) as u8)).unwrap();
        }
        assert!(f.stats().gc_runs > 10);
        assert!(
            f.stats().waf() > 1.05,
            "random overwrites must amplify, waf={}",
            f.stats().waf()
        );
    }

    #[test]
    fn gc_cost_is_charged_to_the_triggering_write() {
        let mut f = small_ftl();
        for lpn in 0..f.logical_pages() {
            f.write(lpn, &page(1)).unwrap();
        }
        let erase = f.nand_mut().config().erase_latency;
        let mut saw_gc_cost = false;
        for round in 0..40 {
            for lpn in 0..4 {
                let cost = f.write(lpn, &page(round as u8)).unwrap();
                if cost >= erase {
                    saw_gc_cost = true;
                }
            }
        }
        assert!(saw_gc_cost, "some write should absorb a GC stall");
    }

    #[test]
    fn trim_everything_then_refill() {
        let mut f = small_ftl();
        for lpn in 0..f.logical_pages() {
            f.write(lpn, &page(1)).unwrap();
        }
        for lpn in 0..f.logical_pages() {
            f.trim(lpn).unwrap();
        }
        for lpn in 0..f.logical_pages() {
            f.write(lpn, &page(2)).unwrap();
        }
        let mut buf = [0u8; 32];
        f.read(0, &mut buf).unwrap();
        assert_eq!(buf[0], 2);
    }
}
