//! The paper's §3 application: a key-value store with **no CPU involved**.
//!
//! "The data (keys and values) are stored in a file hosted by a smart SSD,
//! while the operations (get, insert, update, etc.) are processed in a
//! smart-NIC. The NIC exposes a KVS interface to other machines over the
//! network."
//!
//! - [`engine`]: the log-structured store: an in-(NIC-)memory index over an
//!   append-only record log kept in the SSD file, with an incremental
//!   scanner for index rebuild at startup.
//! - [`proto`]: the client↔KVS network protocol (GET/PUT/DELETE frames).
//! - [`app`]: [`app::KvsNicApp`] — the store offloaded onto the smart NIC,
//!   using the Figure 2 session to reach its data file. This is the
//!   CPU-less deployment.
//! - [`cpu_app`]: [`cpu_app::KvsCpuApp`] — the *same* store logic hosted on
//!   the baseline CPU behind a dumb NIC: every request pays interrupts,
//!   syscalls and kernel copies. This is the conventional deployment the
//!   experiments compare against.
//! - [`client`]: a closed-loop workload generator ([`client::KvsClientHost`])
//!   with YCSB-style knobs (read fraction, Zipfian skew, value size),
//!   recording end-to-end latencies.
//! - [`build`]: one-call assembly of both deployments.
//! - [`router`]: the rack-scale shard router ([`router::ShardRouterHost`])
//!   — consistent-hash placement over fabric-discovered endpoints with
//!   R-way replication and machine-crash fail-over (E10).

pub mod app;
pub mod build;
pub mod client;
pub mod cpu_app;
pub mod engine;
pub mod proto;
pub mod router;
pub mod server;

pub use app::KvsNicApp;
pub use build::{
    build_baseline_kvs, build_cpuless_kvs, build_hybrid_kvs, build_rack_kvs,
    build_rack_kvs_with_policy, KvsSetup, RackSetup,
};
pub use client::{KvsClientHost, WorkloadConfig};
pub use cpu_app::KvsCpuApp;
pub use engine::KvEngine;
pub use router::{RetryPolicy, RouterConfig, RouterStats, ShardRouterHost};
pub use server::{KvsServer, ServerConfig, ServerState, ServerStats, VA_STRIDE};
