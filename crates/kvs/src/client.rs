//! Closed-loop KVS workload generator.
//!
//! A [`KvsClientHost`] is a client machine on the network: it keeps a fixed
//! number of requests outstanding (closed loop), draws keys from a Zipfian
//! distribution and operations from a read/write mix — the YCSB knobs — and
//! records end-to-end latencies into the system stats registry.

use lastcpu_net::{Frame, PortId};
use lastcpu_sim::critpath::{op_key, STAGE_CLIENT_DONE, STAGE_CLIENT_ISSUE};
use lastcpu_sim::{CounterHandle, DetHashMap, HistogramHandle, MetricsHub, SimDuration, SimTime};

use lastcpu_core::{HostCtx, NetHost};

use crate::proto::{encode_get_into, encode_put_into, KvsRequest, KvsResponseRef, KvsStatus};

/// Retry/progress timer token.
const TOKEN_TICK: u64 = 1;

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of distinct keys.
    pub keys: u64,
    /// Zipfian skew (0 = uniform; YCSB default 0.99).
    pub theta: f64,
    /// Fraction of GETs (rest are PUTs).
    pub read_fraction: f64,
    /// Value size in bytes.
    pub value_size: usize,
    /// Requests kept outstanding (closed loop).
    pub outstanding: usize,
    /// Total operations to run (after load phase).
    pub total_ops: u64,
    /// Pre-load every key once before measuring.
    pub preload: bool,
    /// Request timeout: outstanding requests older than this are counted as
    /// lost and reissued (closed-loop recovery after server failures).
    pub timeout: SimDuration,
    /// Stats key prefix, e.g. `"client0"`.
    pub stats_prefix: String,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            keys: 1000,
            theta: 0.99,
            read_fraction: 0.95,
            value_size: 128,
            outstanding: 8,
            total_ops: 2000,
            preload: true,
            timeout: SimDuration::from_millis(100),
            stats_prefix: "client".into(),
        }
    }
}

/// Workload phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the server to come up (probing).
    Probing,
    /// Inserting every key once.
    Loading,
    /// Measuring.
    Running,
    /// Finished.
    Done,
}

/// Pre-registered metric handles, interned once at power-on. The measured
/// loop used to build five `format!("{prefix}.…")` keys per completed op —
/// the single largest client-side contributor to the E9 allocs/event count.
struct ClientMetrics {
    latency: HistogramHandle,
    kvs_latency: HistogramHandle,
    get_latency: HistogramHandle,
    put_latency: HistogramHandle,
    gets: CounterHandle,
    puts: CounterHandle,
    unavailable: CounterHandle,
}

impl ClientMetrics {
    fn register(hub: &MetricsHub, prefix: &str) -> Self {
        ClientMetrics {
            latency: hub.histogram_handle(&format!("{prefix}.latency")),
            kvs_latency: hub.histogram_handle(&format!("kvs.{prefix}.latency")),
            get_latency: hub.histogram_handle(&format!("{prefix}.get_latency")),
            put_latency: hub.histogram_handle(&format!("{prefix}.put_latency")),
            gets: hub.counter_handle(&format!("kvs.{prefix}.gets")),
            puts: hub.counter_handle(&format!("kvs.{prefix}.puts")),
            unavailable: hub.counter_handle(&format!("kvs.{prefix}.unavailable")),
        }
    }
}

/// The client machine.
pub struct KvsClientHost {
    server: PortId,
    config: WorkloadConfig,
    met: Option<ClientMetrics>,
    phase: Phase,
    next_id: u64,
    /// id → (sent_at, is_read).
    outstanding: DetHashMap<u64, (SimTime, bool)>,
    load_next: u64,
    ops_done: u64,
    ops_issued: u64,
    errors: u64,
    busy_rejections: u64,
    unavailable_rejections: u64,
    timeouts: u64,
    started_at: Option<SimTime>,
    finished_at: Option<SimTime>,
    /// Reusable PUT-value buffer: refilled per issue, so the steady-state
    /// loop never allocates for values.
    value_scratch: Vec<u8>,
}

impl KvsClientHost {
    /// Creates a client aimed at the KVS frontend on `server`.
    pub fn new(server: PortId, config: WorkloadConfig) -> Self {
        KvsClientHost {
            server,
            config,
            met: None,
            phase: Phase::Probing,
            next_id: 1,
            outstanding: DetHashMap::default(),
            load_next: 0,
            ops_done: 0,
            ops_issued: 0,
            errors: 0,
            busy_rejections: 0,
            unavailable_rejections: 0,
            timeouts: 0,
            started_at: None,
            finished_at: None,
            value_scratch: Vec::new(),
        }
    }

    /// Whether the workload completed.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Operations completed in the measured phase.
    pub fn ops_done(&self) -> u64 {
        self.ops_done
    }

    /// Error responses observed.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// `Busy` responses observed (server shed load).
    pub fn busy_rejections(&self) -> u64 {
        self.busy_rejections
    }

    /// `Unavailable` responses observed (server failed over / recovering).
    pub fn unavailable_rejections(&self) -> u64 {
        self.unavailable_rejections
    }

    /// Requests that timed out (lost with a failed server).
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Measured-phase wall time, once done.
    pub fn elapsed(&self) -> Option<SimDuration> {
        Some(self.finished_at?.since(self.started_at?))
    }

    /// When the measured phase began.
    pub fn started_at(&self) -> Option<SimTime> {
        self.started_at
    }

    /// When the measured phase ended.
    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished_at
    }

    /// Throughput in ops per virtual second, once done.
    pub fn throughput(&self) -> Option<f64> {
        let e = self.elapsed()?;
        if e == SimDuration::ZERO {
            return None;
        }
        Some(self.ops_done as f64 / (e.as_nanos() as f64 / 1e9))
    }

    /// Formats `key{k:08}` into `buf` without allocating (the zero-pad
    /// widens for keys past eight digits, matching `format!`). 23 bytes is
    /// "key" plus the 20 digits of `u64::MAX`.
    fn key_encode(k: u64, buf: &mut [u8; 23]) -> &[u8] {
        let mut digits = 1usize;
        let mut t = k;
        while t >= 10 {
            t /= 10;
            digits += 1;
        }
        let len = 3 + digits.max(8);
        buf[..3].copy_from_slice(b"key");
        let mut v = k;
        for b in buf[3..len].iter_mut().rev() {
            *b = b'0' + (v % 10) as u8;
            v /= 10;
        }
        &buf[..len]
    }

    #[cfg(test)]
    fn key_bytes(k: u64) -> Vec<u8> {
        let mut buf = [0u8; 23];
        Self::key_encode(k, &mut buf).to_vec()
    }

    /// Issues a GET, encoding straight into a pooled buffer.
    fn send_get(&mut self, ctx: &mut HostCtx<'_>, id: u64, key: &[u8]) {
        self.outstanding.insert(id, (ctx.now, true));
        let mut buf = ctx.take_buf();
        encode_get_into(id, key, buf.vec_mut());
        ctx.net_tx(self.server, buf);
    }

    /// Issues a PUT with a `fill`-byte value, encoding straight into a
    /// pooled buffer (the value materializes in a reusable scratch).
    fn send_put(&mut self, ctx: &mut HostCtx<'_>, id: u64, key: &[u8], fill: u8) {
        self.outstanding.insert(id, (ctx.now, false));
        self.value_scratch.clear();
        self.value_scratch.resize(self.config.value_size, fill);
        let mut buf = ctx.take_buf();
        encode_put_into(id, key, &self.value_scratch, buf.vec_mut());
        ctx.net_tx(self.server, buf);
    }

    fn issue_one(&mut self, ctx: &mut HostCtx<'_>) {
        let id = self.next_id;
        self.next_id += 1;
        let mut kb = [0u8; 23];
        match self.phase {
            Phase::Loading => {
                let key = Self::key_encode(self.load_next, &mut kb);
                self.load_next += 1;
                self.send_put(ctx, id, key, 0xAB);
            }
            Phase::Running => {
                let k = ctx.rng().zipf(self.config.keys, self.config.theta);
                let key = Self::key_encode(k, &mut kb);
                let is_read = ctx.rng().chance(self.config.read_fraction);
                if is_read {
                    self.send_get(ctx, id, key);
                } else {
                    self.send_put(ctx, id, key, 0xCD);
                }
                ctx.stage(STAGE_CLIENT_ISSUE, op_key(ctx.port.0, id), is_read as u64);
                self.ops_issued += 1;
            }
            _ => {}
        }
    }

    fn fill_pipeline(&mut self, ctx: &mut HostCtx<'_>) {
        match self.phase {
            Phase::Loading => {
                while self.outstanding.len() < self.config.outstanding
                    && self.load_next < self.config.keys
                {
                    self.issue_one(ctx);
                }
                if self.load_next >= self.config.keys && self.outstanding.is_empty() {
                    self.phase = Phase::Running;
                    self.started_at = Some(ctx.now);
                    ctx.set_timer(self.config.timeout, TOKEN_TICK);
                    self.fill_pipeline(ctx);
                }
            }
            Phase::Running => {
                while self.outstanding.len() < self.config.outstanding
                    && self.ops_issued < self.config.total_ops
                {
                    self.issue_one(ctx);
                }
                if self.ops_done >= self.config.total_ops && self.outstanding.is_empty() {
                    self.phase = Phase::Done;
                    self.finished_at = Some(ctx.now);
                    ctx.trace(format!(
                        "workload done: {} ops, {} errors",
                        self.ops_done, self.errors
                    ));
                }
            }
            _ => {}
        }
    }

    fn probe(&mut self, ctx: &mut HostCtx<'_>) {
        // A 1-byte GET; any non-Busy answer means the server is up.
        let id = self.next_id;
        self.next_id += 1;
        self.outstanding.insert(id, (ctx.now, true));
        ctx.net_tx(
            self.server,
            KvsRequest::Get {
                id,
                key: b"probe".to_vec(),
            }
            .encode(),
        );
        ctx.set_timer(SimDuration::from_millis(2), TOKEN_TICK);
    }
}

impl NetHost for KvsClientHost {
    fn snapshot_state(&self, w: &mut lastcpu_snap::SnapWriter) -> lastcpu_snap::Result<()> {
        lastcpu_snap::Snapshot::snapshot(self, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        lastcpu_snap::Restore::restore(self, r)
    }

    fn name(&self) -> &str {
        &self.config.stats_prefix
    }

    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.met = Some(ClientMetrics::register(
            ctx.stats,
            &self.config.stats_prefix,
        ));
        self.probe(ctx);
    }

    fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: Frame) {
        // Borrowed decode: the client never needs an owned copy of the
        // value bytes, so the hot completion path is allocation-free.
        let Some(resp) = KvsResponseRef::decode(&frame.payload) else {
            return;
        };
        let Some((sent_at, is_read)) = self.outstanding.remove(&resp.id) else {
            return;
        };
        match self.phase {
            Phase::Probing => {
                if matches!(resp.status, KvsStatus::Busy | KvsStatus::Unavailable) {
                    // Not up yet (or recovering); the tick timer re-probes.
                    return;
                }
                self.phase = if self.config.preload {
                    Phase::Loading
                } else {
                    self.started_at = Some(ctx.now);
                    Phase::Running
                };
                ctx.set_timer(self.config.timeout, TOKEN_TICK);
                self.fill_pipeline(ctx);
            }
            Phase::Loading => {
                match resp.status {
                    KvsStatus::Ok => {}
                    KvsStatus::Busy => {
                        // Reload this key later; simplest is to append it
                        // again at the end of the load range.
                        self.busy_rejections += 1;
                        self.load_next = self.load_next.saturating_sub(1);
                    }
                    KvsStatus::Unavailable => {
                        // Server failed over mid-load; reload the key once
                        // recovery completes.
                        self.unavailable_rejections += 1;
                        self.load_next = self.load_next.saturating_sub(1);
                    }
                    _ => self.errors += 1,
                }
                self.fill_pipeline(ctx);
            }
            Phase::Running => {
                let latency = ctx.now.since(sent_at);
                let met = self.met.as_ref().expect("registered in on_start");
                match resp.status {
                    KvsStatus::Ok | KvsStatus::NotFound => {
                        self.ops_done += 1;
                        ctx.stage(
                            STAGE_CLIENT_DONE,
                            op_key(ctx.port.0, resp.id),
                            latency.as_nanos(),
                        );
                        met.latency.record(latency);
                        // Hub-keyed copies under the `kvs.` subsystem so a
                        // metrics snapshot always exposes the KVS layer.
                        met.kvs_latency.record(latency);
                        if is_read {
                            met.get_latency.record(latency);
                            met.gets.incr();
                        } else {
                            met.put_latency.record(latency);
                            met.puts.incr();
                        }
                    }
                    KvsStatus::Busy => {
                        self.busy_rejections += 1;
                        self.ops_done += 1;
                        // Back off: refill on the next tick instead of
                        // hammering a shedding server at wire speed.
                        return;
                    }
                    KvsStatus::Unavailable => {
                        // Explicit degradation: the server lost its backing
                        // store and is re-running discovery. Count the op as
                        // done (no latency sample) and back off until the
                        // next tick — recovery takes bus round-trips, not
                        // wire time.
                        self.unavailable_rejections += 1;
                        self.ops_done += 1;
                        met.unavailable.incr();
                        return;
                    }
                    KvsStatus::Error => {
                        self.errors += 1;
                        self.ops_done += 1;
                    }
                }
                self.fill_pipeline(ctx);
            }
            Phase::Done => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, token: u64) {
        if token != TOKEN_TICK {
            return;
        }
        match self.phase {
            Phase::Probing => {
                self.outstanding.clear();
                self.probe(ctx);
            }
            Phase::Loading | Phase::Running => {
                // Expire lost requests (e.g. they died with a failed
                // server) so the closed loop keeps moving.
                let deadline = self.config.timeout;
                let now = ctx.now;
                let before = self.outstanding.len();
                self.outstanding
                    .retain(|_, (sent, _)| now.since(*sent) < deadline);
                let lost = (before - self.outstanding.len()) as u64;
                self.timeouts += lost;
                if self.phase == Phase::Running {
                    // Timed-out ops count as done (with no latency sample)
                    // so workloads terminate even across failures.
                    self.ops_done += lost;
                }
                if self.phase == Phase::Loading {
                    self.load_next = self.load_next.saturating_sub(lost);
                }
                self.fill_pipeline(ctx);
                if self.phase != Phase::Done {
                    ctx.set_timer(self.config.timeout, TOKEN_TICK);
                }
            }
            Phase::Done => {}
        }
    }
}

fn phase_tag(p: Phase) -> u8 {
    match p {
        Phase::Probing => 0,
        Phase::Loading => 1,
        Phase::Running => 2,
        Phase::Done => 3,
    }
}

impl lastcpu_snap::Snapshot for KvsClientHost {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u32(self.server.0);
        w.put_u64(self.config.keys);
        w.put_f64(self.config.theta);
        w.put_f64(self.config.read_fraction);
        w.put_len(self.config.value_size);
        w.put_len(self.config.outstanding);
        w.put_u64(self.config.total_ops);
        w.put_bool(self.config.preload);
        w.put_u64(self.config.timeout.as_nanos());
        w.put_str(&self.config.stats_prefix);
        w.put_u8(phase_tag(self.phase));
        w.put_u64(self.next_id);
        let mut ids: Vec<u64> = self.outstanding.keys().copied().collect();
        ids.sort_unstable();
        w.put_len(ids.len());
        for id in ids {
            let (sent, is_read) = self.outstanding[&id];
            w.put_u64(id);
            w.put_u64(sent.as_nanos());
            w.put_bool(is_read);
        }
        w.put_u64(self.load_next);
        w.put_u64(self.ops_done);
        w.put_u64(self.ops_issued);
        w.put_u64(self.errors);
        w.put_u64(self.busy_rejections);
        w.put_u64(self.unavailable_rejections);
        w.put_u64(self.timeouts);
        w.put_opt(self.started_at.as_ref(), |w, t| w.put_u64(t.as_nanos()));
        w.put_opt(self.finished_at.as_ref(), |w, t| w.put_u64(t.as_nanos()));
        // Excluded: `met` (live MetricsHub handles) and `value_scratch`
        // (refilled on every issue).
    }
}

impl lastcpu_snap::Restore for KvsClientHost {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.server = PortId(r.u32()?);
        self.config.keys = r.u64()?;
        self.config.theta = r.f64()?;
        self.config.read_fraction = r.f64()?;
        self.config.value_size = r.len()?;
        self.config.outstanding = r.len()?;
        self.config.total_ops = r.u64()?;
        self.config.preload = r.bool()?;
        self.config.timeout = SimDuration::from_nanos(r.u64()?);
        self.config.stats_prefix = r.str()?;
        self.phase = match r.u8()? {
            0 => Phase::Probing,
            1 => Phase::Loading,
            2 => Phase::Running,
            3 => Phase::Done,
            t => return Err(r.corrupt(format!("unknown client phase tag {t}"))),
        };
        self.next_id = r.u64()?;
        let n = r.len()?;
        self.outstanding = DetHashMap::default();
        for _ in 0..n {
            let id = r.u64()?;
            let sent = SimTime::from_nanos(r.u64()?);
            let is_read = r.bool()?;
            self.outstanding.insert(id, (sent, is_read));
        }
        self.load_next = r.u64()?;
        self.ops_done = r.u64()?;
        self.ops_issued = r.u64()?;
        self.errors = r.u64()?;
        self.busy_rejections = r.u64()?;
        self.unavailable_rejections = r.u64()?;
        self.timeouts = r.u64()?;
        self.started_at = r.opt(|r| Ok(SimTime::from_nanos(r.u64()?)))?;
        self.finished_at = r.opt(|r| Ok(SimTime::from_nanos(r.u64()?)))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_bytes_are_stable_and_distinct() {
        assert_eq!(KvsClientHost::key_bytes(1), b"key00000001".to_vec());
        assert_ne!(KvsClientHost::key_bytes(1), KvsClientHost::key_bytes(2));
    }

    #[test]
    fn key_encode_matches_format_macro() {
        for k in [
            0,
            1,
            9,
            10,
            99_999_999,
            100_000_000,
            1_234_567_890,
            u64::MAX,
        ] {
            let mut buf = [0u8; 23];
            assert_eq!(
                KvsClientHost::key_encode(k, &mut buf),
                format!("key{k:08}").as_bytes(),
                "key {k}"
            );
        }
    }

    #[test]
    fn fresh_client_is_not_done() {
        let c = KvsClientHost::new(PortId(1), WorkloadConfig::default());
        assert!(!c.is_done());
        assert_eq!(c.ops_done(), 0);
        assert!(c.throughput().is_none());
    }
}
