//! The log-structured KV engine.
//!
//! Values live in an append-only log (the SSD file); the index mapping keys
//! to `(value_offset, value_len)` lives in the processing device's local
//! memory — on the smart NIC in the CPU-less deployment, in kernel memory
//! on the baseline. KV-Direct uses the same split. Deletes are tombstones;
//! the index is rebuilt by scanning the log at startup.
//!
//! Record layout (little endian):
//!
//! ```text
//! [klen: u16][vlen: u32][key bytes][value bytes]
//! ```
//!
//! A tombstone is `vlen == u32::MAX` with no value bytes.

use lastcpu_sim::DetHashMap;

/// Tombstone marker.
const TOMBSTONE: u32 = u32::MAX;
/// Record header size.
pub const HEADER: u64 = 6;

/// Maximum key length (fits the u16 header field; also a sanity bound).
pub const MAX_KEY: usize = 1024;
/// Maximum value length (bounded so one record fits queue buffer slots).
pub const MAX_VALUE: usize = 2048;

/// Errors from engine operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// Key exceeds [`MAX_KEY`].
    KeyTooLong,
    /// Value exceeds [`MAX_VALUE`].
    ValueTooLong,
    /// A scanned record was malformed (corrupt log).
    Corrupt,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EngineError::KeyTooLong => "key too long",
            EngineError::ValueTooLong => "value too long",
            EngineError::Corrupt => "corrupt log record",
        };
        f.write_str(s)
    }
}

impl std::error::Error for EngineError {}

/// Where a key's current value lives in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueRef {
    /// Byte offset of the value within the log file.
    pub offset: u64,
    /// Value length in bytes.
    pub len: u32,
}

/// Engine statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct EngineStats {
    /// Keys currently live.
    pub live_keys: u64,
    /// Log bytes appended over the engine's lifetime.
    pub log_bytes: u64,
    /// Bytes in the log belonging to superseded records (garbage).
    pub dead_bytes: u64,
}

/// The index + log-head state of the store.
pub struct KvEngine {
    index: DetHashMap<Vec<u8>, ValueRef>,
    /// Next append offset in the log file.
    cursor: u64,
    stats: EngineStats,
}

impl KvEngine {
    /// An empty engine with the log head at zero.
    pub fn new() -> Self {
        KvEngine {
            index: DetHashMap::default(),
            cursor: 0,
            stats: EngineStats::default(),
        }
    }

    /// Current log-head offset.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Statistics.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            live_keys: self.index.len() as u64,
            ..self.stats
        }
    }

    /// Looks up where a key's value lives.
    pub fn get(&self, key: &[u8]) -> Option<ValueRef> {
        let _prof = lastcpu_sim::profile::span("kvs.engine.get");
        self.index.get(key).copied()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Prepares a PUT: encodes the record, advances the log head, updates
    /// the index. Returns `(append_offset, record_bytes)`; the caller
    /// writes the bytes at the offset (through whatever storage path its
    /// deployment uses).
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(u64, Vec<u8>), EngineError> {
        let _prof = lastcpu_sim::profile::span("kvs.engine.put");
        if key.len() > MAX_KEY {
            return Err(EngineError::KeyTooLong);
        }
        if value.len() > MAX_VALUE {
            return Err(EngineError::ValueTooLong);
        }
        let offset = self.cursor;
        let mut rec = Vec::with_capacity(HEADER as usize + key.len() + value.len());
        rec.extend_from_slice(&(key.len() as u16).to_le_bytes());
        rec.extend_from_slice(&(value.len() as u32).to_le_bytes());
        rec.extend_from_slice(key);
        rec.extend_from_slice(value);
        self.cursor += rec.len() as u64;
        self.stats.log_bytes += rec.len() as u64;
        let value_off = offset + HEADER + key.len() as u64;
        let vref = ValueRef {
            offset: value_off,
            len: value.len() as u32,
        };
        // Overwrites update in place through a borrowed-key lookup; the key
        // is copied into the index only when it is genuinely new, so a
        // steady-state overwrite workload allocates nothing here.
        match self.index.get_mut(key) {
            Some(old) => {
                self.stats.dead_bytes += HEADER + key.len() as u64 + old.len as u64;
                *old = vref;
            }
            None => {
                self.index.insert(key.to_vec(), vref);
            }
        }
        Ok((offset, rec))
    }

    /// Fraction of the log occupied by superseded records and tombstones.
    pub fn garbage_ratio(&self) -> f64 {
        if self.stats.log_bytes == 0 {
            0.0
        } else {
            self.stats.dead_bytes as f64 / self.stats.log_bytes as f64
        }
    }

    /// Compacts the log: re-encodes every live record densely, in key
    /// order, fetching value bytes through `fetch` (which reads them from
    /// wherever the log lives — flash, in the real deployment).
    ///
    /// Returns the replacement log bytes and the engine state that indexes
    /// them. The caller writes the new log to a fresh file and swaps; this
    /// is the offline half of compaction — the online swap is a service
    /// re-open, orchestrated by the application.
    pub fn compact<F>(&self, mut fetch: F) -> Result<(Vec<u8>, KvEngine), EngineError>
    where
        F: FnMut(ValueRef) -> Vec<u8>,
    {
        let mut keys: Vec<&Vec<u8>> = self.index.keys().collect();
        keys.sort();
        let mut log = Vec::new();
        let mut fresh = KvEngine::new();
        for key in keys {
            let vref = self.index[key];
            let value = fetch(vref);
            if value.len() != vref.len as usize {
                return Err(EngineError::Corrupt);
            }
            let (off, rec) = fresh.put(key, &value)?;
            debug_assert_eq!(off as usize, log.len());
            log.extend_from_slice(&rec);
        }
        Ok((log, fresh))
    }

    /// Prepares a DELETE (tombstone). Returns `(append_offset,
    /// record_bytes)`, or `None` if the key does not exist.
    pub fn delete(&mut self, key: &[u8]) -> Result<Option<(u64, Vec<u8>)>, EngineError> {
        if key.len() > MAX_KEY {
            return Err(EngineError::KeyTooLong);
        }
        let Some(old) = self.index.remove(key) else {
            return Ok(None);
        };
        self.stats.dead_bytes += HEADER + key.len() as u64 + old.len as u64;
        let offset = self.cursor;
        let mut rec = Vec::with_capacity(HEADER as usize + key.len());
        rec.extend_from_slice(&(key.len() as u16).to_le_bytes());
        rec.extend_from_slice(&TOMBSTONE.to_le_bytes());
        rec.extend_from_slice(key);
        self.cursor += rec.len() as u64;
        self.stats.log_bytes += rec.len() as u64;
        self.stats.dead_bytes += rec.len() as u64; // tombstones are garbage too
        Ok(Some((offset, rec)))
    }
}

impl Default for KvEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for KvEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "KvEngine(keys={}, log={}B, garbage={:.2})",
            self.index.len(),
            self.cursor,
            self.garbage_ratio()
        )
    }
}

/// Incremental log scanner for index rebuild.
///
/// Feed it file chunks in order; it parses records across chunk boundaries
/// and replays them into an engine.
pub struct LogScanner {
    carry: Vec<u8>,
    /// File offset of `carry[0]`.
    base: u64,
}

impl LogScanner {
    /// A scanner positioned at the start of the log.
    pub fn new() -> Self {
        LogScanner {
            carry: Vec::new(),
            base: 0,
        }
    }

    /// Feeds the next chunk (must be contiguous with the previous one).
    /// Replays complete records into `engine`.
    pub fn feed(&mut self, engine: &mut KvEngine, chunk: &[u8]) -> Result<(), EngineError> {
        self.carry.extend_from_slice(chunk);
        let mut pos = 0usize;
        loop {
            let rest = &self.carry[pos..];
            if rest.len() < HEADER as usize {
                break;
            }
            let klen = u16::from_le_bytes(rest[0..2].try_into().expect("len 2")) as usize;
            let vlen_raw = u32::from_le_bytes(rest[2..6].try_into().expect("len 4"));
            if klen > MAX_KEY {
                return Err(EngineError::Corrupt);
            }
            let vlen = if vlen_raw == TOMBSTONE {
                0
            } else {
                vlen_raw as usize
            };
            if vlen > MAX_VALUE {
                return Err(EngineError::Corrupt);
            }
            let total = HEADER as usize + klen + vlen;
            if rest.len() < total {
                break;
            }
            let key = &rest[HEADER as usize..HEADER as usize + klen];
            let record_off = self.base + pos as u64;
            if vlen_raw == TOMBSTONE {
                // Replay the delete without re-encoding a tombstone.
                let existed = engine.index.remove(key).is_some();
                let _ = existed;
            } else {
                let value_off = record_off + HEADER + klen as u64;
                engine.index.insert(
                    key.to_vec(),
                    ValueRef {
                        offset: value_off,
                        len: vlen as u32,
                    },
                );
            }
            pos += total;
            engine.cursor = engine.cursor.max(record_off + total as u64);
            engine.stats.log_bytes = engine.cursor;
        }
        self.carry.drain(..pos);
        self.base += pos as u64;
        Ok(())
    }

    /// Bytes held waiting for the rest of a record.
    pub fn pending(&self) -> usize {
        self.carry.len()
    }
}

impl Default for LogScanner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    enum KvOp {
        Put(u8, Vec<u8>),
        Delete(u8),
    }

    fn op_strategy() -> impl Strategy<Value = KvOp> {
        prop_oneof![
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64))
                .prop_map(|(k, v)| KvOp::Put(k, v)),
            any::<u8>().prop_map(KvOp::Delete),
        ]
    }

    proptest! {
        /// Any op sequence: the engine's index agrees with a model map, and
        /// a scanner replaying the log (in odd-sized chunks) rebuilds the
        /// exact same index.
        #[test]
        fn prop_log_replay_rebuilds_index(
            ops in proptest::collection::vec(op_strategy(), 1..150),
            chunk in 1usize..97,
        ) {
            let mut engine = KvEngine::new();
            let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
            let mut log: Vec<u8> = Vec::new();
            for op in ops {
                match op {
                    KvOp::Put(k, v) => {
                        let key = vec![b'k', k];
                        let (off, rec) = engine.put(&key, &v).unwrap();
                        prop_assert_eq!(off as usize, log.len(), "appends are dense");
                        log.extend_from_slice(&rec);
                        model.insert(key, v);
                    }
                    KvOp::Delete(k) => {
                        let key = vec![b'k', k];
                        let r = engine.delete(&key).unwrap();
                        match model.remove(&key) {
                            Some(_) => {
                                let (off, rec) = r.unwrap();
                                prop_assert_eq!(off as usize, log.len());
                                log.extend_from_slice(&rec);
                            }
                            None => prop_assert!(r.is_none()),
                        }
                    }
                }
            }
            prop_assert_eq!(engine.len(), model.len());
            // Index entries point at the right bytes in the log.
            for (key, value) in &model {
                let vref = engine.get(key).unwrap();
                prop_assert_eq!(vref.len as usize, value.len());
                let got = &log[vref.offset as usize..vref.offset as usize + value.len()];
                prop_assert_eq!(got, &value[..]);
            }
            // Replay through the scanner in awkward chunks.
            let mut rebuilt = KvEngine::new();
            let mut scanner = LogScanner::new();
            for c in log.chunks(chunk) {
                scanner.feed(&mut rebuilt, c).unwrap();
            }
            prop_assert_eq!(scanner.pending(), 0);
            prop_assert_eq!(rebuilt.len(), engine.len());
            prop_assert_eq!(rebuilt.cursor(), engine.cursor());
            for key in model.keys() {
                prop_assert_eq!(rebuilt.get(key), engine.get(key));
            }
        }
    }
}

#[cfg(test)]
mod compaction_tests {
    use super::*;

    /// Builds an engine plus its raw log from a list of operations.
    fn build(ops: &[(&str, Option<&str>)]) -> (KvEngine, Vec<u8>) {
        let mut e = KvEngine::new();
        let mut log = Vec::new();
        for (k, v) in ops {
            match v {
                Some(v) => {
                    let (_, rec) = e.put(k.as_bytes(), v.as_bytes()).unwrap();
                    log.extend_from_slice(&rec);
                }
                None => {
                    if let Some((_, rec)) = e.delete(k.as_bytes()).unwrap() {
                        log.extend_from_slice(&rec);
                    }
                }
            }
        }
        (e, log)
    }

    #[test]
    fn compaction_drops_garbage_and_preserves_live_data() {
        let (e, log) = build(&[
            ("a", Some("v1")),
            ("b", Some("v2")),
            ("a", Some("v1-new")), // supersedes
            ("c", Some("v3")),
            ("b", None), // tombstone
        ]);
        assert!(e.garbage_ratio() > 0.3, "ratio {}", e.garbage_ratio());
        let (new_log, fresh) = e
            .compact(|vref| {
                log[vref.offset as usize..vref.offset as usize + vref.len as usize].to_vec()
            })
            .unwrap();
        assert!(new_log.len() < log.len());
        assert_eq!(fresh.len(), 2);
        assert_eq!(fresh.garbage_ratio(), 0.0);
        // The fresh index points into the new log correctly.
        for key in [b"a".as_slice(), b"c"] {
            let vref = fresh.get(key).unwrap();
            let got = &new_log[vref.offset as usize..vref.offset as usize + vref.len as usize];
            let want = e.get(key).unwrap();
            let old = &log[want.offset as usize..want.offset as usize + want.len as usize];
            assert_eq!(got, old);
        }
        assert!(fresh.get(b"b").is_none());
        // A scanner over the new log rebuilds the same state.
        let mut rebuilt = KvEngine::new();
        let mut s = LogScanner::new();
        s.feed(&mut rebuilt, &new_log).unwrap();
        assert_eq!(rebuilt.len(), fresh.len());
        assert_eq!(rebuilt.get(b"a"), fresh.get(b"a"));
    }

    #[test]
    fn compacting_empty_engine_is_empty() {
        let e = KvEngine::new();
        let (log, fresh) = e.compact(|_| unreachable!("no live records")).unwrap();
        assert!(log.is_empty());
        assert!(fresh.is_empty());
    }

    #[test]
    fn compaction_detects_length_mismatch() {
        let (e, _log) = build(&[("a", Some("v1"))]);
        let r = e.compact(|_| vec![1, 2, 3, 4, 5, 6, 7]); // wrong length
        assert_eq!(r.unwrap_err(), EngineError::Corrupt);
    }
}

impl lastcpu_snap::Snapshot for KvEngine {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u64(self.cursor);
        w.put_u64(self.stats.log_bytes);
        w.put_u64(self.stats.dead_bytes);
        // Sorted by key: DetHashMap iteration order depends on insertion
        // history, which a restore does not reproduce.
        let mut keys: Vec<&Vec<u8>> = self.index.keys().collect();
        keys.sort_unstable();
        w.put_len(keys.len());
        for k in keys {
            let v = self.index[k];
            w.put_bytes(k);
            w.put_u64(v.offset);
            w.put_u32(v.len);
        }
    }
}

impl lastcpu_snap::Restore for KvEngine {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.cursor = r.u64()?;
        self.stats.log_bytes = r.u64()?;
        self.stats.dead_bytes = r.u64()?;
        let n = r.len()?;
        self.index = DetHashMap::default();
        for _ in 0..n {
            let k = r.bytes()?;
            let offset = r.u64()?;
            let len = r.u32()?;
            self.index.insert(k, ValueRef { offset, len });
        }
        self.stats.live_keys = self.index.len() as u64;
        Ok(())
    }
}

impl lastcpu_snap::Snapshot for LogScanner {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_bytes(&self.carry);
        w.put_u64(self.base);
    }
}

impl lastcpu_snap::Restore for LogScanner {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.carry = r.bytes()?;
        self.base = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut e = KvEngine::new();
        let (off, rec) = e.put(b"k1", b"hello").unwrap();
        assert_eq!(off, 0);
        assert_eq!(rec.len(), 6 + 2 + 5);
        let v = e.get(b"k1").unwrap();
        assert_eq!(v.offset, 6 + 2);
        assert_eq!(v.len, 5);
        assert_eq!(e.cursor(), rec.len() as u64);
    }

    #[test]
    fn overwrite_tracks_garbage() {
        let mut e = KvEngine::new();
        e.put(b"k", b"v1").unwrap();
        let before = e.stats().dead_bytes;
        e.put(b"k", b"longer-value").unwrap();
        assert!(e.stats().dead_bytes > before);
        assert_eq!(e.len(), 1);
        assert_eq!(e.get(b"k").unwrap().len, 12);
    }

    #[test]
    fn delete_appends_tombstone() {
        let mut e = KvEngine::new();
        e.put(b"k", b"v").unwrap();
        let (off, rec) = e.delete(b"k").unwrap().unwrap();
        assert!(off > 0);
        assert_eq!(rec.len(), 6 + 1);
        assert!(e.get(b"k").is_none());
        // Deleting a missing key appends nothing.
        assert_eq!(e.delete(b"nope").unwrap(), None);
    }

    #[test]
    fn size_limits_enforced() {
        let mut e = KvEngine::new();
        assert_eq!(
            e.put(&vec![0u8; MAX_KEY + 1], b"v"),
            Err(EngineError::KeyTooLong)
        );
        assert_eq!(
            e.put(b"k", &vec![0u8; MAX_VALUE + 1]),
            Err(EngineError::ValueTooLong)
        );
    }

    #[test]
    fn scanner_rebuilds_index() {
        let mut writer = KvEngine::new();
        let mut log = Vec::new();
        for i in 0..50u32 {
            let (_, rec) = writer
                .put(format!("key{i}").as_bytes(), format!("value{i}").as_bytes())
                .unwrap();
            log.extend_from_slice(&rec);
        }
        let (_, rec) = writer.delete(b"key7").unwrap().unwrap();
        log.extend_from_slice(&rec);
        let (_, rec) = writer.put(b"key3", b"updated").unwrap();
        log.extend_from_slice(&rec);

        // Rebuild with awkward chunk sizes to cross record boundaries.
        let mut rebuilt = KvEngine::new();
        let mut scanner = LogScanner::new();
        for chunk in log.chunks(7) {
            scanner.feed(&mut rebuilt, chunk).unwrap();
        }
        assert_eq!(scanner.pending(), 0);
        assert_eq!(rebuilt.len(), writer.len());
        assert!(rebuilt.get(b"key7").is_none());
        assert_eq!(rebuilt.get(b"key3"), writer.get(b"key3"));
        assert_eq!(rebuilt.cursor(), writer.cursor());
        for i in 0..50u32 {
            if i == 7 {
                continue;
            }
            let k = format!("key{i}");
            assert_eq!(rebuilt.get(k.as_bytes()), writer.get(k.as_bytes()), "{k}");
        }
    }

    #[test]
    fn scanner_rejects_corrupt_records() {
        let mut log = Vec::new();
        log.extend_from_slice(&(2000u16).to_le_bytes()); // klen > MAX_KEY
        log.extend_from_slice(&5u32.to_le_bytes());
        log.extend_from_slice(&[0u8; 64]);
        let mut e = KvEngine::new();
        let mut s = LogScanner::new();
        assert_eq!(s.feed(&mut e, &log), Err(EngineError::Corrupt));
    }

    #[test]
    fn scanner_handles_partial_header_at_boundary() {
        let mut writer = KvEngine::new();
        let (_, rec) = writer.put(b"abc", b"defgh").unwrap();
        let mut e = KvEngine::new();
        let mut s = LogScanner::new();
        s.feed(&mut e, &rec[..3]).unwrap(); // mid-header
        assert_eq!(e.len(), 0);
        assert_eq!(s.pending(), 3);
        s.feed(&mut e, &rec[3..]).unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e.get(b"abc").unwrap().len, 5);
    }
}
