//! The KVS offloaded onto the smart NIC (the CPU-less deployment).

use lastcpu_devices::monitor::MonitorEvent;
use lastcpu_devices::nic::{NicApp, NicEnv};
use lastcpu_mem::Pasid;
use lastcpu_net::{Frame, PortId};
use lastcpu_sim::Bytes;

use crate::proto::KvsRequestRef;
use crate::server::{KvsServer, ServerConfig, ServerState, ServerStats};

/// The NIC-hosted KVS application.
pub struct KvsNicApp {
    server: KvsServer,
    /// Reused response scratch: the server appends `(dst, payload)` pairs
    /// here and `transmit` drains them, so steady-state request handling
    /// never allocates an output vector.
    out: Vec<(PortId, Bytes)>,
}

impl KvsNicApp {
    /// Creates the app; it will run in address space `pasid`.
    pub fn new(config: ServerConfig, pasid: Pasid) -> Self {
        KvsNicApp {
            server: KvsServer::new(config, pasid),
            out: Vec::new(),
        }
    }

    /// Server lifecycle state.
    pub fn state(&self) -> ServerState {
        self.server.state()
    }

    /// Server counters.
    pub fn stats(&self) -> ServerStats {
        self.server.stats()
    }

    /// Live keys.
    pub fn key_count(&self) -> usize {
        self.server.key_count()
    }

    /// Whether `key` is live in the index (rack-audit hook).
    pub fn contains(&self, key: &[u8]) -> bool {
        self.server.contains(key)
    }

    /// Enables or disables the server's zero-alloc GET fast path (test
    /// hook; see [`KvsServer::set_fast_path`]).
    pub fn set_fast_path(&mut self, on: bool) {
        self.server.set_fast_path(on);
    }

    fn transmit(env: &mut NicEnv<'_, '_>, responses: &mut Vec<(PortId, Bytes)>) {
        let Some(port) = env.ctx.port else {
            responses.clear();
            return;
        };
        for (dst, payload) in responses.drain(..) {
            env.ctx.net_tx(Frame::unicast(port, dst, payload));
        }
    }
}

impl NicApp for KvsNicApp {
    fn snapshot_state(&self, w: &mut lastcpu_snap::SnapWriter) -> lastcpu_snap::Result<()> {
        lastcpu_snap::Snapshot::snapshot(self, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        lastcpu_snap::Restore::restore(self, r)
    }

    fn app_name(&self) -> &str {
        "kvs"
    }

    fn on_start(&mut self, env: &mut NicEnv<'_, '_>) {
        self.server.start(env.ctx, env.monitor);
    }

    fn on_net(&mut self, env: &mut NicEnv<'_, '_>, frame: Frame) {
        let Some(req) = KvsRequestRef::decode(&frame.payload) else {
            // Not our protocol; a real NIC would fall through to the next
            // classifier. Drop.
            return;
        };
        if let Some(port) = env.ctx.port {
            // Cache-hit GETs — the dominant shape — are answered without
            // materializing an owned request or an intermediate Vec: the
            // response serializes into a pooled buffer whose storage
            // recycles when the client consumes the reply frame.
            let _sp = lastcpu_sim::profile::span("kvs.app.fast_get");
            let mut buf = env.ctx.take_buf();
            if self.server.try_fast_get(env.ctx, &req, buf.vec_mut()) {
                env.ctx.net_tx(Frame::unicast(port, frame.src, buf));
                return;
            }
        }
        // Slow path: the request must be materialized (owned key/value)
        // because it may outlive the frame in the server's backlog — under
        // storage-queue backpressure even cache-hit GETs queue here to keep
        // FIFO response order. That `to_owned` is the remaining per-request
        // allocation the E9 profile attributes to `kvs.app.enqueue`.
        let _sp = lastcpu_sim::profile::span("kvs.app.enqueue");
        let mut out = std::mem::take(&mut self.out);
        debug_assert!(out.is_empty());
        self.server
            .on_request(env.ctx, frame.src, req.to_owned(), &mut out);
        Self::transmit(env, &mut out);
        self.out = out;
    }

    fn on_event(&mut self, env: &mut NicEnv<'_, '_>, ev: MonitorEvent) {
        let mut out = std::mem::take(&mut self.out);
        debug_assert!(out.is_empty());
        self.server.on_event(env.ctx, env.monitor, &ev, &mut out);
        Self::transmit(env, &mut out);
        self.out = out;
    }

    fn on_reset(&mut self) {
        // Device reset loses all volatile state; the index would be rebuilt
        // on the next start. (The server is recreated by the system
        // assembler in recovery experiments.)
    }
}

impl lastcpu_snap::Snapshot for KvsNicApp {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        // `out` is drained within the same delivery, so only the server
        // carries durable state.
        self.server.snapshot(w);
    }
}

impl lastcpu_snap::Restore for KvsNicApp {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.server.restore(r)
    }
}
