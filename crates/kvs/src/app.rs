//! The KVS offloaded onto the smart NIC (the CPU-less deployment).

use lastcpu_devices::monitor::MonitorEvent;
use lastcpu_devices::nic::{NicApp, NicEnv};
use lastcpu_mem::Pasid;
use lastcpu_net::Frame;

use crate::proto::KvsRequest;
use crate::server::{KvsServer, ServerConfig, ServerState, ServerStats};

/// The NIC-hosted KVS application.
pub struct KvsNicApp {
    server: KvsServer,
}

impl KvsNicApp {
    /// Creates the app; it will run in address space `pasid`.
    pub fn new(config: ServerConfig, pasid: Pasid) -> Self {
        KvsNicApp {
            server: KvsServer::new(config, pasid),
        }
    }

    /// Server lifecycle state.
    pub fn state(&self) -> ServerState {
        self.server.state()
    }

    /// Server counters.
    pub fn stats(&self) -> ServerStats {
        self.server.stats()
    }

    /// Live keys.
    pub fn key_count(&self) -> usize {
        self.server.key_count()
    }

    /// Whether `key` is live in the index (rack-audit hook).
    pub fn contains(&self, key: &[u8]) -> bool {
        self.server.contains(key)
    }

    fn transmit(env: &mut NicEnv<'_, '_>, responses: Vec<(lastcpu_net::PortId, Vec<u8>)>) {
        let Some(port) = env.ctx.port else { return };
        for (dst, payload) in responses {
            env.ctx.net_tx(Frame::unicast(port, dst, payload));
        }
    }
}

impl NicApp for KvsNicApp {
    fn app_name(&self) -> &str {
        "kvs"
    }

    fn on_start(&mut self, env: &mut NicEnv<'_, '_>) {
        self.server.start(env.ctx, env.monitor);
    }

    fn on_net(&mut self, env: &mut NicEnv<'_, '_>, frame: Frame) {
        match KvsRequest::decode(&frame.payload) {
            Some(req) => {
                let out = self.server.on_request(env.ctx, frame.src, req);
                Self::transmit(env, out);
            }
            None => {
                // Not our protocol; a real NIC would fall through to the
                // next classifier. Drop.
            }
        }
    }

    fn on_event(&mut self, env: &mut NicEnv<'_, '_>, ev: MonitorEvent) {
        let out = self.server.on_event(env.ctx, env.monitor, &ev);
        Self::transmit(env, out);
    }

    fn on_reset(&mut self) {
        // Device reset loses all volatile state; the index would be rebuilt
        // on the next start. (The server is recreated by the system
        // assembler in recovery experiments.)
    }
}
