//! The KVS hosted on the baseline CPU (the conventional deployment).
//!
//! Same [`crate::server::KvsServer`] logic as the NIC deployment, but every
//! request entered the kernel via a NIC interrupt and a copy, and every
//! response leaves through a syscall and another copy — the costs the
//! paper's offload removes. Storage I/O still uses the VIRTIO session; the
//! CPU drives it with its own MMU mappings.

use lastcpu_baseline::{CpuApp, KernelEnv};
use lastcpu_devices::monitor::MonitorEvent;
use lastcpu_mem::Pasid;
use lastcpu_net::PortId;
use lastcpu_sim::Bytes;

use crate::proto::KvsRequest;
use crate::server::{KvsServer, ServerConfig, ServerState, ServerStats};

/// The CPU-hosted KVS application.
pub struct KvsCpuApp {
    server: KvsServer,
    /// Reused response scratch (see [`crate::app::KvsNicApp`]).
    out: Vec<(PortId, Bytes)>,
}

impl KvsCpuApp {
    /// Creates the app; kernel memory lives in address space `pasid`.
    pub fn new(config: ServerConfig, pasid: Pasid) -> Self {
        KvsCpuApp {
            server: KvsServer::new(config, pasid),
            out: Vec::new(),
        }
    }

    /// Server lifecycle state.
    pub fn state(&self) -> ServerState {
        self.server.state()
    }

    /// Server counters.
    pub fn stats(&self) -> ServerStats {
        self.server.stats()
    }

    fn transmit(env: &mut KernelEnv<'_, '_>, responses: &mut Vec<(PortId, Bytes)>) {
        for (dst, payload) in responses.drain(..) {
            // The kernel egress path models a copy anyway (syscall + NIC
            // DMA), so handing over an owned Vec is faithful to it.
            env.send_packet(dst, payload.into_vec());
        }
    }
}

impl CpuApp for KvsCpuApp {
    fn app_name(&self) -> &str {
        "kvs-on-cpu"
    }

    fn on_start(&mut self, env: &mut KernelEnv<'_, '_>) {
        self.server.start(env.ctx, env.monitor);
    }

    fn on_packet(&mut self, env: &mut KernelEnv<'_, '_>, src: PortId, payload: Vec<u8>) {
        if let Some(req) = KvsRequest::decode(&payload) {
            let mut out = std::mem::take(&mut self.out);
            debug_assert!(out.is_empty());
            self.server.on_request(env.ctx, src, req, &mut out);
            Self::transmit(env, &mut out);
            self.out = out;
        }
    }

    fn on_event(&mut self, env: &mut KernelEnv<'_, '_>, ev: MonitorEvent) {
        let mut out = std::mem::take(&mut self.out);
        debug_assert!(out.is_empty());
        self.server.on_event(env.ctx, env.monitor, &ev, &mut out);
        Self::transmit(env, &mut out);
        self.out = out;
    }
}

impl lastcpu_snap::Snapshot for KvsCpuApp {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        // `out` is drained within the same delivery, so only the server
        // carries durable state.
        self.server.snapshot(w);
    }
}

impl lastcpu_snap::Restore for KvsCpuApp {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.server.restore(r)
    }
}
