//! Rack-scale shard router: consistent hashing + R-way replication.
//!
//! A [`ShardRouterHost`] is the client-side entry point of the rack KVS. It
//! speaks the ordinary [`proto`](crate::proto) on its switch port, so an
//! unmodified [`KvsClientHost`](crate::client::KvsClientHost) drives it
//! exactly like a single server — but behind the port, the router:
//!
//! 1. **Discovers the rack.** It periodically queries the fabric's in-band
//!    directory ([`DirMsg::Query`] to the machine's directory port) and
//!    keeps a [`HashRing`] over every `smart-nic` KVS endpoint in the rack,
//!    local or remote (remote endpoints arrive pre-translated to fabric
//!    proxy ports, so routing to them is just `net_tx`).
//! 2. **Shards by key.** A GET goes to the key's primary; PUT/DELETE fan
//!    out to the key's full R-way replica set (`ring.replicas(key, R)`) and
//!    are acknowledged to the client only when **every** current replica
//!    has acknowledged — the no-lost-acknowledged-writes invariant E10
//!    checks: once the client sees `Ok`, R machines hold the record, so any
//!    single machine crash leaves at least R−1 copies.
//! 3. **Fails over.** Sub-requests that time out, or whose target vanishes
//!    from the directory (the fabric withdraws a crashed machine's
//!    endpoints on its next sweep — the heartbeat/recovery machinery at
//!    rack granularity), are re-dispatched against the *recomputed* replica
//!    set. The consistent-hash ring guarantees only the dead machine's keys
//!    move (`fabric.router.rebalance_moves` counts them).
//!
//! Determinism: all request bookkeeping lives in `BTreeMap`/`BTreeSet`
//! (iteration order is data-, not allocation-, dependent), sweeps walk
//! pendings in sequence order, and replica sets come from the ring, which
//! is membership-order independent. Two same-seed runs replay bit-identically.
//!
//! [`DirMsg::Query`]: lastcpu_fabric::DirMsg::Query

use lastcpu_sim::DetHashMap;
use std::collections::{BTreeMap, BTreeSet};

use lastcpu_core::{HostCtx, NetHost};
use lastcpu_fabric::{DirMsg, HashRing};
use lastcpu_net::{Frame, PortId};
use lastcpu_sim::critpath::{
    op_key, STAGE_ROUTER_ACK, STAGE_ROUTER_RECV, STAGE_ROUTER_RESPOND, STAGE_ROUTER_SUB,
};
use lastcpu_sim::{profile, CounterHandle, GaugeHandle, SimDuration, SimTime};

use crate::proto::{KvsRequest, KvsResponse, KvsStatus};

/// Timer token for the periodic tick (directory refresh + timeout sweep).
const TOKEN_TICK: u64 = 1;

/// Sub-request ids the router mints start here. Client-chosen ids are small
/// monotone counters, so the two id spaces can never collide and a frame
/// that decodes as both a request and a response (the wire layouts alias)
/// is disambiguated by its id range.
pub const SUB_ID_BASE: u64 = 1 << 62;

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The local machine's fabric directory port ([`Fabric::directory_port`]).
    ///
    /// [`Fabric::directory_port`]: lastcpu_fabric::Fabric::directory_port
    pub dir_port: PortId,
    /// Directory `kind` of the endpoints to shard over (`"smart-nic"`).
    pub service_kind: String,
    /// Replication factor R (clamped to ≥ 1; effective R is bounded by the
    /// number of live endpoints).
    pub replication: usize,
    /// Virtual nodes per endpoint on the hash ring.
    pub vnodes: u32,
    /// Tick period: directory re-query + pending-request timeout sweep.
    pub tick: SimDuration,
    /// Age after which an unanswered sub-request is re-dispatched.
    pub sub_timeout: SimDuration,
    /// Re-dispatch budget per client request before giving up with
    /// [`KvsStatus::Unavailable`].
    pub max_retries: u32,
    /// Host name (traces, stats).
    pub name: String,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            dir_port: PortId(0),
            service_kind: "smart-nic".into(),
            replication: 1,
            vnodes: 64,
            tick: SimDuration::from_micros(1000),
            sub_timeout: SimDuration::from_micros(5000),
            max_retries: 24,
            name: "router".into(),
        }
    }
}

/// Operation class of a pending client request.
enum Op {
    Get,
    Put { value: Vec<u8> },
    Delete,
}

/// One sub-request to one replica.
struct Sub {
    /// Endpoint name (`"m2/nic0"`).
    target: String,
    /// Router-minted id (≥ [`SUB_ID_BASE`]).
    id: u64,
    /// When it was (last) transmitted.
    sent_at: SimTime,
    /// `Some(status)` once answered; `None` while waiting.
    ack: Option<KvsStatus>,
}

/// A client request being served.
struct PendingReq {
    client: PortId,
    client_id: u64,
    key: Vec<u8>,
    op: Op,
    subs: Vec<Sub>,
    /// Re-dispatch count (0 = initial dispatch only).
    attempts: u32,
    /// Marked by acks/timeouts; the sweep re-dispatches marked requests.
    needs_redispatch: bool,
}

/// Router counters, inspectable without the metrics hub.
#[derive(Debug, Default, Clone, Copy)]
pub struct RouterStats {
    /// Client requests accepted.
    pub requests: u64,
    /// Sub-requests routed to shard endpoints.
    pub hits: u64,
    /// Re-dispatches (timeout, replica loss, or transient rejection).
    pub failovers: u64,
    /// Requests abandoned after `max_retries` re-dispatches.
    pub give_ups: u64,
    /// Acked keys whose primary moved across directory epochs.
    pub rebalance_moves: u64,
    /// Directory epochs observed.
    pub epoch: u64,
}

/// Pre-registered `fabric.router.*` handles on the machine's metrics hub.
struct HubMetrics {
    requests: CounterHandle,
    hits: CounterHandle,
    failovers: CounterHandle,
    give_ups: CounterHandle,
    rebalance_moves: CounterHandle,
    dir_refreshes: CounterHandle,
    epoch: GaugeHandle,
    endpoints: GaugeHandle,
}

impl HubMetrics {
    fn register(hub: &lastcpu_sim::MetricsHub) -> Self {
        HubMetrics {
            requests: hub.counter_handle("fabric.router.requests"),
            hits: hub.counter_handle("fabric.router.hits"),
            failovers: hub.counter_handle("fabric.router.failovers"),
            give_ups: hub.counter_handle("fabric.router.give_ups"),
            rebalance_moves: hub.counter_handle("fabric.router.rebalance_moves"),
            dir_refreshes: hub.counter_handle("fabric.router.dir_refreshes"),
            epoch: hub.gauge_handle("fabric.router.epoch"),
            endpoints: hub.gauge_handle("fabric.router.endpoints"),
        }
    }
}

/// The shard router host.
pub struct ShardRouterHost {
    config: RouterConfig,
    ring: HashRing,
    /// Endpoint name → port reachable from this machine.
    endpoints: BTreeMap<String, PortId>,
    /// Last directory epoch seen.
    epoch: u64,
    next_sub_id: u64,
    next_seq: u64,
    /// Pending client requests by arrival sequence.
    pending: BTreeMap<u64, PendingReq>,
    /// Sub-request id → pending sequence.
    sub_index: DetHashMap<u64, u64>,
    /// Keys whose PUT the router has acknowledged to a client. The E10
    /// crash scenario audits these against surviving machines' indices.
    acked_puts: BTreeSet<Vec<u8>>,
    stats: RouterStats,
    met: Option<HubMetrics>,
}

impl ShardRouterHost {
    /// Creates a router; attach it to a fabric machine with
    /// [`System::add_host`](lastcpu_core::System::add_host).
    pub fn new(config: RouterConfig) -> Self {
        let vnodes = config.vnodes;
        // Salt the sub-id stream with the machine's directory port so sub
        // ids are unique *rack-wide*, not just per router — the E12
        // critical-path analyzer joins server-side stage marks on them
        // across a merged multi-machine trace. The salt lives in bits
        // 40..56, so ids stay ≥ SUB_ID_BASE and the id-range triage in
        // `on_frame` is unaffected.
        let salt = ((config.dir_port.0 as u64) & 0xFFFF) << 40;
        ShardRouterHost {
            config,
            ring: HashRing::new(vnodes),
            endpoints: BTreeMap::new(),
            epoch: 0,
            next_sub_id: SUB_ID_BASE | salt,
            next_seq: 0,
            pending: BTreeMap::new(),
            sub_index: DetHashMap::default(),
            acked_puts: BTreeSet::new(),
            stats: RouterStats::default(),
            met: None,
        }
    }

    /// Counters.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Whether the router has discovered at least one shard endpoint.
    pub fn is_ready(&self) -> bool {
        !self.ring.is_empty()
    }

    /// Shard endpoints currently on the ring, sorted by name.
    pub fn endpoint_names(&self) -> Vec<&str> {
        self.ring.nodes().iter().map(|s| s.as_str()).collect()
    }

    /// Keys whose PUT has been acknowledged to a client (sorted — the set
    /// is a `BTreeSet`, so iteration is deterministic).
    pub fn acked_put_keys(&self) -> &BTreeSet<Vec<u8>> {
        &self.acked_puts
    }

    /// Effective replication factor (configured R, at least 1).
    fn r(&self) -> usize {
        self.config.replication.max(1)
    }

    fn query_directory(&self, ctx: &mut HostCtx<'_>) {
        ctx.net_tx(
            self.config.dir_port,
            DirMsg::Query {
                epoch_hint: self.epoch,
            }
            .encode(),
        );
    }

    /// Installs a directory reply: rebuild the ring, count rebalance moves,
    /// and mark pendings whose in-flight targets vanished for immediate
    /// re-dispatch (machine-crash fail-over path).
    fn install_directory(
        &mut self,
        ctx: &mut HostCtx<'_>,
        epoch: u64,
        eps: Vec<lastcpu_fabric::DirEndpoint>,
    ) {
        if let Some(met) = &self.met {
            met.dir_refreshes.incr();
        }
        let mut fresh: BTreeMap<String, PortId> = BTreeMap::new();
        for ep in eps {
            if ep.kind == self.config.service_kind {
                fresh.insert(ep.name, PortId(ep.port));
            }
        }
        if fresh == self.endpoints && epoch == self.epoch {
            return;
        }
        self.epoch = epoch;
        self.stats.epoch = epoch;
        if let Some(met) = &self.met {
            met.epoch.set(epoch as i64);
            met.endpoints.set(fresh.len() as i64);
        }
        let membership_changed = fresh.keys().ne(self.endpoints.keys());
        if membership_changed {
            let mut ring = HashRing::new(self.config.vnodes);
            for name in fresh.keys() {
                ring.insert(name);
            }
            // Rebalance accounting: how many acknowledged keys changed
            // primary? The consistent-hash property tests bound this by
            // ~K/N per single join/leave.
            let moves = self
                .acked_puts
                .iter()
                .filter(|k| {
                    let old = self.ring.primary(k);
                    let new = ring.primary(k);
                    old.is_some() && new.is_some() && old != new
                })
                .count() as u64;
            if moves > 0 {
                self.stats.rebalance_moves += moves;
                if let Some(met) = &self.met {
                    met.rebalance_moves.add(moves);
                }
            }
            self.ring = ring;
        }
        self.endpoints = fresh;
        if membership_changed {
            // Fail over in-flight work addressed to departed endpoints now
            // rather than waiting out the sub-timeout.
            let seqs: Vec<u64> = self
                .pending
                .iter()
                .filter(|(_, p)| {
                    p.subs
                        .iter()
                        .any(|s| s.ack.is_none() && !self.endpoints.contains_key(&s.target))
                })
                .map(|(&seq, _)| seq)
                .collect();
            for seq in seqs {
                if let Some(p) = self.pending.get_mut(&seq) {
                    p.needs_redispatch = true;
                }
                self.redispatch(ctx, seq);
            }
        }
    }

    fn mint_sub(&mut self) -> u64 {
        let id = self.next_sub_id;
        self.next_sub_id += 1;
        id
    }

    /// Sends one sub-request to `target`; registers it under `seq`.
    fn issue_sub(&mut self, ctx: &mut HostCtx<'_>, seq: u64, target: String) {
        let port = self.endpoints[&target];
        let id = self.mint_sub();
        let p = self.pending.get_mut(&seq).expect("pending exists");
        let req = match &p.op {
            Op::Get => KvsRequest::Get {
                id,
                key: p.key.clone(),
            },
            Op::Put { value } => KvsRequest::Put {
                id,
                key: p.key.clone(),
                value: value.clone(),
            },
            Op::Delete => KvsRequest::Delete {
                id,
                key: p.key.clone(),
            },
        };
        p.subs.push(Sub {
            target,
            id,
            sent_at: ctx.now,
            ack: None,
        });
        let opk = op_key(p.client.0, p.client_id);
        self.sub_index.insert(id, seq);
        self.stats.hits += 1;
        if let Some(met) = &self.met {
            met.hits.incr();
        }
        ctx.stage(STAGE_ROUTER_SUB, id, opk);
        ctx.net_tx(port, req.encode());
    }

    /// Drops a pending request and unregisters its outstanding subs.
    fn drop_pending(&mut self, seq: u64) -> Option<PendingReq> {
        let p = self.pending.remove(&seq)?;
        for sub in &p.subs {
            self.sub_index.remove(&sub.id);
        }
        Some(p)
    }

    fn respond(ctx: &mut HostCtx<'_>, p: &PendingReq, status: KvsStatus, value: Vec<u8>) {
        ctx.stage(
            STAGE_ROUTER_RESPOND,
            op_key(p.client.0, p.client_id),
            status as u64,
        );
        ctx.net_tx(
            p.client,
            KvsResponse {
                id: p.client_id,
                status,
                value,
            }
            .encode(),
        );
    }

    /// (Re-)dispatches `seq` against the current replica set. Initial
    /// dispatch and fail-over share this path; only the latter counts as a
    /// fail-over and burns retry budget.
    fn redispatch(&mut self, ctx: &mut HostCtx<'_>, seq: u64) {
        let r = self.r();
        let max_retries = self.config.max_retries;
        // Phase 1: budget bookkeeping (short borrow of the pending entry).
        let (key, initial, over_budget) = {
            let Some(p) = self.pending.get_mut(&seq) else {
                return;
            };
            if !p.needs_redispatch {
                return;
            }
            p.needs_redispatch = false;
            let initial = p.subs.is_empty();
            if !initial {
                p.attempts += 1;
            }
            (p.key.clone(), initial, p.attempts > max_retries)
        };
        if !initial {
            self.stats.failovers += 1;
            if let Some(met) = &self.met {
                met.failovers.incr();
            }
        }
        if over_budget {
            self.stats.give_ups += 1;
            if let Some(met) = &self.met {
                met.give_ups.incr();
            }
            let p = self.drop_pending(seq).expect("pending exists");
            Self::respond(ctx, &p, KvsStatus::Unavailable, vec![]);
            return;
        }
        let reps: Vec<String> = self
            .ring
            .replicas(&key, r)
            .into_iter()
            .map(String::from)
            .collect();
        if reps.is_empty() {
            // No endpoints at all (rack-wide outage); keep the request
            // parked. The next sweep retries and the budget bounds it.
            self.pending
                .get_mut(&seq)
                .expect("pending")
                .needs_redispatch = true;
            return;
        }
        // Phase 2: cancel stale subs, compute what to (re)issue.
        let is_get = matches!(self.pending[&seq].op, Op::Get);
        let (cancelled, to_issue) = {
            let p = self.pending.get_mut(&seq).expect("pending exists");
            if is_get {
                // One replica at a time, rotating on each attempt so a dead
                // or recovering primary is skipped.
                let cancelled: Vec<u64> = p
                    .subs
                    .iter()
                    .filter(|s| s.ack.is_none())
                    .map(|s| s.id)
                    .collect();
                p.subs.retain(|s| s.ack.is_some());
                let target = reps[p.attempts as usize % reps.len()].clone();
                (cancelled, vec![target])
            } else {
                // Keep successful acks from targets still in the replica
                // set; everything else is cancelled and the uncovered
                // replicas get fresh subs.
                let keep = |s: &Sub| {
                    matches!(s.ack, Some(KvsStatus::Ok) | Some(KvsStatus::NotFound))
                        && reps.contains(&s.target)
                };
                let cancelled: Vec<u64> =
                    p.subs.iter().filter(|s| !keep(s)).map(|s| s.id).collect();
                p.subs.retain(keep);
                let missing: Vec<String> = reps
                    .iter()
                    .filter(|rep| !p.subs.iter().any(|s| &s.target == *rep))
                    .cloned()
                    .collect();
                (cancelled, missing)
            }
        };
        for id in cancelled {
            self.sub_index.remove(&id);
        }
        for target in to_issue {
            self.issue_sub(ctx, seq, target);
        }
        if !is_get {
            self.check_write_done(ctx, seq);
        }
    }

    /// Completes a PUT/DELETE if every current replica has acknowledged.
    fn check_write_done(&mut self, ctx: &mut HostCtx<'_>, seq: u64) {
        let Some(p) = self.pending.get(&seq) else {
            return;
        };
        let reps = self.ring.replicas(&p.key, self.r());
        if reps.is_empty() {
            return;
        }
        let covered = reps.iter().all(|r| {
            p.subs.iter().any(|s| {
                s.target == *r && matches!(s.ack, Some(KvsStatus::Ok | KvsStatus::NotFound))
            })
        });
        if !covered {
            return;
        }
        let any_ok = p.subs.iter().any(|s| s.ack == Some(KvsStatus::Ok));
        let p = self.drop_pending(seq).expect("pending exists");
        match p.op {
            Op::Put { .. } => {
                self.acked_puts.insert(p.key.clone());
                Self::respond(ctx, &p, KvsStatus::Ok, vec![]);
            }
            Op::Delete => {
                self.acked_puts.remove(&p.key);
                // NotFound on every replica is an honest miss; Ok anywhere
                // means the tombstone landed.
                let status = if any_ok {
                    KvsStatus::Ok
                } else {
                    KvsStatus::NotFound
                };
                Self::respond(ctx, &p, status, vec![]);
            }
            Op::Get => unreachable!("check_write_done is write-only"),
        }
    }

    /// A replica answered sub-request `id`.
    fn on_ack(&mut self, ctx: &mut HostCtx<'_>, resp: KvsResponse) {
        let Some(seq) = self.sub_index.remove(&resp.id) else {
            return; // late answer to a cancelled sub
        };
        let is_get = {
            let Some(p) = self.pending.get_mut(&seq) else {
                return;
            };
            let Some(sub) = p.subs.iter_mut().find(|s| s.id == resp.id) else {
                return;
            };
            sub.ack = Some(resp.status);
            ctx.stage(STAGE_ROUTER_ACK, resp.id, op_key(p.client.0, p.client_id));
            matches!(p.op, Op::Get)
        };
        match resp.status {
            KvsStatus::Ok | KvsStatus::NotFound if is_get => {
                let p = self.drop_pending(seq).expect("pending exists");
                Self::respond(ctx, &p, resp.status, resp.value);
            }
            KvsStatus::Error => {
                // Terminal server-side failure; propagate.
                let p = self.drop_pending(seq).expect("pending exists");
                Self::respond(ctx, &p, KvsStatus::Error, vec![]);
            }
            KvsStatus::Busy | KvsStatus::Unavailable => {
                // Transient (overload / mid-recovery): re-dispatch on the
                // next sweep so the target gets a tick's worth of air.
                if let Some(p) = self.pending.get_mut(&seq) {
                    p.needs_redispatch = true;
                }
            }
            _ => self.check_write_done(ctx, seq),
        }
    }

    /// A client request arrived.
    fn on_client(&mut self, ctx: &mut HostCtx<'_>, src: PortId, req: KvsRequest) {
        self.stats.requests += 1;
        if let Some(met) = &self.met {
            met.requests.incr();
        }
        if self.ring.is_empty() {
            // Rack not discovered yet: tell the client to back off, same as
            // a booting single server would.
            ctx.net_tx(
                src,
                KvsResponse {
                    id: req.id(),
                    status: KvsStatus::Busy,
                    value: vec![],
                }
                .encode(),
            );
            return;
        }
        let (client_id, key, op) = match req {
            KvsRequest::Get { id, key } => (id, key, Op::Get),
            KvsRequest::Put { id, key, value } => (id, key, Op::Put { value }),
            KvsRequest::Delete { id, key } => (id, key, Op::Delete),
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        ctx.stage(STAGE_ROUTER_RECV, op_key(src.0, client_id), seq);
        self.pending.insert(
            seq,
            PendingReq {
                client: src,
                client_id,
                key,
                op,
                subs: Vec::new(),
                attempts: 0,
                needs_redispatch: true,
            },
        );
        self.redispatch(ctx, seq);
    }

    /// Periodic sweep: re-query the directory, re-dispatch timed-out or
    /// transiently rejected sub-requests.
    fn sweep(&mut self, ctx: &mut HostCtx<'_>) {
        self.query_directory(ctx);
        let now = ctx.now;
        let base = self.config.sub_timeout;
        let seqs: Vec<u64> = self
            .pending
            .iter_mut()
            .filter_map(|(&seq, p)| {
                // Exponential backoff: each fail-over doubles the patience
                // (capped at 32x). Without this, a loaded rack whose RTT
                // momentarily exceeds the base timeout melts down: every
                // sweep cancels in-flight subs and reissues them, which adds
                // load, which lengthens RTT, which times out more subs.
                let timeout = base.saturating_mul(1u64 << p.attempts.min(5));
                let timed_out = p
                    .subs
                    .iter()
                    .any(|s| s.ack.is_none() && now.since(s.sent_at) >= timeout);
                if timed_out {
                    p.needs_redispatch = true;
                }
                if p.needs_redispatch {
                    Some(seq)
                } else {
                    None
                }
            })
            .collect();
        for seq in seqs {
            self.redispatch(ctx, seq);
        }
    }
}

impl NetHost for ShardRouterHost {
    fn name(&self) -> &str {
        &self.config.name
    }

    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.met = Some(HubMetrics::register(ctx.stats));
        self.query_directory(ctx);
        ctx.set_timer(self.config.tick, TOKEN_TICK);
    }

    fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: Frame) {
        let _prof = profile::span("kvs.router.dispatch");
        // 1. Directory replies (magic-tagged, and only ever from the
        //    directory port).
        if frame.src == self.config.dir_port && DirMsg::sniff(&frame.payload) {
            if let Ok(DirMsg::Reply { epoch, endpoints }) = DirMsg::decode(&frame.payload) {
                self.install_directory(ctx, epoch, endpoints);
            }
            return;
        }
        // 2. Replica acks: the request/response wire layouts alias, so a
        //    response is recognized by its id being one the router minted.
        if let Some(resp) = KvsResponse::decode(&frame.payload) {
            if resp.id >= SUB_ID_BASE && self.sub_index.contains_key(&resp.id) {
                self.on_ack(ctx, resp);
                return;
            }
        }
        // 3. Client requests.
        if let Some(req) = KvsRequest::decode(&frame.payload) {
            self.on_client(ctx, frame.src, req);
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, token: u64) {
        if token != TOKEN_TICK {
            return;
        }
        self.sweep(ctx);
        ctx.set_timer(self.config.tick, TOKEN_TICK);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_id_base_clears_client_id_space() {
        // Client ids count up from 1; the router mints from 1 << 62. A
        // century of simulated requests cannot bridge the gap.
        const { assert!(SUB_ID_BASE > u64::MAX / 4) }
    }

    #[test]
    fn fresh_router_is_not_ready() {
        let r = ShardRouterHost::new(RouterConfig::default());
        assert!(!r.is_ready());
        assert!(r.endpoint_names().is_empty());
        assert_eq!(r.stats().requests, 0);
        assert!(r.acked_put_keys().is_empty());
    }
}
