//! Rack-scale shard router: consistent hashing + R-way replication.
//!
//! A [`ShardRouterHost`] is the client-side entry point of the rack KVS. It
//! speaks the ordinary [`proto`](crate::proto) on its switch port, so an
//! unmodified [`KvsClientHost`](crate::client::KvsClientHost) drives it
//! exactly like a single server — but behind the port, the router:
//!
//! 1. **Discovers the rack.** It periodically queries the fabric's in-band
//!    directory ([`DirMsg::Query`] to the machine's directory port) and
//!    keeps a [`HashRing`] over every `smart-nic` KVS endpoint in the rack,
//!    local or remote (remote endpoints arrive pre-translated to fabric
//!    proxy ports, so routing to them is just `net_tx`).
//! 2. **Shards by key.** A GET goes to one of the key's replicas; PUT/DELETE
//!    fan out to the key's full R-way replica set (`ring.replicas(key, R)`)
//!    and are acknowledged to the client only when **every** current replica
//!    has acknowledged — the no-lost-acknowledged-writes invariant E10
//!    checks: once the client sees `Ok`, R machines hold the record, so any
//!    single machine crash leaves at least R−1 copies.
//! 3. **Fails over.** Sub-requests that time out, or whose target vanishes
//!    from the directory (the fabric withdraws a crashed machine's
//!    endpoints on its next sweep — the heartbeat/recovery machinery at
//!    rack granularity), are re-dispatched against the *recomputed* replica
//!    set. The consistent-hash ring guarantees only the dead machine's keys
//!    move (`fabric.router.rebalance_moves` counts them).
//! 4. **Tracks congestion.** Every sub carries a send timestamp; acks feed a
//!    per-endpoint RTT EWMA and outstanding-sub counts. The selectable
//!    [`RetryPolicy`] arms use that state: power-of-two-choices replica
//!    selection for GETs, load-aware write fan-out order, adaptive
//!    (`max(base, k×ewma)`) timeouts, and Busy backpressure driven by the
//!    queue depth servers report in their `Busy` responses.
//!
//! Determinism: all request bookkeeping lives in `BTreeMap`/`BTreeSet`
//! (iteration order is data-, not allocation-, dependent), sweeps walk
//! pendings in sequence order, and replica sets come from the ring, which
//! is membership-order independent. The congestion state is itself a pure
//! function of the event history (integer EWMA, no RNG, `BTreeMap`-ordered),
//! so every policy arm replays bit-identically from the same seed.
//!
//! [`DirMsg::Query`]: lastcpu_fabric::DirMsg::Query

use lastcpu_sim::DetHashMap;
use std::collections::{BTreeMap, BTreeSet};

use lastcpu_core::{HostCtx, NetHost};
use lastcpu_fabric::{DirMsg, HashRing};
use lastcpu_net::{Frame, PortId};
use lastcpu_sim::critpath::{
    op_key, STAGE_ROUTER_ACK, STAGE_ROUTER_RECV, STAGE_ROUTER_RESPOND, STAGE_ROUTER_SUB,
};
use lastcpu_sim::{profile, CounterHandle, GaugeHandle, SimDuration, SimTime};

use crate::proto::{KvsRequest, KvsResponse, KvsStatus};

/// Timer token for the periodic tick (directory refresh + timeout sweep).
const TOKEN_TICK: u64 = 1;

/// Sub-request ids the router mints start here. Client-chosen ids are small
/// monotone counters, so the two id spaces can never collide and a frame
/// that decodes as both a request and a response (the wire layouts alias)
/// is disambiguated by its id range.
pub const SUB_ID_BASE: u64 = 1 << 62;

/// Retry/dispatch policy arm — the E10 ablation axis.
///
/// `Static` preserves the original behavior (fixed `sub_timeout`, blind
/// rotation across replicas on retry). The other arms switch on the
/// congestion machinery piecewise so the benefit decomposes:
///
/// - **adaptive** — timeouts stretch to `max(sub_timeout, k × ewma_rtt)` of
///   the sub's target, and `Busy`/`Unavailable` acks defer the re-dispatch
///   by the backpressure window instead of retrying on the very next tick.
/// - **p2c** — GETs pick the less-loaded of two rotation candidates
///   (outstanding subs, then RTT EWMA; ties resolve in rotation order, so
///   the choice stays deterministic), and write fan-out issues subs to the
///   least-loaded replicas first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetryPolicy {
    /// Fixed timeout + blind rotation (the pre-congestion-aware router).
    Static,
    /// Adaptive timeouts + Busy backpressure.
    Adaptive,
    /// Power-of-two-choices GET placement + load-aware write fan-out order.
    P2c,
    /// Both [`RetryPolicy::Adaptive`] and [`RetryPolicy::P2c`] (default).
    #[default]
    AdaptiveP2c,
}

impl RetryPolicy {
    /// Every arm, in ablation order.
    pub const ALL: [RetryPolicy; 4] = [
        RetryPolicy::Static,
        RetryPolicy::Adaptive,
        RetryPolicy::P2c,
        RetryPolicy::AdaptiveP2c,
    ];

    /// The flag/JSON spelling (`"static"`, `"adaptive"`, `"p2c"`,
    /// `"adaptive+p2c"`).
    pub fn name(self) -> &'static str {
        match self {
            RetryPolicy::Static => "static",
            RetryPolicy::Adaptive => "adaptive",
            RetryPolicy::P2c => "p2c",
            RetryPolicy::AdaptiveP2c => "adaptive+p2c",
        }
    }

    /// Parses the [`name`](Self::name) spelling.
    pub fn parse(s: &str) -> Option<RetryPolicy> {
        RetryPolicy::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Whether the adaptive-timeout/backpressure machinery is on.
    fn adaptive(self) -> bool {
        matches!(self, RetryPolicy::Adaptive | RetryPolicy::AdaptiveP2c)
    }

    /// Whether load-aware replica selection is on.
    fn p2c(self) -> bool {
        matches!(self, RetryPolicy::P2c | RetryPolicy::AdaptiveP2c)
    }
}

impl std::fmt::Display for RetryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The local machine's fabric directory port ([`Fabric::directory_port`]).
    ///
    /// [`Fabric::directory_port`]: lastcpu_fabric::Fabric::directory_port
    pub dir_port: PortId,
    /// Directory `kind` of the endpoints to shard over (`"smart-nic"`).
    pub service_kind: String,
    /// Replication factor R (clamped to ≥ 1; effective R is bounded by the
    /// number of live endpoints).
    pub replication: usize,
    /// Virtual nodes per endpoint on the hash ring.
    pub vnodes: u32,
    /// Tick period: directory re-query + pending-request timeout sweep.
    pub tick: SimDuration,
    /// Age after which an unanswered sub-request is re-dispatched. Under an
    /// adaptive policy this is the *floor*; the effective timeout is
    /// `max(sub_timeout, rtt_multiplier × ewma_rtt(target))`.
    pub sub_timeout: SimDuration,
    /// Re-dispatch budget per client request before giving up with
    /// [`KvsStatus::Unavailable`].
    pub max_retries: u32,
    /// Retry/dispatch policy arm.
    pub policy: RetryPolicy,
    /// Adaptive-timeout multiplier `k` in `max(sub_timeout, k × ewma_rtt)`.
    pub rtt_multiplier: u64,
    /// Base re-dispatch deferral after a `Busy`/`Unavailable` ack under an
    /// adaptive policy, scaled up with the queue depth the server reported.
    pub busy_backoff: SimDuration,
    /// Host name (traces, stats).
    pub name: String,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            dir_port: PortId(0),
            service_kind: "smart-nic".into(),
            replication: 1,
            vnodes: 64,
            tick: SimDuration::from_micros(1000),
            sub_timeout: SimDuration::from_micros(5000),
            max_retries: 24,
            policy: RetryPolicy::default(),
            rtt_multiplier: 4,
            busy_backoff: SimDuration::from_micros(2000),
            name: "router".into(),
        }
    }
}

/// Operation class of a pending client request.
enum Op {
    Get,
    Put { value: Vec<u8> },
    Delete,
}

/// One sub-request to one replica.
struct Sub {
    /// Endpoint name (`"m2/nic0"`).
    target: String,
    /// Router-minted id (≥ [`SUB_ID_BASE`]).
    id: u64,
    /// When it was (last) transmitted.
    sent_at: SimTime,
    /// `Some(status)` once answered; `None` while waiting.
    ack: Option<KvsStatus>,
}

/// A client request being served.
struct PendingReq {
    client: PortId,
    client_id: u64,
    key: Vec<u8>,
    op: Op,
    subs: Vec<Sub>,
    /// Re-dispatch count (0 = initial dispatch only).
    attempts: u32,
    /// Marked by acks/timeouts; the sweep re-dispatches marked requests.
    needs_redispatch: bool,
    /// Backpressure: a marked request is not re-dispatched before this
    /// instant (set by `Busy`/`Unavailable` acks under an adaptive policy;
    /// a timeout or membership change overrides it).
    defer_until: Option<SimTime>,
}

/// Per-endpoint congestion state, fed by ack timestamps.
#[derive(Debug, Default, Clone, Copy)]
struct EndpointLoad {
    /// Subs sent and not yet answered (cancellations decrement too).
    outstanding: u32,
    /// Integer EWMA of sub RTT in ns (`new = (7·old + sample) / 8`);
    /// 0 until the first sample.
    ewma_rtt_ns: u64,
    /// The endpoint reported `Busy`; avoid it until this instant.
    busy_until: SimTime,
}

/// Router counters, inspectable without the metrics hub.
#[derive(Debug, Default, Clone, Copy)]
pub struct RouterStats {
    /// Client requests accepted.
    pub requests: u64,
    /// Sub-requests routed to shard endpoints.
    pub hits: u64,
    /// Re-dispatches (timeout, replica loss, or transient rejection).
    pub failovers: u64,
    /// Requests abandoned after `max_retries` re-dispatches.
    pub give_ups: u64,
    /// Acked keys whose primary moved across directory epochs.
    pub rebalance_moves: u64,
    /// Directory epochs observed.
    pub epoch: u64,
    /// Directory replies received (including no-change replies).
    pub dir_replies: u64,
    /// Directory replies that actually installed a change.
    pub dir_installs: u64,
    /// Late replica responses to already-cancelled subs, dropped at triage.
    pub late_acks: u64,
    /// Re-dispatches deferred by `Busy`/`Unavailable` backpressure.
    pub busy_deferrals: u64,
}

/// Pre-registered `fabric.router.*` handles on the machine's metrics hub.
struct HubMetrics {
    requests: CounterHandle,
    hits: CounterHandle,
    failovers: CounterHandle,
    give_ups: CounterHandle,
    rebalance_moves: CounterHandle,
    dir_replies: CounterHandle,
    dir_installs: CounterHandle,
    late_acks: CounterHandle,
    busy_deferrals: CounterHandle,
    epoch: GaugeHandle,
    endpoints: GaugeHandle,
}

impl HubMetrics {
    fn register(hub: &lastcpu_sim::MetricsHub) -> Self {
        HubMetrics {
            requests: hub.counter_handle("fabric.router.requests"),
            hits: hub.counter_handle("fabric.router.hits"),
            failovers: hub.counter_handle("fabric.router.failovers"),
            give_ups: hub.counter_handle("fabric.router.give_ups"),
            rebalance_moves: hub.counter_handle("fabric.router.rebalance_moves"),
            dir_replies: hub.counter_handle("fabric.router.dir_replies"),
            dir_installs: hub.counter_handle("fabric.router.dir_installs"),
            late_acks: hub.counter_handle("fabric.router.late_acks"),
            busy_deferrals: hub.counter_handle("fabric.router.busy_deferrals"),
            epoch: hub.gauge_handle("fabric.router.epoch"),
            endpoints: hub.gauge_handle("fabric.router.endpoints"),
        }
    }
}

/// The shard router host.
pub struct ShardRouterHost {
    config: RouterConfig,
    ring: HashRing,
    /// Endpoint name → port reachable from this machine.
    endpoints: BTreeMap<String, PortId>,
    /// Last directory epoch seen.
    epoch: u64,
    next_sub_id: u64,
    next_seq: u64,
    /// Pending client requests by arrival sequence.
    pending: BTreeMap<u64, PendingReq>,
    /// Sub-request id → pending sequence.
    sub_index: DetHashMap<u64, u64>,
    /// Per-endpoint congestion state (ordered, for deterministic iteration).
    load: BTreeMap<String, EndpointLoad>,
    /// Keys whose PUT the router has acknowledged to a client. The E10
    /// crash scenario audits these against surviving machines' indices.
    acked_puts: BTreeSet<Vec<u8>>,
    stats: RouterStats,
    met: Option<HubMetrics>,
}

impl ShardRouterHost {
    /// Creates a router; attach it to a fabric machine with
    /// [`System::add_host`](lastcpu_core::System::add_host).
    pub fn new(config: RouterConfig) -> Self {
        let vnodes = config.vnodes;
        // Salt the sub-id stream with the machine's directory port so sub
        // ids are unique *rack-wide*, not just per router — the E12
        // critical-path analyzer joins server-side stage marks on them
        // across a merged multi-machine trace. The salt lives in bits
        // 40..56, so ids stay ≥ SUB_ID_BASE and the id-range triage in
        // `on_frame` is unaffected.
        let salt = ((config.dir_port.0 as u64) & 0xFFFF) << 40;
        ShardRouterHost {
            config,
            ring: HashRing::new(vnodes),
            endpoints: BTreeMap::new(),
            epoch: 0,
            next_sub_id: SUB_ID_BASE | salt,
            next_seq: 0,
            pending: BTreeMap::new(),
            sub_index: DetHashMap::default(),
            load: BTreeMap::new(),
            acked_puts: BTreeSet::new(),
            stats: RouterStats::default(),
            met: None,
        }
    }

    /// Counters.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Whether the router has discovered at least one shard endpoint.
    pub fn is_ready(&self) -> bool {
        !self.ring.is_empty()
    }

    /// Shard endpoints currently on the ring, sorted by name.
    pub fn endpoint_names(&self) -> Vec<&str> {
        self.ring.nodes().iter().map(|s| s.as_str()).collect()
    }

    /// Keys whose PUT has been acknowledged to a client (sorted — the set
    /// is a `BTreeSet`, so iteration is deterministic).
    pub fn acked_put_keys(&self) -> &BTreeSet<Vec<u8>> {
        &self.acked_puts
    }

    /// Effective replication factor (configured R, at least 1).
    fn r(&self) -> usize {
        self.config.replication.max(1)
    }

    fn query_directory(&self, ctx: &mut HostCtx<'_>) {
        ctx.net_tx(
            self.config.dir_port,
            DirMsg::Query {
                epoch_hint: self.epoch,
            }
            .encode(),
        );
    }

    /// Installs a directory reply: rebuild the ring, count rebalance moves,
    /// and mark pendings whose in-flight targets vanished for immediate
    /// re-dispatch (machine-crash fail-over path).
    fn install_directory(
        &mut self,
        ctx: &mut HostCtx<'_>,
        epoch: u64,
        eps: Vec<lastcpu_fabric::DirEndpoint>,
    ) {
        // Replies and installs are distinct counters: most replies carry no
        // change (the router re-queries every tick) and return below.
        self.stats.dir_replies += 1;
        if let Some(met) = &self.met {
            met.dir_replies.incr();
        }
        let mut fresh: BTreeMap<String, PortId> = BTreeMap::new();
        for ep in eps {
            if ep.kind == self.config.service_kind {
                fresh.insert(ep.name, PortId(ep.port));
            }
        }
        if fresh == self.endpoints && epoch == self.epoch {
            return;
        }
        self.stats.dir_installs += 1;
        if let Some(met) = &self.met {
            met.dir_installs.incr();
        }
        self.epoch = epoch;
        self.stats.epoch = epoch;
        if let Some(met) = &self.met {
            met.epoch.set(epoch as i64);
            met.endpoints.set(fresh.len() as i64);
        }
        let membership_changed = fresh.keys().ne(self.endpoints.keys());
        if membership_changed {
            let mut ring = HashRing::new(self.config.vnodes);
            for name in fresh.keys() {
                ring.insert(name);
            }
            // Rebalance accounting: how many acknowledged keys changed
            // primary? The consistent-hash property tests bound this by
            // ~K/N per single join/leave.
            let moves = self
                .acked_puts
                .iter()
                .filter(|k| {
                    let old = self.ring.primary(k);
                    let new = ring.primary(k);
                    old.is_some() && new.is_some() && old != new
                })
                .count() as u64;
            if moves > 0 {
                self.stats.rebalance_moves += moves;
                if let Some(met) = &self.met {
                    met.rebalance_moves.add(moves);
                }
            }
            self.ring = ring;
        }
        self.endpoints = fresh;
        // Departed endpoints take their congestion state with them; a
        // re-joining endpoint starts cold (its in-flight subs were
        // cancelled below, so no outstanding count leaks).
        let endpoints = &self.endpoints;
        self.load.retain(|name, _| endpoints.contains_key(name));
        if membership_changed {
            // Fail over in-flight work addressed to departed endpoints now
            // rather than waiting out the sub-timeout.
            let seqs: Vec<u64> = self
                .pending
                .iter()
                .filter(|(_, p)| {
                    p.subs
                        .iter()
                        .any(|s| s.ack.is_none() && !self.endpoints.contains_key(&s.target))
                })
                .map(|(&seq, _)| seq)
                .collect();
            for seq in seqs {
                if let Some(p) = self.pending.get_mut(&seq) {
                    p.needs_redispatch = true;
                }
                self.redispatch(ctx, seq);
            }
        }
    }

    fn mint_sub(&mut self) -> u64 {
        let id = self.next_sub_id;
        self.next_sub_id += 1;
        id
    }

    /// Sends one sub-request to `target`; registers it under `seq`.
    fn issue_sub(&mut self, ctx: &mut HostCtx<'_>, seq: u64, target: String) {
        let port = self.endpoints[&target];
        let id = self.mint_sub();
        self.load.entry(target.clone()).or_default().outstanding += 1;
        let p = self.pending.get_mut(&seq).expect("pending exists");
        let req = match &p.op {
            Op::Get => KvsRequest::Get {
                id,
                key: p.key.clone(),
            },
            Op::Put { value } => KvsRequest::Put {
                id,
                key: p.key.clone(),
                value: value.clone(),
            },
            Op::Delete => KvsRequest::Delete {
                id,
                key: p.key.clone(),
            },
        };
        p.subs.push(Sub {
            target,
            id,
            sent_at: ctx.now,
            ack: None,
        });
        let opk = op_key(p.client.0, p.client_id);
        self.sub_index.insert(id, seq);
        self.stats.hits += 1;
        if let Some(met) = &self.met {
            met.hits.incr();
        }
        ctx.stage(STAGE_ROUTER_SUB, id, opk);
        ctx.net_tx(port, req.encode());
    }

    /// Unregisters one sub: drops the id mapping and, if it was never
    /// answered, releases its outstanding-load slot.
    fn unregister_sub(&mut self, sub: &Sub) {
        self.sub_index.remove(&sub.id);
        if sub.ack.is_none() {
            if let Some(l) = self.load.get_mut(&sub.target) {
                l.outstanding = l.outstanding.saturating_sub(1);
            }
        }
    }

    /// Drops a pending request and unregisters its outstanding subs.
    fn drop_pending(&mut self, seq: u64) -> Option<PendingReq> {
        let p = self.pending.remove(&seq)?;
        for sub in &p.subs {
            self.unregister_sub(sub);
        }
        Some(p)
    }

    /// Folds one ack RTT sample into the target's congestion state.
    fn record_rtt(&mut self, target: &str, rtt: SimDuration) {
        let l = self.load.entry(target.to_string()).or_default();
        l.outstanding = l.outstanding.saturating_sub(1);
        let sample = rtt.as_nanos();
        l.ewma_rtt_ns = if l.ewma_rtt_ns == 0 {
            sample
        } else {
            (7 * l.ewma_rtt_ns + sample) / 8
        };
    }

    /// Load score for replica selection: busy endpoints last, then fewest
    /// outstanding subs, then lowest RTT estimate. Purely a function of
    /// recorded acks — no randomness, so selection replays exactly.
    fn load_score(&self, target: &str, now: SimTime) -> (bool, u32, u64) {
        let l = self.load.get(target).copied().unwrap_or_default();
        (l.busy_until > now, l.outstanding, l.ewma_rtt_ns)
    }

    /// Picks the GET target among `reps` for the given attempt.
    ///
    /// All arms skip `avoid` — the targets of subs the *current* re-dispatch
    /// just cancelled unacked. Without that, the rotation
    /// `reps[attempts % len]` can land back on the endpoint that just timed
    /// out when a directory epoch reordered the replica list (the original
    /// retry bug). If every replica is excluded (R = 1), the rotation pick
    /// stands — there is nowhere else to go.
    fn choose_get_target(
        &self,
        reps: &[String],
        attempts: u32,
        avoid: &BTreeSet<String>,
        now: SimTime,
    ) -> String {
        let n = reps.len();
        let start = attempts as usize % n;
        let rotation: Vec<&String> = (0..n).map(|i| &reps[(start + i) % n]).collect();
        let fresh: Vec<&String> = rotation
            .iter()
            .copied()
            .filter(|t| !avoid.contains(*t))
            .collect();
        let cands = if fresh.is_empty() { rotation } else { fresh };
        if self.config.policy.p2c() && cands.len() >= 2 {
            // Power of two choices over the first two rotation candidates;
            // ties keep the rotation order (deterministic).
            let (a, b) = (cands[0], cands[1]);
            if self.load_score(b, now) < self.load_score(a, now) {
                return b.clone();
            }
            return a.clone();
        }
        if self.config.policy.adaptive() {
            // Skip endpoints inside their backpressure window when a
            // non-busy alternative exists.
            if let Some(t) = cands.iter().find(|t| !self.load_score(t, now).0) {
                return (*t).clone();
            }
        }
        cands[0].clone()
    }

    fn respond(ctx: &mut HostCtx<'_>, p: &PendingReq, status: KvsStatus, value: Vec<u8>) {
        ctx.stage(
            STAGE_ROUTER_RESPOND,
            op_key(p.client.0, p.client_id),
            status as u64,
        );
        ctx.net_tx(
            p.client,
            KvsResponse {
                id: p.client_id,
                status,
                value,
            }
            .encode(),
        );
    }

    /// (Re-)dispatches `seq` against the current replica set. Initial
    /// dispatch and fail-over share this path; only the latter counts as a
    /// fail-over and burns retry budget.
    fn redispatch(&mut self, ctx: &mut HostCtx<'_>, seq: u64) {
        let r = self.r();
        let max_retries = self.config.max_retries;
        // Phase 1: budget bookkeeping (short borrow of the pending entry).
        let (key, initial, over_budget) = {
            let Some(p) = self.pending.get_mut(&seq) else {
                return;
            };
            if !p.needs_redispatch {
                return;
            }
            p.needs_redispatch = false;
            p.defer_until = None;
            let initial = p.subs.is_empty();
            if !initial {
                p.attempts += 1;
            }
            (p.key.clone(), initial, p.attempts > max_retries)
        };
        if !initial {
            self.stats.failovers += 1;
            if let Some(met) = &self.met {
                met.failovers.incr();
            }
        }
        if over_budget {
            self.stats.give_ups += 1;
            if let Some(met) = &self.met {
                met.give_ups.incr();
            }
            let p = self.drop_pending(seq).expect("pending exists");
            Self::respond(ctx, &p, KvsStatus::Unavailable, vec![]);
            return;
        }
        let reps: Vec<String> = self
            .ring
            .replicas(&key, r)
            .into_iter()
            .map(String::from)
            .collect();
        if reps.is_empty() {
            // No endpoints at all (rack-wide outage); keep the request
            // parked. The next sweep retries and the budget bounds it.
            self.pending
                .get_mut(&seq)
                .expect("pending")
                .needs_redispatch = true;
            return;
        }
        // Phase 2: cancel stale subs (GET: everything unacked; writes:
        // everything but successful acks from targets still in the replica
        // set), remembering what was just cancelled.
        let is_get = matches!(self.pending[&seq].op, Op::Get);
        let (cancelled, attempts) = {
            let p = self.pending.get_mut(&seq).expect("pending exists");
            let keep = |s: &Sub| {
                if is_get {
                    s.ack.is_some()
                } else {
                    matches!(s.ack, Some(KvsStatus::Ok) | Some(KvsStatus::NotFound))
                        && reps.contains(&s.target)
                }
            };
            let mut cancelled = Vec::new();
            let mut kept = Vec::new();
            for s in p.subs.drain(..) {
                if keep(&s) {
                    kept.push(s);
                } else {
                    cancelled.push(s);
                }
            }
            p.subs = kept;
            (cancelled, p.attempts)
        };
        // Targets whose sub this very re-dispatch cancelled while unacked:
        // the retry must not re-target them (they just timed out or
        // vanished), whatever the rotation arithmetic says.
        let avoid: BTreeSet<String> = cancelled
            .iter()
            .filter(|s| s.ack.is_none())
            .map(|s| s.target.clone())
            .collect();
        for s in &cancelled {
            self.unregister_sub(s);
        }
        // Phase 3: pick targets and issue.
        let to_issue: Vec<String> = if is_get {
            vec![self.choose_get_target(&reps, attempts, &avoid, ctx.now)]
        } else {
            let p = &self.pending[&seq];
            let mut missing: Vec<String> = reps
                .iter()
                .filter(|rep| !p.subs.iter().any(|s| &s.target == *rep))
                .cloned()
                .collect();
            if self.config.policy.p2c() {
                // Load-aware fan-out order: least-loaded replicas get their
                // subs (and thus uplink slots) first. Name-tiebreak keeps
                // the order deterministic.
                missing.sort_by(|a, b| {
                    self.load_score(a, ctx.now)
                        .cmp(&self.load_score(b, ctx.now))
                        .then_with(|| a.cmp(b))
                });
            }
            missing
        };
        for target in to_issue {
            self.issue_sub(ctx, seq, target);
        }
        if !is_get {
            self.check_write_done(ctx, seq);
        }
    }

    /// Completes a PUT/DELETE if every current replica has acknowledged.
    fn check_write_done(&mut self, ctx: &mut HostCtx<'_>, seq: u64) {
        let Some(p) = self.pending.get(&seq) else {
            return;
        };
        let reps = self.ring.replicas(&p.key, self.r());
        if reps.is_empty() {
            return;
        }
        let covered = reps.iter().all(|r| {
            p.subs.iter().any(|s| {
                s.target == *r && matches!(s.ack, Some(KvsStatus::Ok | KvsStatus::NotFound))
            })
        });
        if !covered {
            return;
        }
        let any_ok = p.subs.iter().any(|s| s.ack == Some(KvsStatus::Ok));
        let p = self.drop_pending(seq).expect("pending exists");
        match p.op {
            Op::Put { .. } => {
                self.acked_puts.insert(p.key.clone());
                Self::respond(ctx, &p, KvsStatus::Ok, vec![]);
            }
            Op::Delete => {
                self.acked_puts.remove(&p.key);
                // NotFound on every replica is an honest miss; Ok anywhere
                // means the tombstone landed.
                let status = if any_ok {
                    KvsStatus::Ok
                } else {
                    KvsStatus::NotFound
                };
                Self::respond(ctx, &p, status, vec![]);
            }
            Op::Get => unreachable!("check_write_done is write-only"),
        }
    }

    /// A replica answered sub-request `id`.
    fn on_ack(&mut self, ctx: &mut HostCtx<'_>, resp: KvsResponse) {
        let Some(seq) = self.sub_index.remove(&resp.id) else {
            return; // late answer to a cancelled sub
        };
        let (is_get, target, rtt, first_ack) = {
            let Some(p) = self.pending.get_mut(&seq) else {
                return;
            };
            let Some(sub) = p.subs.iter_mut().find(|s| s.id == resp.id) else {
                return;
            };
            let first_ack = sub.ack.is_none();
            sub.ack = Some(resp.status);
            ctx.stage(STAGE_ROUTER_ACK, resp.id, op_key(p.client.0, p.client_id));
            (
                matches!(p.op, Op::Get),
                sub.target.clone(),
                ctx.now.since(sub.sent_at),
                first_ack,
            )
        };
        if first_ack {
            self.record_rtt(&target, rtt);
        }
        match resp.status {
            KvsStatus::Ok | KvsStatus::NotFound if is_get => {
                let p = self.drop_pending(seq).expect("pending exists");
                Self::respond(ctx, &p, resp.status, resp.value);
            }
            KvsStatus::Error => {
                // Terminal server-side failure; propagate.
                let p = self.drop_pending(seq).expect("pending exists");
                Self::respond(ctx, &p, KvsStatus::Error, vec![]);
            }
            KvsStatus::Busy | KvsStatus::Unavailable => {
                // Transient (overload / mid-recovery). Statically, retry on
                // the next sweep. Under an adaptive policy the response is
                // backpressure: mark the endpoint busy for a window scaled
                // by the queue depth it reported and defer the re-dispatch
                // until the window passes, instead of hammering it tickwise.
                let defer = if self.config.policy.adaptive() {
                    let depth = if resp.status == KvsStatus::Busy {
                        resp.busy_depth().unwrap_or(0)
                    } else {
                        0
                    };
                    let scale = 1 + (u64::from(depth) / 64).min(7);
                    let until = ctx.now + self.config.busy_backoff.saturating_mul(scale);
                    let l = self.load.entry(target.clone()).or_default();
                    if until > l.busy_until {
                        l.busy_until = until;
                    }
                    self.stats.busy_deferrals += 1;
                    if let Some(met) = &self.met {
                        met.busy_deferrals.incr();
                    }
                    Some(until)
                } else {
                    None
                };
                if let Some(p) = self.pending.get_mut(&seq) {
                    p.needs_redispatch = true;
                    if let Some(until) = defer {
                        p.defer_until = Some(p.defer_until.map_or(until, |d| d.max(until)));
                    }
                }
            }
            _ => self.check_write_done(ctx, seq),
        }
    }

    /// A client request arrived.
    fn on_client(&mut self, ctx: &mut HostCtx<'_>, src: PortId, req: KvsRequest) {
        self.stats.requests += 1;
        if let Some(met) = &self.met {
            met.requests.incr();
        }
        if self.ring.is_empty() {
            // Rack not discovered yet: tell the client to back off, same as
            // a booting single server would.
            ctx.net_tx(
                src,
                KvsResponse {
                    id: req.id(),
                    status: KvsStatus::Busy,
                    value: vec![],
                }
                .encode(),
            );
            return;
        }
        let (client_id, key, op) = match req {
            KvsRequest::Get { id, key } => (id, key, Op::Get),
            KvsRequest::Put { id, key, value } => (id, key, Op::Put { value }),
            KvsRequest::Delete { id, key } => (id, key, Op::Delete),
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        ctx.stage(STAGE_ROUTER_RECV, op_key(src.0, client_id), seq);
        self.pending.insert(
            seq,
            PendingReq {
                client: src,
                client_id,
                key,
                op,
                subs: Vec::new(),
                attempts: 0,
                needs_redispatch: true,
                defer_until: None,
            },
        );
        self.redispatch(ctx, seq);
    }

    /// Periodic sweep: re-query the directory, re-dispatch timed-out or
    /// transiently rejected sub-requests.
    fn sweep(&mut self, ctx: &mut HostCtx<'_>) {
        self.query_directory(ctx);
        let now = ctx.now;
        let base = self.config.sub_timeout;
        let adaptive = self.config.policy.adaptive();
        let mult = self.config.rtt_multiplier;
        let load = &self.load;
        let seqs: Vec<u64> = self
            .pending
            .iter_mut()
            .filter_map(|(&seq, p)| {
                // Exponential backoff: each fail-over doubles the patience
                // (capped at 32x). Without this, a loaded rack whose RTT
                // momentarily exceeds the base timeout melts down: every
                // sweep cancels in-flight subs and reissues them, which adds
                // load, which lengthens RTT, which times out more subs.
                let backoff = 1u64 << p.attempts.min(5);
                let timed_out = p.subs.iter().any(|s| {
                    if s.ack.is_some() {
                        return false;
                    }
                    // Adaptive arm: a loaded endpoint earns patience
                    // proportional to its measured RTT, so in-flight work
                    // that is *about to complete* is not cancelled just
                    // because the rack is warm. The static floor still
                    // bounds cold endpoints.
                    let mut timeout = base;
                    if adaptive {
                        if let Some(l) = load.get(&s.target) {
                            if l.ewma_rtt_ns > 0 {
                                let est =
                                    SimDuration::from_nanos(l.ewma_rtt_ns.saturating_mul(mult));
                                if est > timeout {
                                    timeout = est;
                                }
                            }
                        }
                    }
                    now.since(s.sent_at) >= timeout.saturating_mul(backoff)
                });
                if timed_out {
                    // A real timeout overrides any backpressure deferral.
                    p.needs_redispatch = true;
                    p.defer_until = None;
                }
                if p.needs_redispatch && !p.defer_until.is_some_and(|d| now < d) {
                    Some(seq)
                } else {
                    None
                }
            })
            .collect();
        for seq in seqs {
            self.redispatch(ctx, seq);
        }
    }
}

impl NetHost for ShardRouterHost {
    fn snapshot_state(&self, w: &mut lastcpu_snap::SnapWriter) -> lastcpu_snap::Result<()> {
        lastcpu_snap::Snapshot::snapshot(self, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        lastcpu_snap::Restore::restore(self, r)
    }

    fn name(&self) -> &str {
        &self.config.name
    }

    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.met = Some(HubMetrics::register(ctx.stats));
        self.query_directory(ctx);
        ctx.set_timer(self.config.tick, TOKEN_TICK);
    }

    fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: Frame) {
        let _prof = profile::span("kvs.router.dispatch");
        // 1. Directory replies (magic-tagged, and only ever from the
        //    directory port).
        if frame.src == self.config.dir_port && DirMsg::sniff(&frame.payload) {
            if let Ok(DirMsg::Reply { epoch, endpoints }) = DirMsg::decode(&frame.payload) {
                self.install_directory(ctx, epoch, endpoints);
            }
            return;
        }
        // 2. Replica acks: the request/response wire layouts alias, so a
        //    response is recognized by its id being in the router-minted
        //    range. Anything in that range whose sub is gone is a *late*
        //    answer to a cancelled sub and must be dropped here: letting it
        //    fall through to the request parse would mint a ghost pending
        //    request addressed back at a replica port (a NotFound response
        //    re-parses as a valid Get request).
        if let Some(resp) = KvsResponse::decode(&frame.payload) {
            if resp.id >= SUB_ID_BASE {
                if self.sub_index.contains_key(&resp.id) {
                    self.on_ack(ctx, resp);
                } else {
                    self.stats.late_acks += 1;
                    if let Some(met) = &self.met {
                        met.late_acks.incr();
                    }
                }
                return;
            }
        }
        // 3. Client requests.
        if let Some(req) = KvsRequest::decode(&frame.payload) {
            self.on_client(ctx, frame.src, req);
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, token: u64) {
        if token != TOKEN_TICK {
            return;
        }
        self.sweep(ctx);
        ctx.set_timer(self.config.tick, TOKEN_TICK);
    }
}

impl RetryPolicy {
    /// Stable one-byte tag for snapshot sections.
    pub fn snap_encode(self) -> u8 {
        match self {
            RetryPolicy::Static => 0,
            RetryPolicy::Adaptive => 1,
            RetryPolicy::P2c => 2,
            RetryPolicy::AdaptiveP2c => 3,
        }
    }

    /// Inverse of [`RetryPolicy::snap_encode`].
    pub fn snap_decode(v: u8) -> Option<RetryPolicy> {
        Some(match v {
            0 => RetryPolicy::Static,
            1 => RetryPolicy::Adaptive,
            2 => RetryPolicy::P2c,
            3 => RetryPolicy::AdaptiveP2c,
            _ => return None,
        })
    }
}

impl Op {
    fn snap_encode(&self, w: &mut lastcpu_snap::SnapWriter) {
        match self {
            Op::Get => w.put_u8(0),
            Op::Put { value } => {
                w.put_u8(1);
                w.put_bytes(value);
            }
            Op::Delete => w.put_u8(2),
        }
    }

    fn snap_decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<Op> {
        Ok(match r.u8()? {
            0 => Op::Get,
            1 => Op::Put { value: r.bytes()? },
            2 => Op::Delete,
            t => return Err(r.corrupt(format!("unknown router op tag {t}"))),
        })
    }
}

impl lastcpu_snap::Snapshot for ShardRouterHost {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u32(self.config.dir_port.0);
        w.put_str(&self.config.service_kind);
        w.put_len(self.config.replication);
        w.put_u32(self.config.vnodes);
        w.put_u64(self.config.tick.as_nanos());
        w.put_u64(self.config.sub_timeout.as_nanos());
        w.put_u32(self.config.max_retries);
        w.put_u8(self.config.policy.snap_encode());
        w.put_u64(self.config.rtt_multiplier);
        w.put_u64(self.config.busy_backoff.as_nanos());
        w.put_str(&self.config.name);
        self.ring.snapshot(w);
        w.put_len(self.endpoints.len());
        for (name, port) in &self.endpoints {
            w.put_str(name);
            w.put_u32(port.0);
        }
        w.put_u64(self.epoch);
        w.put_u64(self.next_sub_id);
        w.put_u64(self.next_seq);
        w.put_len(self.pending.len());
        for (seq, p) in &self.pending {
            w.put_u64(*seq);
            w.put_u32(p.client.0);
            w.put_u64(p.client_id);
            w.put_bytes(&p.key);
            p.op.snap_encode(w);
            w.put_len(p.subs.len());
            for s in &p.subs {
                w.put_str(&s.target);
                w.put_u64(s.id);
                w.put_u64(s.sent_at.as_nanos());
                w.put_opt(s.ack.as_ref(), |w, a| w.put_u8(a.snap_encode()));
            }
            w.put_u32(p.attempts);
            w.put_bool(p.needs_redispatch);
            w.put_opt(p.defer_until.as_ref(), |w, t| w.put_u64(t.as_nanos()));
        }
        // sub_index is derivable from pending, but serialized so restore
        // needs no rebuild pass and verification covers it. Sorted: it is
        // an unordered map.
        let mut subs: Vec<u64> = self.sub_index.keys().copied().collect();
        subs.sort_unstable();
        w.put_len(subs.len());
        for id in subs {
            w.put_u64(id);
            w.put_u64(self.sub_index[&id]);
        }
        w.put_len(self.load.len());
        for (name, l) in &self.load {
            w.put_str(name);
            w.put_u32(l.outstanding);
            w.put_u64(l.ewma_rtt_ns);
            w.put_u64(l.busy_until.as_nanos());
        }
        w.put_len(self.acked_puts.len());
        for k in &self.acked_puts {
            w.put_bytes(k);
        }
        w.put_u64(self.stats.requests);
        w.put_u64(self.stats.hits);
        w.put_u64(self.stats.failovers);
        w.put_u64(self.stats.give_ups);
        w.put_u64(self.stats.rebalance_moves);
        w.put_u64(self.stats.epoch);
        w.put_u64(self.stats.dir_replies);
        w.put_u64(self.stats.dir_installs);
        w.put_u64(self.stats.late_acks);
        w.put_u64(self.stats.busy_deferrals);
        // Excluded: `met` (live MetricsHub handles; the hub snapshots its
        // own key space).
    }
}

impl lastcpu_snap::Restore for ShardRouterHost {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.config.dir_port = PortId(r.u32()?);
        self.config.service_kind = r.str()?;
        self.config.replication = r.len()?;
        self.config.vnodes = r.u32()?;
        self.config.tick = SimDuration::from_nanos(r.u64()?);
        self.config.sub_timeout = SimDuration::from_nanos(r.u64()?);
        self.config.max_retries = r.u32()?;
        let tag = r.u8()?;
        self.config.policy = RetryPolicy::snap_decode(tag)
            .ok_or_else(|| r.corrupt(format!("unknown retry policy tag {tag}")))?;
        self.config.rtt_multiplier = r.u64()?;
        self.config.busy_backoff = SimDuration::from_nanos(r.u64()?);
        self.config.name = r.str()?;
        self.ring.restore(r)?;
        let n = r.len()?;
        self.endpoints = BTreeMap::new();
        for _ in 0..n {
            let name = r.str()?;
            let port = PortId(r.u32()?);
            self.endpoints.insert(name, port);
        }
        self.epoch = r.u64()?;
        self.next_sub_id = r.u64()?;
        self.next_seq = r.u64()?;
        let n = r.len()?;
        self.pending = BTreeMap::new();
        for _ in 0..n {
            let seq = r.u64()?;
            let client = PortId(r.u32()?);
            let client_id = r.u64()?;
            let key = r.bytes()?;
            let op = Op::snap_decode(r)?;
            let ns = r.len()?;
            let mut subs = Vec::with_capacity(ns);
            for _ in 0..ns {
                subs.push(Sub {
                    target: r.str()?,
                    id: r.u64()?,
                    sent_at: SimTime::from_nanos(r.u64()?),
                    ack: r.opt(|r| Ok(KvsStatus::snap_decode(r.u8()?)))?,
                });
            }
            let attempts = r.u32()?;
            let needs_redispatch = r.bool()?;
            let defer_until = r.opt(|r| Ok(SimTime::from_nanos(r.u64()?)))?;
            self.pending.insert(
                seq,
                PendingReq {
                    client,
                    client_id,
                    key,
                    op,
                    subs,
                    attempts,
                    needs_redispatch,
                    defer_until,
                },
            );
        }
        let n = r.len()?;
        self.sub_index = DetHashMap::default();
        for _ in 0..n {
            let id = r.u64()?;
            let seq = r.u64()?;
            self.sub_index.insert(id, seq);
        }
        let n = r.len()?;
        self.load = BTreeMap::new();
        for _ in 0..n {
            let name = r.str()?;
            let l = EndpointLoad {
                outstanding: r.u32()?,
                ewma_rtt_ns: r.u64()?,
                busy_until: SimTime::from_nanos(r.u64()?),
            };
            self.load.insert(name, l);
        }
        let n = r.len()?;
        self.acked_puts = BTreeSet::new();
        for _ in 0..n {
            self.acked_puts.insert(r.bytes()?);
        }
        self.stats.requests = r.u64()?;
        self.stats.hits = r.u64()?;
        self.stats.failovers = r.u64()?;
        self.stats.give_ups = r.u64()?;
        self.stats.rebalance_moves = r.u64()?;
        self.stats.epoch = r.u64()?;
        self.stats.dir_replies = r.u64()?;
        self.stats.dir_installs = r.u64()?;
        self.stats.late_acks = r.u64()?;
        self.stats.busy_deferrals = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastcpu_core::HostAction;
    use lastcpu_fabric::DirEndpoint;
    use lastcpu_sim::{CorrId, DetRng, MetricsHub};

    #[test]
    fn sub_id_base_clears_client_id_space() {
        // Client ids count up from 1; the router mints from 1 << 62. A
        // century of simulated requests cannot bridge the gap.
        const { assert!(SUB_ID_BASE > u64::MAX / 4) }
    }

    #[test]
    fn fresh_router_is_not_ready() {
        let r = ShardRouterHost::new(RouterConfig::default());
        assert!(!r.is_ready());
        assert!(r.endpoint_names().is_empty());
        assert_eq!(r.stats().requests, 0);
        assert!(r.acked_put_keys().is_empty());
    }

    #[test]
    fn retry_policy_names_round_trip() {
        for p in RetryPolicy::ALL {
            assert_eq!(RetryPolicy::parse(p.name()), Some(p));
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(RetryPolicy::parse("bogus"), None);
        assert_eq!(RetryPolicy::default(), RetryPolicy::AdaptiveP2c);
    }

    // --- direct-drive harness -------------------------------------------

    const DIR_PORT: PortId = PortId(900);
    const ROUTER_PORT: PortId = PortId(1);
    const CLIENT_PORT: PortId = PortId(5);

    struct Harness {
        router: ShardRouterHost,
        hub: MetricsHub,
        rng: DetRng,
        now: SimTime,
        epoch: u64,
    }

    impl Harness {
        fn new(config: RouterConfig) -> Harness {
            let mut h = Harness {
                router: ShardRouterHost::new(RouterConfig {
                    dir_port: DIR_PORT,
                    ..config
                }),
                hub: MetricsHub::new(),
                rng: DetRng::new(7),
                now: SimTime::ZERO,
                epoch: 0,
            };
            let mut ctx = HostCtx::new(h.now, ROUTER_PORT, &h.hub, &mut h.rng, CorrId::NONE);
            h.router.on_start(&mut ctx);
            ctx.finish();
            h
        }

        fn frame(&mut self, src: PortId, payload: Vec<u8>) -> Vec<HostAction> {
            let frame = Frame::unicast(src, ROUTER_PORT, payload);
            let mut ctx = HostCtx::new(
                self.now,
                ROUTER_PORT,
                &self.hub,
                &mut self.rng,
                CorrId::NONE,
            );
            self.router.on_frame(&mut ctx, frame);
            ctx.finish()
        }

        /// Advances time and fires the periodic sweep.
        fn tick_after(&mut self, dt: SimDuration) -> Vec<HostAction> {
            self.now += dt;
            let mut ctx = HostCtx::new(
                self.now,
                ROUTER_PORT,
                &self.hub,
                &mut self.rng,
                CorrId::NONE,
            );
            self.router.on_timer(&mut ctx, TOKEN_TICK);
            ctx.finish()
        }

        /// Feeds a directory reply listing `eps` as smart-nic endpoints.
        fn install(&mut self, eps: &[(&str, u32)]) {
            self.epoch += 1;
            let reply = DirMsg::Reply {
                epoch: self.epoch,
                endpoints: eps
                    .iter()
                    .map(|&(name, port)| DirEndpoint {
                        name: name.into(),
                        kind: "smart-nic".into(),
                        machine: 0,
                        port,
                    })
                    .collect(),
            };
            self.frame(DIR_PORT, reply.encode());
        }
    }

    /// KVS sub-requests (not directory queries) transmitted in `actions`,
    /// as `(dst, request)` pairs.
    fn subs_sent(actions: &[HostAction]) -> Vec<(PortId, KvsRequest)> {
        actions
            .iter()
            .filter_map(|a| match a {
                HostAction::NetTx(f) => KvsRequest::decode(&f.payload).map(|r| (f.dst, r)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn late_response_is_dropped_not_reparsed() {
        let mut h = Harness::new(RouterConfig::default());
        h.install(&[("m0/nic0", 10)]);
        // A GET in flight, so the router is live and has one real pending.
        let acts = h.frame(
            CLIENT_PORT,
            KvsRequest::Get {
                id: 1,
                key: b"k".to_vec(),
            }
            .encode(),
        );
        assert_eq!(subs_sent(&acts).len(), 1);
        assert_eq!(h.router.stats().requests, 1);

        // A late NotFound response to a sub the router no longer tracks.
        // Its wire bytes alias a *valid* Get request — the ghost-request
        // hazard this test pins down.
        let late = KvsResponse {
            id: SUB_ID_BASE | 0xDEAD,
            status: KvsStatus::NotFound,
            value: b"ghost-key".to_vec(),
        };
        let payload = late.encode();
        assert!(
            KvsRequest::decode(&payload).is_some(),
            "test premise: the late response must alias a request"
        );
        let acts = h.frame(PortId(10), payload);
        assert!(acts.is_empty(), "late ack must be dropped, got {acts:?}");
        assert_eq!(
            h.router.stats().requests,
            1,
            "no ghost pending request minted"
        );
        assert_eq!(h.router.stats().late_acks, 1);
        assert_eq!(h.hub.counter("fabric.router.late_acks"), 1);
    }

    #[test]
    fn dir_replies_and_installs_count_differently() {
        let mut h = Harness::new(RouterConfig::default());
        h.install(&[("m0/nic0", 10)]);
        assert_eq!(h.router.stats().dir_replies, 1);
        assert_eq!(h.router.stats().dir_installs, 1);
        // The same directory again, same epoch: a reply, not an install.
        let reply = DirMsg::Reply {
            epoch: h.epoch,
            endpoints: vec![DirEndpoint {
                name: "m0/nic0".into(),
                kind: "smart-nic".into(),
                machine: 0,
                port: 10,
            }],
        };
        h.frame(DIR_PORT, reply.encode());
        assert_eq!(h.router.stats().dir_replies, 2);
        assert_eq!(h.router.stats().dir_installs, 1, "no-change reply counted");
        // Epoch bump with identical membership still installs (epoch moves).
        h.install(&[("m0/nic0", 10)]);
        assert_eq!(h.router.stats().dir_replies, 3);
        assert_eq!(h.router.stats().dir_installs, 2);
        assert_eq!(h.hub.counter("fabric.router.dir_replies"), 3);
        assert_eq!(h.hub.counter("fabric.router.dir_installs"), 2);
    }

    #[test]
    fn get_retry_skips_the_just_timed_out_target() {
        // Reproduces the rotation bug: a directory epoch reorders the
        // replica list between dispatch and retry, so the blind
        // `reps[attempts % len]` lands back on the endpoint that just timed
        // out. Static policy — the skip is a bugfix on every arm.
        let cfg = RouterConfig {
            replication: 2,
            policy: RetryPolicy::Static,
            ..RouterConfig::default()
        };
        // Find a key whose replica list under {A,B} starts with A, and
        // under {A,B,C} is exactly [C, A] — then attempt 1 of the rotation
        // picks index 1 = A, the target that just timed out.
        let ring_of = |names: &[&str]| {
            let mut ring = HashRing::new(cfg.vnodes);
            for n in names {
                ring.insert(n);
            }
            ring
        };
        let (a, b, c) = ("m0/nic0", "m1/nic0", "m2/nic0");
        let two = ring_of(&[a, b]);
        let three = ring_of(&[a, b, c]);
        let key = (0u32..10_000)
            .map(|i| format!("key{i}").into_bytes())
            .find(|k| two.replicas(k, 2) == vec![a, b] && three.replicas(k, 2) == vec![c, a])
            .expect("such a key exists");

        let mut h = Harness::new(cfg);
        h.install(&[(a, 10), (b, 11)]);
        let acts = h.frame(
            CLIENT_PORT,
            KvsRequest::Get {
                id: 1,
                key: key.clone(),
            }
            .encode(),
        );
        assert_eq!(subs_sent(&acts), {
            let sent = subs_sent(&acts);
            assert_eq!(sent[0].0, PortId(10), "initial dispatch goes to A");
            sent
        });
        // C joins; A stays alive so nothing is force-redispatched.
        h.install(&[(a, 10), (b, 11), (c, 12)]);
        // Let the sub to A time out (base 5 ms, attempts 0) and sweep.
        let acts = h.tick_after(SimDuration::from_micros(6000));
        let sent = subs_sent(&acts);
        assert_eq!(sent.len(), 1, "one retry issued");
        assert_ne!(sent[0].0, PortId(10), "retry must not re-target A");
        assert_eq!(sent[0].0, PortId(12), "rotation skip lands on C");
        assert_eq!(h.router.stats().failovers, 1);
    }

    #[test]
    fn busy_ack_defers_redispatch_under_adaptive_policy() {
        let cfg = RouterConfig {
            policy: RetryPolicy::Adaptive,
            ..RouterConfig::default()
        };
        let tick = cfg.tick;
        let backoff = cfg.busy_backoff;
        assert!(
            backoff > tick,
            "test relies on the deferral spanning a tick"
        );
        let mut h = Harness::new(cfg);
        h.install(&[("m0/nic0", 10)]);
        let acts = h.frame(
            CLIENT_PORT,
            KvsRequest::Put {
                id: 1,
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            }
            .encode(),
        );
        let sent = subs_sent(&acts);
        assert_eq!(sent.len(), 1);
        let sub_id = sent[0].1.id();

        // The server reports Busy with a shallow queue.
        h.frame(PortId(10), KvsResponse::busy(sub_id, 3).encode());
        assert_eq!(h.router.stats().busy_deferrals, 1);

        // Next tick falls inside the backpressure window: no reissue.
        let acts = h.tick_after(tick);
        assert!(
            subs_sent(&acts).is_empty(),
            "redispatch deferred while the endpoint is busy"
        );
        assert_eq!(h.router.stats().failovers, 0);

        // Once the window passes, the sweep reissues exactly once.
        let acts = h.tick_after(backoff);
        assert_eq!(subs_sent(&acts).len(), 1);
        assert_eq!(h.router.stats().failovers, 1);
        assert_eq!(h.router.stats().give_ups, 0);
    }

    #[test]
    fn busy_storm_stays_bounded_without_give_ups() {
        // A server under depth pressure answers Busy to every sub. The
        // adaptive arm must keep retrying at the backpressure cadence —
        // bounded fail-overs, no give-ups — instead of burning the whole
        // retry budget tick by tick.
        let cfg = RouterConfig {
            policy: RetryPolicy::Adaptive,
            ..RouterConfig::default()
        };
        let tick = cfg.tick;
        let backoff = cfg.busy_backoff;
        let mut h = Harness::new(cfg);
        h.install(&[("m0/nic0", 10)]);
        let acts = h.frame(
            CLIENT_PORT,
            KvsRequest::Put {
                id: 1,
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            }
            .encode(),
        );
        let mut last_sub = subs_sent(&acts)[0].1.id();

        let storm_rounds = 10;
        for _ in 0..storm_rounds {
            // Deep queue: depth 512 stretches the deferral window.
            h.frame(PortId(10), KvsResponse::busy(last_sub, 512).encode());
            // Sweep every tick until the deferral expires and a reissue
            // appears; the window is depth-scaled, so allow several ticks.
            let mut reissued = None;
            for _ in 0..64 {
                let acts = h.tick_after(tick);
                let sent = subs_sent(&acts);
                if !sent.is_empty() {
                    reissued = Some(sent[0].1.id());
                    break;
                }
            }
            last_sub = reissued.expect("storm retry reissued within the window");
        }
        // Finally the server drains and accepts.
        h.frame(
            PortId(10),
            KvsResponse {
                id: last_sub,
                status: KvsStatus::Ok,
                value: vec![],
            }
            .encode(),
        );
        let st = h.router.stats();
        assert_eq!(st.give_ups, 0, "backpressure must not exhaust the budget");
        assert_eq!(st.failovers, storm_rounds, "one fail-over per storm round");
        assert_eq!(st.busy_deferrals, storm_rounds);
        assert!(h.router.acked_put_keys().contains(&b"k".to_vec()));
        let _ = backoff;
    }

    #[test]
    fn p2c_picks_the_less_loaded_replica() {
        let cfg = RouterConfig {
            replication: 2,
            policy: RetryPolicy::P2c,
            ..RouterConfig::default()
        };
        let mut h = Harness::new(cfg);
        h.install(&[("m0/nic0", 10), ("m1/nic0", 11)]);
        // First GET: both replicas idle, tie keeps rotation order.
        let acts = h.frame(
            CLIENT_PORT,
            KvsRequest::Get {
                id: 1,
                key: b"k".to_vec(),
            }
            .encode(),
        );
        let first = subs_sent(&acts)[0].0;
        // Second GET for the same key while the first sub is outstanding:
        // p2c must pick the other replica.
        let acts = h.frame(
            CLIENT_PORT,
            KvsRequest::Get {
                id: 2,
                key: b"k".to_vec(),
            }
            .encode(),
        );
        let second = subs_sent(&acts)[0].0;
        assert_ne!(first, second, "p2c spreads load across the replica pair");
    }
}
