//! The client↔KVS network protocol.
//!
//! One request or response per frame; requests carry a client-chosen id the
//! response echoes, so clients can pipeline.

use lastcpu_bus::wire::{WireReader, WireWriter};

/// A KVS request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvsRequest {
    /// Fetch a value.
    Get {
        /// Request id echoed in the response.
        id: u64,
        /// The key.
        key: Vec<u8>,
    },
    /// Insert or update a value.
    Put {
        /// Request id echoed in the response.
        id: u64,
        /// The key.
        key: Vec<u8>,
        /// The value.
        value: Vec<u8>,
    },
    /// Remove a key.
    Delete {
        /// Request id echoed in the response.
        id: u64,
        /// The key.
        key: Vec<u8>,
    },
}

impl KvsRequest {
    /// The request id.
    pub fn id(&self) -> u64 {
        match self {
            KvsRequest::Get { id, .. }
            | KvsRequest::Put { id, .. }
            | KvsRequest::Delete { id, .. } => *id,
        }
    }

    /// Encodes to frame payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            KvsRequest::Get { id, key } => {
                w.u8(1);
                w.u64(*id);
                w.bytes(key);
            }
            KvsRequest::Put { id, key, value } => {
                w.u8(2);
                w.u64(*id);
                w.bytes(key);
                w.bytes(value);
            }
            KvsRequest::Delete { id, key } => {
                w.u8(3);
                w.u64(*id);
                w.bytes(key);
            }
        }
        w.finish()
    }

    /// Decodes from frame payload bytes.
    pub fn decode(buf: &[u8]) -> Option<KvsRequest> {
        let mut r = WireReader::new(buf);
        let req = match r.u8().ok()? {
            1 => KvsRequest::Get {
                id: r.u64().ok()?,
                key: r.bytes().ok()?,
            },
            2 => KvsRequest::Put {
                id: r.u64().ok()?,
                key: r.bytes().ok()?,
                value: r.bytes().ok()?,
            },
            3 => KvsRequest::Delete {
                id: r.u64().ok()?,
                key: r.bytes().ok()?,
            },
            _ => return None,
        };
        r.expect_end().ok()?;
        Some(req)
    }
}

/// Response status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvsStatus {
    /// Success (GETs carry the value).
    Ok,
    /// Key not found.
    NotFound,
    /// Server temporarily overloaded (client should back off/retry).
    Busy,
    /// Server-side failure (storage error, oversized request...).
    Error,
    /// Server lost a backing resource (SSD session, memory grant) and is
    /// re-running discovery/recovery. Unlike [`KvsStatus::Error`] this is an
    /// explicit degradation signal: the request was *not* attempted and the
    /// client should retry after the server re-initialises (§ failure model).
    Unavailable,
}

impl KvsStatus {
    fn to_u8(self) -> u8 {
        match self {
            KvsStatus::Ok => 0,
            KvsStatus::NotFound => 1,
            KvsStatus::Busy => 2,
            KvsStatus::Error => 3,
            KvsStatus::Unavailable => 4,
        }
    }

    fn from_u8(v: u8) -> KvsStatus {
        match v {
            0 => KvsStatus::Ok,
            1 => KvsStatus::NotFound,
            2 => KvsStatus::Busy,
            4 => KvsStatus::Unavailable,
            _ => KvsStatus::Error,
        }
    }
}

/// A KVS response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvsResponse {
    /// Echoed request id.
    pub id: u64,
    /// Outcome.
    pub status: KvsStatus,
    /// Value bytes (GET hits only).
    pub value: Vec<u8>,
}

impl KvsResponse {
    /// Builds a [`KvsStatus::Busy`] response carrying the server's current
    /// queue depth (backlog + in-flight) in the value bytes. The depth is
    /// the backpressure signal: a congestion-aware router scales its
    /// re-dispatch deferral by it instead of retrying blind.
    pub fn busy(id: u64, depth: u32) -> KvsResponse {
        KvsResponse {
            id,
            status: KvsStatus::Busy,
            value: depth.to_le_bytes().to_vec(),
        }
    }

    /// The queue depth a [`KvsStatus::Busy`] response reported, if any.
    /// Older/minimal Busy responses carry no payload; they read as `None`
    /// and callers fall back to a default backoff.
    pub fn busy_depth(&self) -> Option<u32> {
        if self.status != KvsStatus::Busy {
            return None;
        }
        let bytes: [u8; 4] = self.value.as_slice().try_into().ok()?;
        Some(u32::from_le_bytes(bytes))
    }

    /// Encodes to frame payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        encode_response(self.id, self.status, &self.value)
    }

    /// Decodes from frame payload bytes.
    pub fn decode(buf: &[u8]) -> Option<KvsResponse> {
        let mut r = WireReader::new(buf);
        let status = KvsStatus::from_u8(r.u8().ok()?);
        let id = r.u64().ok()?;
        let value = r.bytes().ok()?;
        r.expect_end().ok()?;
        Some(KvsResponse { id, status, value })
    }
}

/// Encodes a response directly from a borrowed value, without building a
/// [`KvsResponse`] first. The server's cache-hit fast path uses this to
/// serialize straight out of the value cache — no intermediate copy of the
/// value bytes.
pub fn encode_response(id: u64, status: KvsStatus, value: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u8(status.to_u8());
    w.u64(id);
    w.bytes(value);
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in [
            KvsRequest::Get {
                id: 7,
                key: b"k".to_vec(),
            },
            KvsRequest::Put {
                id: 8,
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
            KvsRequest::Delete {
                id: 9,
                key: b"k".to_vec(),
            },
        ] {
            assert_eq!(KvsRequest::decode(&req.encode()), Some(req));
        }
        assert_eq!(KvsRequest::decode(&[99]), None);
        assert_eq!(KvsRequest::decode(&[]), None);
    }

    #[test]
    fn responses_round_trip() {
        for status in [
            KvsStatus::Ok,
            KvsStatus::NotFound,
            KvsStatus::Busy,
            KvsStatus::Error,
            KvsStatus::Unavailable,
        ] {
            let resp = KvsResponse {
                id: 42,
                status,
                value: b"value".to_vec(),
            };
            assert_eq!(KvsResponse::decode(&resp.encode()), Some(resp));
        }
    }

    #[test]
    fn id_accessor() {
        assert_eq!(KvsRequest::Get { id: 5, key: vec![] }.id(), 5);
    }

    #[test]
    fn busy_depth_round_trips() {
        let resp = KvsResponse::busy(7, 513);
        assert_eq!(resp.status, KvsStatus::Busy);
        assert_eq!(resp.busy_depth(), Some(513));
        let wire = KvsResponse::decode(&resp.encode()).unwrap();
        assert_eq!(wire.busy_depth(), Some(513));
        // Legacy empty-payload Busy and non-Busy responses report no depth.
        let legacy = KvsResponse {
            id: 7,
            status: KvsStatus::Busy,
            value: vec![],
        };
        assert_eq!(legacy.busy_depth(), None);
        let ok = KvsResponse {
            id: 7,
            status: KvsStatus::Ok,
            value: 9u32.to_le_bytes().to_vec(),
        };
        assert_eq!(ok.busy_depth(), None);
    }
}
