//! The client↔KVS network protocol.
//!
//! One request or response per frame; requests carry a client-chosen id the
//! response echoes, so clients can pipeline.

use lastcpu_bus::wire::{WireReader, WireWriter};

/// A KVS request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvsRequest {
    /// Fetch a value.
    Get {
        /// Request id echoed in the response.
        id: u64,
        /// The key.
        key: Vec<u8>,
    },
    /// Insert or update a value.
    Put {
        /// Request id echoed in the response.
        id: u64,
        /// The key.
        key: Vec<u8>,
        /// The value.
        value: Vec<u8>,
    },
    /// Remove a key.
    Delete {
        /// Request id echoed in the response.
        id: u64,
        /// The key.
        key: Vec<u8>,
    },
}

impl KvsRequest {
    /// The request id.
    pub fn id(&self) -> u64 {
        match self {
            KvsRequest::Get { id, .. }
            | KvsRequest::Put { id, .. }
            | KvsRequest::Delete { id, .. } => *id,
        }
    }

    /// Encodes to frame payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            KvsRequest::Get { id, key } => {
                w.u8(1);
                w.u64(*id);
                w.bytes(key);
            }
            KvsRequest::Put { id, key, value } => {
                w.u8(2);
                w.u64(*id);
                w.bytes(key);
                w.bytes(value);
            }
            KvsRequest::Delete { id, key } => {
                w.u8(3);
                w.u64(*id);
                w.bytes(key);
            }
        }
        w.finish()
    }

    /// Decodes from frame payload bytes.
    pub fn decode(buf: &[u8]) -> Option<KvsRequest> {
        KvsRequestRef::decode(buf).map(|r| r.to_owned())
    }
}

/// A decoded request view borrowing key/value bytes from the frame payload.
///
/// The server's fast path decodes into this — zero allocations — and only
/// materializes owned buffers ([`KvsRequestRef::to_owned`]) when the request
/// must be queued or handed to the storage engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvsRequestRef<'a> {
    /// Fetch a value.
    Get {
        /// Request id echoed in the response.
        id: u64,
        /// The key, borrowed from the payload.
        key: &'a [u8],
    },
    /// Insert or update a value.
    Put {
        /// Request id echoed in the response.
        id: u64,
        /// The key, borrowed from the payload.
        key: &'a [u8],
        /// The value, borrowed from the payload.
        value: &'a [u8],
    },
    /// Remove a key.
    Delete {
        /// Request id echoed in the response.
        id: u64,
        /// The key, borrowed from the payload.
        key: &'a [u8],
    },
}

impl<'a> KvsRequestRef<'a> {
    /// The request id.
    pub fn id(&self) -> u64 {
        match self {
            KvsRequestRef::Get { id, .. }
            | KvsRequestRef::Put { id, .. }
            | KvsRequestRef::Delete { id, .. } => *id,
        }
    }

    /// The key bytes.
    pub fn key(&self) -> &'a [u8] {
        match self {
            KvsRequestRef::Get { key, .. }
            | KvsRequestRef::Put { key, .. }
            | KvsRequestRef::Delete { key, .. } => key,
        }
    }

    /// Decodes a borrowed view from frame payload bytes, allocation-free.
    pub fn decode(buf: &'a [u8]) -> Option<KvsRequestRef<'a>> {
        let mut r = WireReader::new(buf);
        let req = match r.u8().ok()? {
            1 => KvsRequestRef::Get {
                id: r.u64().ok()?,
                key: r.bytes_ref().ok()?,
            },
            2 => KvsRequestRef::Put {
                id: r.u64().ok()?,
                key: r.bytes_ref().ok()?,
                value: r.bytes_ref().ok()?,
            },
            3 => KvsRequestRef::Delete {
                id: r.u64().ok()?,
                key: r.bytes_ref().ok()?,
            },
            _ => return None,
        };
        r.expect_end().ok()?;
        Some(req)
    }

    /// Copies the borrowed fields into an owned [`KvsRequest`].
    pub fn to_owned(self) -> KvsRequest {
        match self {
            KvsRequestRef::Get { id, key } => KvsRequest::Get {
                id,
                key: key.to_vec(),
            },
            KvsRequestRef::Put { id, key, value } => KvsRequest::Put {
                id,
                key: key.to_vec(),
                value: value.to_vec(),
            },
            KvsRequestRef::Delete { id, key } => KvsRequest::Delete {
                id,
                key: key.to_vec(),
            },
        }
    }
}

/// Response status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvsStatus {
    /// Success (GETs carry the value).
    Ok,
    /// Key not found.
    NotFound,
    /// Server temporarily overloaded (client should back off/retry).
    Busy,
    /// Server-side failure (storage error, oversized request...).
    Error,
    /// Server lost a backing resource (SSD session, memory grant) and is
    /// re-running discovery/recovery. Unlike [`KvsStatus::Error`] this is an
    /// explicit degradation signal: the request was *not* attempted and the
    /// client should retry after the server re-initialises (§ failure model).
    Unavailable,
}

impl KvsStatus {
    fn to_u8(self) -> u8 {
        match self {
            KvsStatus::Ok => 0,
            KvsStatus::NotFound => 1,
            KvsStatus::Busy => 2,
            KvsStatus::Error => 3,
            KvsStatus::Unavailable => 4,
        }
    }

    fn from_u8(v: u8) -> KvsStatus {
        match v {
            0 => KvsStatus::Ok,
            1 => KvsStatus::NotFound,
            2 => KvsStatus::Busy,
            4 => KvsStatus::Unavailable,
            _ => KvsStatus::Error,
        }
    }
}

/// A KVS response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvsResponse {
    /// Echoed request id.
    pub id: u64,
    /// Outcome.
    pub status: KvsStatus,
    /// Value bytes (GET hits only).
    pub value: Vec<u8>,
}

impl KvsResponse {
    /// Builds a [`KvsStatus::Busy`] response carrying the server's current
    /// queue depth (backlog + in-flight) in the value bytes. The depth is
    /// the backpressure signal: a congestion-aware router scales its
    /// re-dispatch deferral by it instead of retrying blind.
    pub fn busy(id: u64, depth: u32) -> KvsResponse {
        KvsResponse {
            id,
            status: KvsStatus::Busy,
            value: depth.to_le_bytes().to_vec(),
        }
    }

    /// The queue depth a [`KvsStatus::Busy`] response reported, if any.
    /// Older/minimal Busy responses carry no payload; they read as `None`
    /// and callers fall back to a default backoff.
    pub fn busy_depth(&self) -> Option<u32> {
        if self.status != KvsStatus::Busy {
            return None;
        }
        let bytes: [u8; 4] = self.value.as_slice().try_into().ok()?;
        Some(u32::from_le_bytes(bytes))
    }

    /// Encodes to frame payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        encode_response(self.id, self.status, &self.value)
    }

    /// Decodes from frame payload bytes.
    pub fn decode(buf: &[u8]) -> Option<KvsResponse> {
        KvsResponseRef::decode(buf).map(|r| KvsResponse {
            id: r.id,
            status: r.status,
            value: r.value.to_vec(),
        })
    }
}

/// A decoded response view borrowing the value bytes from the payload.
/// Clients that only inspect the value (or ignore it) decode through this
/// without allocating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvsResponseRef<'a> {
    /// Echoed request id.
    pub id: u64,
    /// Outcome.
    pub status: KvsStatus,
    /// Value bytes (GET hits only), borrowed from the payload.
    pub value: &'a [u8],
}

impl<'a> KvsResponseRef<'a> {
    /// Decodes a borrowed view from frame payload bytes, allocation-free.
    pub fn decode(buf: &'a [u8]) -> Option<KvsResponseRef<'a>> {
        let mut r = WireReader::new(buf);
        let status = KvsStatus::from_u8(r.u8().ok()?);
        let id = r.u64().ok()?;
        let value = r.bytes_ref().ok()?;
        r.expect_end().ok()?;
        Some(KvsResponseRef { id, status, value })
    }

    /// The queue depth a [`KvsStatus::Busy`] response reported, if any
    /// (see [`KvsResponse::busy_depth`]).
    pub fn busy_depth(&self) -> Option<u32> {
        if self.status != KvsStatus::Busy {
            return None;
        }
        let bytes: [u8; 4] = self.value.try_into().ok()?;
        Some(u32::from_le_bytes(bytes))
    }
}

/// Encodes a GET request straight into `buf` (appended), from a borrowed
/// key — the client's zero-alloc issue path. Wire-identical to
/// `KvsRequest::Get { id, key }.encode()`.
pub fn encode_get_into(id: u64, key: &[u8], buf: &mut Vec<u8>) {
    let mut w = WireWriter::with_buf(std::mem::take(buf));
    w.u8(1);
    w.u64(id);
    w.bytes(key);
    *buf = w.finish();
}

/// Encodes a PUT request straight into `buf` (appended), from borrowed key
/// and value. Wire-identical to `KvsRequest::Put { .. }.encode()`.
pub fn encode_put_into(id: u64, key: &[u8], value: &[u8], buf: &mut Vec<u8>) {
    let mut w = WireWriter::with_buf(std::mem::take(buf));
    w.u8(2);
    w.u64(id);
    w.bytes(key);
    w.bytes(value);
    *buf = w.finish();
}

/// Encodes a response directly from a borrowed value, without building a
/// [`KvsResponse`] first. The server's cache-hit fast path uses this to
/// serialize straight out of the value cache — no intermediate copy of the
/// value bytes.
pub fn encode_response(id: u64, status: KvsStatus, value: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_response_into(id, status, value, &mut buf);
    buf
}

/// Like [`encode_response`], but appends into a caller-supplied buffer
/// (typically drawn from the machine's payload pool). The zero-alloc
/// delivery path serializes every response through here.
pub fn encode_response_into(id: u64, status: KvsStatus, value: &[u8], buf: &mut Vec<u8>) {
    let mut w = WireWriter::with_buf(std::mem::take(buf));
    w.u8(status.to_u8());
    w.u64(id);
    w.bytes(value);
    *buf = w.finish();
}

impl KvsStatus {
    /// Stable one-byte tag for snapshot sections (same values as the wire).
    pub fn snap_encode(self) -> u8 {
        self.to_u8()
    }

    /// Inverse of [`KvsStatus::snap_encode`].
    pub fn snap_decode(v: u8) -> KvsStatus {
        KvsStatus::from_u8(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in [
            KvsRequest::Get {
                id: 7,
                key: b"k".to_vec(),
            },
            KvsRequest::Put {
                id: 8,
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
            KvsRequest::Delete {
                id: 9,
                key: b"k".to_vec(),
            },
        ] {
            assert_eq!(KvsRequest::decode(&req.encode()), Some(req));
        }
        assert_eq!(KvsRequest::decode(&[99]), None);
        assert_eq!(KvsRequest::decode(&[]), None);
    }

    #[test]
    fn responses_round_trip() {
        for status in [
            KvsStatus::Ok,
            KvsStatus::NotFound,
            KvsStatus::Busy,
            KvsStatus::Error,
            KvsStatus::Unavailable,
        ] {
            let resp = KvsResponse {
                id: 42,
                status,
                value: b"value".to_vec(),
            };
            assert_eq!(KvsResponse::decode(&resp.encode()), Some(resp));
        }
    }

    #[test]
    fn id_accessor() {
        assert_eq!(KvsRequest::Get { id: 5, key: vec![] }.id(), 5);
    }

    #[test]
    fn borrowed_views_agree_with_owned_decode() {
        let reqs = [
            KvsRequest::Get {
                id: 7,
                key: b"k1".to_vec(),
            },
            KvsRequest::Put {
                id: 8,
                key: b"k2".to_vec(),
                value: b"v".to_vec(),
            },
            KvsRequest::Delete {
                id: 9,
                key: b"k3".to_vec(),
            },
        ];
        for req in reqs {
            let wire = req.encode();
            let view = KvsRequestRef::decode(&wire).unwrap();
            assert_eq!(view.to_owned(), req);
            assert_eq!(view.id(), req.id());
        }
        let resp = KvsResponse {
            id: 3,
            status: KvsStatus::Ok,
            value: b"val".to_vec(),
        };
        let wire = resp.encode();
        let view = KvsResponseRef::decode(&wire).unwrap();
        assert_eq!(view.id, 3);
        assert_eq!(view.status, KvsStatus::Ok);
        assert_eq!(view.value, b"val");
        let busy = KvsResponse::busy(4, 77).encode();
        assert_eq!(
            KvsResponseRef::decode(&busy).unwrap().busy_depth(),
            Some(77)
        );
    }

    #[test]
    fn into_buffer_encoders_are_wire_identical() {
        let mut buf = Vec::new();
        encode_get_into(11, b"key", &mut buf);
        assert_eq!(
            buf,
            KvsRequest::Get {
                id: 11,
                key: b"key".to_vec()
            }
            .encode()
        );
        buf.clear();
        encode_put_into(12, b"key", b"value", &mut buf);
        assert_eq!(
            buf,
            KvsRequest::Put {
                id: 12,
                key: b"key".to_vec(),
                value: b"value".to_vec()
            }
            .encode()
        );
        buf.clear();
        encode_response_into(13, KvsStatus::NotFound, b"", &mut buf);
        assert_eq!(buf, encode_response(13, KvsStatus::NotFound, b""));
    }

    #[test]
    fn busy_depth_round_trips() {
        let resp = KvsResponse::busy(7, 513);
        assert_eq!(resp.status, KvsStatus::Busy);
        assert_eq!(resp.busy_depth(), Some(513));
        let wire = KvsResponse::decode(&resp.encode()).unwrap();
        assert_eq!(wire.busy_depth(), Some(513));
        // Legacy empty-payload Busy and non-Busy responses report no depth.
        let legacy = KvsResponse {
            id: 7,
            status: KvsStatus::Busy,
            value: vec![],
        };
        assert_eq!(legacy.busy_depth(), None);
        let ok = KvsResponse {
            id: 7,
            status: KvsStatus::Ok,
            value: 9u32.to_le_bytes().to_vec(),
        };
        assert_eq!(ok.busy_depth(), None);
    }
}
