//! Deployment-independent KVS server logic.
//!
//! Both deployments — offloaded on the smart NIC and conventional on the
//! CPU — run exactly this state machine; they differ only in how request
//! packets arrive and responses leave. Keeping the store logic identical is
//! what makes the E2 comparison fair: the measured difference is the
//! *system structure*, not the application.
//!
//! Startup: discover the memory controller, discover the data file's
//! owner, run the Figure 2 session setup, rebuild the index by scanning the
//! log, then serve. GETs read values from the SSD through the VIRTIO
//! queue (unless the small NIC-local cache hits); PUTs append records.

use lastcpu_sim::DetHashMap;
use std::collections::VecDeque;

use lastcpu_bus::{DeviceId, Token};
use lastcpu_devices::device::DeviceCtx;
use lastcpu_devices::monitor::{Monitor, MonitorEvent};
use lastcpu_devices::session::{FileSession, SessionEvent, SessionState};
use lastcpu_devices::ssd::{FileOp, FileStatus, DOORBELL_WORK};
use lastcpu_mem::Pasid;
use lastcpu_net::PortId;
use lastcpu_sim::critpath::{STAGE_SERVER_DONE, STAGE_SERVER_RECV};
use lastcpu_sim::profile;
use lastcpu_sim::{Bytes, CounterHandle, SimDuration};

use crate::engine::{KvEngine, LogScanner};
use crate::proto::{encode_response_into, KvsRequest, KvsRequestRef, KvsStatus};

/// Rebuild read chunk.
const REBUILD_CHUNK: u32 = 2048;
/// Maximum queued-but-unsubmitted requests before shedding load.
const MAX_BACKLOG: usize = 512;
/// Virtual-address stride between session incarnations (16 MiB; regions are
/// ~256 KiB). A failed incarnation's region may still be mapped at its old
/// VA — there is no unmap protocol for an owner that survived its peer — so
/// each reconnect maps its fresh region at a fresh VA instead of aliasing
/// the stale mapping.
///
/// Public because the E11 security evaluation probes exactly these windows
/// (generation `g` lives at `va_base + g * VA_STRIDE`): a rotated-away
/// generation must be revoked, not merely unused.
pub const VA_STRIDE: u64 = 0x0100_0000;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Discovery pattern for the data file, e.g. `"file:/data/kv.db"`.
    pub file_pattern: String,
    /// Pre-wired memory-controller address. `None` (the CPU-less default)
    /// discovers the `memory` service; the baseline CPU sets this to itself
    /// (a kernel knows it is the memory manager).
    pub memctl: Option<DeviceId>,
    /// Auth token presented when opening the file service.
    pub token: Token,
    /// Virtual base for the shared region in the server's address space.
    pub va_base: u64,
    /// Virtqueue depth.
    pub queue_size: u16,
    /// Entries in the local value cache (0 = disabled).
    pub cache_entries: usize,
    /// Per-request processing cost (hash, parse) on the serving device.
    pub per_request_cost: SimDuration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            file_pattern: "file:/data/kv.db".into(),
            memctl: None,
            token: Token::NONE,
            va_base: 0x2000_0000,
            queue_size: 64,
            cache_entries: 0,
            per_request_cost: SimDuration::from_nanos(500),
        }
    }
}

/// Server lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerState {
    /// Waiting for registration.
    Boot,
    /// Discovering the memory controller.
    FindingMemory,
    /// Discovering the data file's owner.
    FindingFile,
    /// Figure-2 session setup in progress.
    Connecting,
    /// Scanning the log to rebuild the index.
    Rebuilding,
    /// Serving requests.
    Ready,
    /// Lost a backing resource (peer death, setup failure). Transient: the
    /// failure sites immediately call `KvsServer::restart`, which answers
    /// everything queued with [`KvsStatus::Unavailable`] and re-enters the
    /// discovery pipeline, so a revived SSD/memory controller brings the
    /// server back without outside intervention.
    Failed,
}

/// Per-request bookkeeping for storage operations in flight.
enum Pending {
    Get {
        port: PortId,
        id: u64,
    },
    Put {
        port: PortId,
        id: u64,
        key: Vec<u8>,
        value: Vec<u8>,
    },
    Delete {
        port: PortId,
        id: u64,
    },
    Rebuild {
        len: u32,
    },
}

/// Server counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// GETs served.
    pub gets: u64,
    /// PUTs served.
    pub puts: u64,
    /// DELETEs served.
    pub deletes: u64,
    /// GETs answered from the local cache.
    pub cache_hits: u64,
    /// Cache-hit GETs answered via the zero-alloc fast path (a subset of
    /// `cache_hits`; zero when the fast path is disabled).
    pub fast_gets: u64,
    /// Requests answered `Busy` due to backlog overflow.
    pub shed: u64,
    /// Requests answered `NotFound`.
    pub misses: u64,
    /// Backing-resource failures survived (each triggers a restart).
    pub failures: u64,
    /// Requests answered `Unavailable` (failed over or arrived mid-recovery).
    pub unavailable: u64,
}

/// Handles into the system-wide [`MetricsHub`], registered when the server
/// starts so `kvs.server.*` keys exist even before any request arrives.
/// Mirrors [`ServerStats`]; hub updates are plain `Cell` writes.
///
/// [`MetricsHub`]: lastcpu_sim::MetricsHub
struct HubCounters {
    gets: CounterHandle,
    puts: CounterHandle,
    deletes: CounterHandle,
    cache_hits: CounterHandle,
    shed: CounterHandle,
    misses: CounterHandle,
    restarts: CounterHandle,
    unavailable: CounterHandle,
}

impl HubCounters {
    fn register(hub: &lastcpu_sim::MetricsHub) -> Self {
        HubCounters {
            gets: hub.counter_handle("kvs.server.gets"),
            puts: hub.counter_handle("kvs.server.puts"),
            deletes: hub.counter_handle("kvs.server.deletes"),
            cache_hits: hub.counter_handle("kvs.server.cache_hits"),
            shed: hub.counter_handle("kvs.server.shed"),
            misses: hub.counter_handle("kvs.server.misses"),
            restarts: hub.counter_handle("kvs.server.restarts"),
            unavailable: hub.counter_handle("kvs.server.unavailable"),
        }
    }
}

/// A tiny LRU value cache (the NIC-local DRAM cache of KV-Direct).
struct ValueCache {
    map: DetHashMap<Vec<u8>, Vec<u8>>,
    order: VecDeque<Vec<u8>>,
    capacity: usize,
}

impl ValueCache {
    fn new(capacity: usize) -> Self {
        ValueCache {
            map: DetHashMap::default(),
            order: VecDeque::new(),
            capacity,
        }
    }

    /// Borrowed-value lookup: the hot GET path serializes the response
    /// straight from this reference instead of cloning the value out.
    fn get(&self, key: &[u8]) -> Option<&Vec<u8>> {
        self.map.get(key)
    }

    fn insert(&mut self, key: &[u8], value: Vec<u8>) {
        if self.capacity == 0 {
            return;
        }
        // Updating an existing entry is allocation-free; the key is copied
        // only when it is new to the cache.
        if let Some(slot) = self.map.get_mut(key) {
            *slot = value;
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(victim) = self.order.pop_front() {
                self.map.remove(&victim);
            }
        }
        let key = key.to_vec();
        self.order.push_back(key.clone());
        self.map.insert(key, value);
    }

    fn remove(&mut self, key: &[u8]) {
        self.map.remove(key);
        self.order.retain(|k| k != key);
    }
}

/// The KVS server state machine.
pub struct KvsServer {
    config: ServerConfig,
    pasid: Pasid,
    state: ServerState,
    engine: KvEngine,
    scanner: LogScanner,
    memctl: Option<DeviceId>,
    mem_op: u64,
    file_op: u64,
    session: Option<FileSession>,
    file_size: u64,
    rebuild_next: u64,
    rebuild_inflight: u64,
    inflight: DetHashMap<u16, Pending>,
    backlog: VecDeque<(PortId, KvsRequest)>,
    cache: ValueCache,
    stats: ServerStats,
    met: Option<HubCounters>,
    /// True between a failure-triggered [`restart`](Self::restart) and the
    /// next transition to [`ServerState::Ready`]; requests arriving in that
    /// window get `Unavailable` (lost resource) rather than `Busy`
    /// (overload), so clients can tell the two apart.
    recovering: bool,
    /// Session incarnation counter; selects the VA window ([`VA_STRIDE`])
    /// the next session maps its shared region at.
    generation: u64,
    /// Reused completion-payload buffer for the streaming drain loop.
    comp_buf: Vec<u8>,
    /// Whether `try_fast_get` may answer (test hook; defaults on).
    fast_path: bool,
}

impl KvsServer {
    /// Creates a server that will run in address space `pasid`.
    pub fn new(config: ServerConfig, pasid: Pasid) -> Self {
        let cache = ValueCache::new(config.cache_entries);
        KvsServer {
            config,
            pasid,
            state: ServerState::Boot,
            engine: KvEngine::new(),
            scanner: LogScanner::new(),
            memctl: None,
            mem_op: 0,
            file_op: 0,
            session: None,
            file_size: 0,
            rebuild_next: 0,
            rebuild_inflight: 0,
            inflight: DetHashMap::default(),
            backlog: VecDeque::new(),
            cache,
            stats: ServerStats::default(),
            met: None,
            recovering: false,
            generation: 0,
            comp_buf: Vec::new(),
            fast_path: true,
        }
    }

    /// Enables or disables the [`try_fast_get`](Self::try_fast_get) fast
    /// path. Responses must be byte-identical either way — the differential
    /// test flips this to hold the two paths to that contract.
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast_path = on;
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ServerState {
        self.state
    }

    /// Counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Live keys in the index.
    pub fn key_count(&self) -> usize {
        self.engine.len()
    }

    /// Whether `key` is live in the in-memory index. The E10 crash audit
    /// uses this to check acknowledged writes against surviving replicas.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.engine.get(key).is_some()
    }

    /// Starts the setup pipeline (call once registered on the bus).
    pub fn start(&mut self, ctx: &mut DeviceCtx<'_>, monitor: &mut Monitor) {
        self.met = Some(HubCounters::register(ctx.stats));
        match self.config.memctl {
            Some(dev) => {
                self.memctl = Some(dev);
                self.state = ServerState::FindingFile;
                self.file_op = monitor.discover(ctx, &self.config.file_pattern);
            }
            None => {
                self.state = ServerState::FindingMemory;
                self.mem_op = monitor.discover(ctx, "memory");
            }
        }
    }

    /// Feeds a monitor event, appending response payloads to transmit onto
    /// `out` (an app-owned scratch vector, reused across events).
    pub fn on_event(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        monitor: &mut Monitor,
        ev: &MonitorEvent,
        out: &mut Vec<(PortId, Bytes)>,
    ) {
        if let Some(session) = self.session.as_mut() {
            match session.on_event(ctx, monitor, ev) {
                Some(SessionEvent::Ready { file_size, .. }) => {
                    self.file_size = file_size;
                    if file_size == 0 {
                        self.state = ServerState::Ready;
                        self.recovering = false;
                    } else {
                        self.state = ServerState::Rebuilding;
                        self.issue_rebuild_reads(ctx);
                    }
                    return;
                }
                Some(SessionEvent::Completions { .. }) => {
                    self.drain(ctx, out);
                    if self.state == ServerState::Failed {
                        self.restart(ctx, monitor, out);
                    }
                    return;
                }
                Some(SessionEvent::Failed { .. }) => {
                    self.state = ServerState::Failed;
                    self.restart(ctx, monitor, out);
                    return;
                }
                None => {}
            }
        }
        match (self.state, ev) {
            (ServerState::FindingMemory, MonitorEvent::DiscoveryDone { op, hits })
                if *op == self.mem_op =>
            {
                match hits
                    .iter()
                    .find(|(_, s)| Monitor::match_pattern("memory", &s.name))
                {
                    Some((dev, _)) => {
                        self.memctl = Some(*dev);
                        self.state = ServerState::FindingFile;
                        self.file_op = monitor.discover(ctx, &self.config.file_pattern);
                    }
                    None => {
                        // The controller may still be booting; retry.
                        self.mem_op = monitor.discover(ctx, "memory");
                    }
                }
            }
            (ServerState::FindingFile, MonitorEvent::DiscoveryDone { op, hits })
                if *op == self.file_op =>
            {
                match hits
                    .iter()
                    .find(|(_, s)| Monitor::match_pattern(&self.config.file_pattern, &s.name))
                {
                    Some((dev, svc)) => {
                        let mut session = FileSession::new(
                            self.memctl.expect("set in FindingMemory"),
                            *dev,
                            svc.id,
                            self.config.token,
                            self.pasid,
                            self.config.va_base + self.generation * VA_STRIDE,
                            self.config.queue_size,
                        );
                        self.state = ServerState::Connecting;
                        session.start(ctx, monitor);
                        self.session = Some(session);
                    }
                    None => {
                        self.file_op = monitor.discover(ctx, &self.config.file_pattern);
                    }
                }
            }
            _ => {}
        }
    }

    /// Pushes one response and emits its `server.done` critical-path mark
    /// (every response path funnels through here so the E12 analyzer can
    /// join the replica side of each operation). The response serializes
    /// straight from the borrowed value into a pooled buffer — no
    /// intermediate `KvsResponse`, no per-response `Vec`.
    fn respond(
        ctx: &mut DeviceCtx<'_>,
        out: &mut Vec<(PortId, Bytes)>,
        port: PortId,
        id: u64,
        status: KvsStatus,
        value: &[u8],
    ) {
        ctx.stage(STAGE_SERVER_DONE, id, status as u64);
        let mut buf = ctx.take_buf();
        encode_response_into(id, status, value, buf.vec_mut());
        out.push((port, buf));
    }

    /// Current queue depth (backlogged + in-flight requests), reported in
    /// `Busy` responses as the backpressure signal.
    fn queue_depth(&self) -> u32 {
        (self.backlog.len() + self.inflight.len()) as u32
    }

    /// Handles one network request, appending response payloads onto `out`
    /// (an app-owned scratch vector, reused across requests).
    pub fn on_request(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        src: PortId,
        req: KvsRequest,
        out: &mut Vec<(PortId, Bytes)>,
    ) {
        // Named sub-scope: everything the fast path bypassed (PUTs,
        // misses, shed) attributes here in the E9 table.
        let _sp = profile::span("kvs.server.request");
        ctx.stage(STAGE_SERVER_RECV, req.id(), 0);
        if self.state != ServerState::Ready {
            // `Unavailable` = lost a backing resource (recovery under way);
            // `Busy` = still starting up or overloaded. Clients treat the
            // former as "back off longer".
            // Busy responses carry the current queue depth so a
            // congestion-aware router can scale its backoff instead of
            // retrying blind ([`KvsResponse::busy`]).
            if self.recovering || self.state == ServerState::Failed {
                self.note_unavailable();
                Self::respond(ctx, out, src, req.id(), KvsStatus::Unavailable, &[]);
            } else {
                let depth = self.queue_depth();
                Self::respond(
                    ctx,
                    out,
                    src,
                    req.id(),
                    KvsStatus::Busy,
                    &depth.to_le_bytes(),
                );
            }
            return;
        }
        ctx.busy(self.config.per_request_cost);
        if self.backlog.len() >= MAX_BACKLOG {
            self.stats.shed += 1;
            if let Some(met) = &self.met {
                met.shed.incr();
            }
            let depth = self.queue_depth();
            Self::respond(
                ctx,
                out,
                src,
                req.id(),
                KvsStatus::Busy,
                &depth.to_le_bytes(),
            );
            return;
        }
        self.backlog.push_back((src, req));
        self.pump(ctx, out);
    }

    /// Zero-alloc fast path for the dominant request shape: a GET whose key
    /// is hot in the value cache, arriving while the server is `Ready` with
    /// an empty backlog and storage-queue space free (the exact conditions
    /// under which [`KvsServer::on_request`] would answer it inline from
    /// the cache). Replicates the slow path's effects — stage marks, busy
    /// charge, counters — and serializes the response into `buf` (typically
    /// a pooled buffer) straight from the borrowed key and cached value.
    ///
    /// Returns `true` when handled; `false` means the caller must fall back
    /// to [`KvsServer::on_request`] with an owned request.
    pub fn try_fast_get(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        req: &KvsRequestRef<'_>,
        buf: &mut Vec<u8>,
    ) -> bool {
        if !self.fast_path {
            return false;
        }
        let KvsRequestRef::Get { id, key } = *req else {
            return false;
        };
        if self.state != ServerState::Ready || !self.backlog.is_empty() {
            return false;
        }
        // `pump` only answers requests while the storage client has queue
        // space; without it this GET would backlog, so take the slow path.
        let Some(session) = self.session.as_mut() else {
            return false;
        };
        let Some((client, _)) = session.client_mut() else {
            return false;
        };
        if !client.can_submit() {
            return false;
        }
        let Some(v) = self.cache.get(key) else {
            return false;
        };
        // Same effects, in the same order, as on_request → pump for this
        // shape (the differential test in `tests/` holds the two paths
        // byte-identical).
        ctx.stage(STAGE_SERVER_RECV, id, 0);
        ctx.busy(self.config.per_request_cost);
        self.stats.gets += 1;
        self.stats.cache_hits += 1;
        self.stats.fast_gets += 1;
        if let Some(met) = &self.met {
            met.gets.incr();
            met.cache_hits.incr();
        }
        ctx.stage(STAGE_SERVER_DONE, id, KvsStatus::Ok as u64);
        encode_response_into(id, KvsStatus::Ok, v, buf);
        true
    }

    /// Submits backlogged requests while queue space allows.
    fn pump(&mut self, ctx: &mut DeviceCtx<'_>, out: &mut Vec<(PortId, Bytes)>) {
        let Some(session) = self.session.as_mut() else {
            return;
        };
        let pasid = self.pasid;
        let target = session.target();
        let conn = session.conn();
        let mut submitted = false;
        while let Some((src, req)) = self.backlog.pop_front() {
            let Some((client, _)) = session.client_mut() else {
                self.backlog.push_front((src, req));
                break;
            };
            if !client.can_submit() {
                self.backlog.push_front((src, req));
                break;
            }
            match req {
                KvsRequest::Get { id, key } => {
                    if let Some(v) = self.cache.get(&key) {
                        self.stats.gets += 1;
                        if let Some(met) = &self.met {
                            met.gets.incr();
                        }
                        self.stats.cache_hits += 1;
                        if let Some(met) = &self.met {
                            met.cache_hits.incr();
                        }
                        // Serialize straight from the borrowed cache value:
                        // no intermediate clone into a KvsResponse.
                        Self::respond(ctx, out, src, id, KvsStatus::Ok, v);
                        continue;
                    }
                    match self.engine.get(&key) {
                        Some(vref) => {
                            let op = FileOp::Read {
                                offset: vref.offset,
                                len: vref.len,
                            };
                            let mut view = ctx.dma_view(pasid);
                            match client.submit(&mut view, &op, vref.len) {
                                Ok(head) => {
                                    self.inflight.insert(head, Pending::Get { port: src, id });
                                    submitted = true;
                                }
                                Err(_) => {
                                    self.backlog.push_front((src, KvsRequest::Get { id, key }));
                                    break;
                                }
                            }
                        }
                        None => {
                            self.stats.gets += 1;
                            if let Some(met) = &self.met {
                                met.gets.incr();
                            }
                            self.stats.misses += 1;
                            if let Some(met) = &self.met {
                                met.misses.incr();
                            }
                            Self::respond(ctx, out, src, id, KvsStatus::NotFound, &[]);
                        }
                    }
                }
                KvsRequest::Put { id, key, value } => {
                    match self.engine.put(&key, &value) {
                        Ok((offset, rec)) => {
                            let op = FileOp::Write { offset, data: rec };
                            let mut view = ctx.dma_view(pasid);
                            match client.submit(&mut view, &op, 8) {
                                Ok(head) => {
                                    self.inflight.insert(
                                        head,
                                        Pending::Put {
                                            port: src,
                                            id,
                                            key,
                                            value,
                                        },
                                    );
                                    submitted = true;
                                }
                                Err(_) => {
                                    // Engine state already advanced; the log
                                    // hole is tolerated (it will re-append on
                                    // retry). Report busy.
                                    self.stats.shed += 1;
                                    if let Some(met) = &self.met {
                                        met.shed.incr();
                                    }
                                    let depth = (self.backlog.len() + self.inflight.len()) as u32;
                                    Self::respond(
                                        ctx,
                                        out,
                                        src,
                                        id,
                                        KvsStatus::Busy,
                                        &depth.to_le_bytes(),
                                    );
                                }
                            }
                        }
                        Err(_) => {
                            Self::respond(ctx, out, src, id, KvsStatus::Error, &[]);
                        }
                    }
                }
                KvsRequest::Delete { id, key } => {
                    self.cache.remove(&key);
                    match self.engine.delete(&key) {
                        Ok(Some((offset, rec))) => {
                            let op = FileOp::Write { offset, data: rec };
                            let mut view = ctx.dma_view(pasid);
                            match client.submit(&mut view, &op, 8) {
                                Ok(head) => {
                                    self.inflight
                                        .insert(head, Pending::Delete { port: src, id });
                                    submitted = true;
                                }
                                Err(_) => {
                                    self.stats.shed += 1;
                                    if let Some(met) = &self.met {
                                        met.shed.incr();
                                    }
                                    let depth = (self.backlog.len() + self.inflight.len()) as u32;
                                    Self::respond(
                                        ctx,
                                        out,
                                        src,
                                        id,
                                        KvsStatus::Busy,
                                        &depth.to_le_bytes(),
                                    );
                                }
                            }
                        }
                        Ok(None) => {
                            self.stats.deletes += 1;
                            if let Some(met) = &self.met {
                                met.deletes.incr();
                            }
                            self.stats.misses += 1;
                            if let Some(met) = &self.met {
                                met.misses.incr();
                            }
                            Self::respond(ctx, out, src, id, KvsStatus::NotFound, &[]);
                        }
                        Err(_) => {
                            Self::respond(ctx, out, src, id, KvsStatus::Error, &[]);
                        }
                    }
                }
            }
        }
        if submitted {
            ctx.doorbell(target, conn, DOORBELL_WORK);
        }
    }

    /// Issues index-rebuild reads while queue space allows.
    fn issue_rebuild_reads(&mut self, ctx: &mut DeviceCtx<'_>) {
        let Some(session) = self.session.as_mut() else {
            return;
        };
        let pasid = self.pasid;
        let target = session.target();
        let conn = session.conn();
        let mut issued = false;
        if let Some((client, _)) = session.client_mut() {
            while self.rebuild_next < self.file_size && client.can_submit() {
                let len = REBUILD_CHUNK.min((self.file_size - self.rebuild_next) as u32);
                let op = FileOp::Read {
                    offset: self.rebuild_next,
                    len,
                };
                let mut view = ctx.dma_view(pasid);
                match client.submit(&mut view, &op, len) {
                    Ok(head) => {
                        self.inflight.insert(head, Pending::Rebuild { len });
                        self.rebuild_next += len as u64;
                        self.rebuild_inflight += 1;
                        issued = true;
                    }
                    Err(_) => break,
                }
            }
        }
        if issued {
            ctx.doorbell(target, conn, DOORBELL_WORK);
        }
    }

    /// Pops completions one at a time into `comp_buf` and answers each.
    /// Event and response order is identical to the old collect-then-process
    /// shape: completions come off the same virtqueue in the same order, and
    /// nothing here submits new work mid-loop.
    fn drain_completions(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        out: &mut Vec<(PortId, Bytes)>,
        comp_buf: &mut Vec<u8>,
    ) {
        let pasid = self.pasid;
        loop {
            // Re-borrow the session each iteration: the arms below need the
            // rest of `self` (stats, cache, scanner) between pops.
            let Some(session) = self.session.as_mut() else {
                return;
            };
            let Some((client, _)) = session.client_mut() else {
                return;
            };
            let popped = {
                let mut view = ctx.dma_view(pasid);
                client.next_completion(&mut view, comp_buf)
            };
            let (head, status) = match popped {
                Ok(Some(c)) => c,
                Ok(None) => return,
                Err(_) => {
                    self.state = ServerState::Failed;
                    return;
                }
            };
            let Some(pending) = self.inflight.remove(&head) else {
                continue;
            };
            match pending {
                Pending::Get { port, id } => {
                    self.stats.gets += 1;
                    if let Some(met) = &self.met {
                        met.gets.incr();
                    }
                    if status == FileStatus::Ok {
                        Self::respond(ctx, out, port, id, KvsStatus::Ok, comp_buf);
                    } else {
                        Self::respond(ctx, out, port, id, KvsStatus::Error, &[]);
                    }
                }
                Pending::Put {
                    port,
                    id,
                    key,
                    value,
                } => {
                    self.stats.puts += 1;
                    if let Some(met) = &self.met {
                        met.puts.incr();
                    }
                    if status == FileStatus::Ok {
                        self.cache.insert(&key, value);
                        Self::respond(ctx, out, port, id, KvsStatus::Ok, &[]);
                    } else {
                        Self::respond(ctx, out, port, id, KvsStatus::Error, &[]);
                    }
                }
                Pending::Delete { port, id } => {
                    self.stats.deletes += 1;
                    if let Some(met) = &self.met {
                        met.deletes.incr();
                    }
                    let st = if status == FileStatus::Ok {
                        KvsStatus::Ok
                    } else {
                        KvsStatus::Error
                    };
                    Self::respond(ctx, out, port, id, st, &[]);
                }
                Pending::Rebuild { len } => {
                    self.rebuild_inflight -= 1;
                    if status == FileStatus::Ok && comp_buf.len() == len as usize {
                        if self.scanner.feed(&mut self.engine, comp_buf).is_err() {
                            self.state = ServerState::Failed;
                            return;
                        }
                    } else {
                        self.state = ServerState::Failed;
                        return;
                    }
                }
            }
        }
    }

    /// Drains storage completions, producing network responses.
    fn drain(&mut self, ctx: &mut DeviceCtx<'_>, out: &mut Vec<(PortId, Bytes)>) {
        // Named sub-scope for the E9 attribution table.
        let _sp = profile::span("kvs.server.drain");
        if self.session.is_none() {
            return;
        }
        // Stream completions one at a time through the reusable payload
        // buffer instead of materializing a Vec of owned payloads. The
        // buffer is lent out for the loop so `self` stays borrowable.
        let mut comp_buf = std::mem::take(&mut self.comp_buf);
        self.drain_completions(ctx, out, &mut comp_buf);
        self.comp_buf = comp_buf;
        if self.state == ServerState::Rebuilding {
            if self.rebuild_next >= self.file_size && self.rebuild_inflight == 0 {
                self.state = ServerState::Ready;
                self.recovering = false;
            } else {
                self.issue_rebuild_reads(ctx);
            }
        } else if self.state == ServerState::Ready && !self.backlog.is_empty() {
            self.pump(ctx, out);
        }
    }

    /// Whether the underlying session is healthy.
    pub fn session_state(&self) -> Option<SessionState> {
        self.session.as_ref().map(|s| s.state())
    }

    fn note_unavailable(&mut self) {
        self.stats.unavailable += 1;
        if let Some(met) = &self.met {
            met.unavailable.incr();
        }
    }

    /// Fails over after losing a backing resource: answers every queued and
    /// in-flight request with an explicit [`KvsStatus::Unavailable`] (instead
    /// of wedging them forever), drops the dead session, resets the index,
    /// and re-enters the discovery pipeline from the top. When the SSD comes
    /// back (e.g. after a bus-initiated reset in E4), discovery finds it
    /// again and the Figure-2 setup + log rebuild replays, returning the
    /// server to `Ready` with no outside intervention.
    fn restart(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        monitor: &mut Monitor,
        out: &mut Vec<(PortId, Bytes)>,
    ) {
        self.stats.failures += 1;
        if let Some(met) = &self.met {
            met.restarts.incr();
        }
        // Fail the in-flight storage ops. Sorted by descriptor head so the
        // response order is deterministic (HashMap iteration is not).
        let mut heads: Vec<u16> = self.inflight.keys().copied().collect();
        heads.sort_unstable();
        for head in heads {
            let (port, id) = match self.inflight.remove(&head) {
                Some(Pending::Get { port, id })
                | Some(Pending::Delete { port, id })
                | Some(Pending::Put { port, id, .. }) => (port, id),
                Some(Pending::Rebuild { .. }) | None => continue,
            };
            self.note_unavailable();
            Self::respond(ctx, out, port, id, KvsStatus::Unavailable, &[]);
        }
        self.inflight.clear();
        // Fail the backlog in arrival order.
        while let Some((port, req)) = self.backlog.pop_front() {
            self.note_unavailable();
            Self::respond(ctx, out, port, req.id(), KvsStatus::Unavailable, &[]);
        }
        // Drop the dead session and the (now untrusted) index; the rebuild
        // scan will reconstruct it from the log on reconnect.
        self.session = None;
        self.engine = KvEngine::new();
        self.scanner = LogScanner::new();
        self.file_size = 0;
        self.rebuild_next = 0;
        self.rebuild_inflight = 0;
        self.recovering = true;
        self.generation += 1;
        match self.config.memctl {
            Some(dev) => {
                self.memctl = Some(dev);
                self.state = ServerState::FindingFile;
                self.file_op = monitor.discover(ctx, &self.config.file_pattern);
            }
            None => {
                self.state = ServerState::FindingMemory;
                self.mem_op = monitor.discover(ctx, "memory");
            }
        }
    }
}

fn server_state_tag(s: ServerState) -> u8 {
    match s {
        ServerState::Boot => 0,
        ServerState::FindingMemory => 1,
        ServerState::FindingFile => 2,
        ServerState::Connecting => 3,
        ServerState::Rebuilding => 4,
        ServerState::Ready => 5,
        ServerState::Failed => 6,
    }
}

fn server_state_from_tag(
    r: &mut lastcpu_snap::SnapReader<'_>,
    tag: u8,
) -> lastcpu_snap::Result<ServerState> {
    Ok(match tag {
        0 => ServerState::Boot,
        1 => ServerState::FindingMemory,
        2 => ServerState::FindingFile,
        3 => ServerState::Connecting,
        4 => ServerState::Rebuilding,
        5 => ServerState::Ready,
        6 => ServerState::Failed,
        t => return Err(r.corrupt(format!("unknown server state tag {t}"))),
    })
}

impl Pending {
    fn snap_encode(&self, w: &mut lastcpu_snap::SnapWriter) {
        match self {
            Pending::Get { port, id } => {
                w.put_u8(0);
                w.put_u32(port.0);
                w.put_u64(*id);
            }
            Pending::Put {
                port,
                id,
                key,
                value,
            } => {
                w.put_u8(1);
                w.put_u32(port.0);
                w.put_u64(*id);
                w.put_bytes(key);
                w.put_bytes(value);
            }
            Pending::Delete { port, id } => {
                w.put_u8(2);
                w.put_u32(port.0);
                w.put_u64(*id);
            }
            Pending::Rebuild { len } => {
                w.put_u8(3);
                w.put_u32(*len);
            }
        }
    }

    fn snap_decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<Pending> {
        Ok(match r.u8()? {
            0 => Pending::Get {
                port: PortId(r.u32()?),
                id: r.u64()?,
            },
            1 => Pending::Put {
                port: PortId(r.u32()?),
                id: r.u64()?,
                key: r.bytes()?,
                value: r.bytes()?,
            },
            2 => Pending::Delete {
                port: PortId(r.u32()?),
                id: r.u64()?,
            },
            3 => Pending::Rebuild { len: r.u32()? },
            t => return Err(r.corrupt(format!("unknown pending-op tag {t}"))),
        })
    }
}

impl lastcpu_snap::Snapshot for ValueCache {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_len(self.capacity);
        // LRU order is semantic (eviction picks the front), so entries are
        // written in `order`, not sorted; `order` holds exactly the map keys.
        w.put_len(self.order.len());
        for k in &self.order {
            w.put_bytes(k);
            w.put_bytes(&self.map[k]);
        }
    }
}

impl lastcpu_snap::Restore for ValueCache {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.capacity = r.len()?;
        let n = r.len()?;
        if n > self.capacity {
            return Err(r.corrupt(format!(
                "cache holds {n} entries but capacity is {}",
                self.capacity
            )));
        }
        self.map = DetHashMap::default();
        self.order = VecDeque::with_capacity(n);
        for _ in 0..n {
            let k = r.bytes()?;
            let v = r.bytes()?;
            self.order.push_back(k.clone());
            self.map.insert(k, v);
        }
        Ok(())
    }
}

impl lastcpu_snap::Snapshot for KvsServer {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_str(&self.config.file_pattern);
        w.put_opt(self.config.memctl.as_ref(), |w, d| w.put_u32(d.0));
        w.put_u128(self.config.token.0);
        w.put_u64(self.config.va_base);
        w.put_u16(self.config.queue_size);
        w.put_len(self.config.cache_entries);
        w.put_u64(self.config.per_request_cost.as_nanos());
        w.put_u32(self.pasid.0);
        w.put_u8(server_state_tag(self.state));
        self.engine.snapshot(w);
        self.scanner.snapshot(w);
        w.put_opt(self.memctl.as_ref(), |w, d| w.put_u32(d.0));
        w.put_u64(self.mem_op);
        w.put_u64(self.file_op);
        w.put_opt(self.session.as_ref(), |w, s| s.snapshot(w));
        w.put_u64(self.file_size);
        w.put_u64(self.rebuild_next);
        w.put_u64(self.rebuild_inflight);
        let mut slots: Vec<u16> = self.inflight.keys().copied().collect();
        slots.sort_unstable();
        w.put_len(slots.len());
        for s in slots {
            w.put_u16(s);
            self.inflight[&s].snap_encode(w);
        }
        w.put_len(self.backlog.len());
        for (port, req) in &self.backlog {
            w.put_u32(port.0);
            w.put_bytes(&req.encode());
        }
        self.cache.snapshot(w);
        w.put_u64(self.stats.gets);
        w.put_u64(self.stats.puts);
        w.put_u64(self.stats.deletes);
        w.put_u64(self.stats.cache_hits);
        w.put_u64(self.stats.fast_gets);
        w.put_u64(self.stats.shed);
        w.put_u64(self.stats.misses);
        w.put_u64(self.stats.failures);
        w.put_u64(self.stats.unavailable);
        w.put_bool(self.recovering);
        w.put_u64(self.generation);
        w.put_bool(self.fast_path);
        // Excluded: `met` (live MetricsHub handles, owned by the hub's own
        // section) and `comp_buf` (reused scratch, contents meaningless
        // between events).
    }
}

impl lastcpu_snap::Restore for KvsServer {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.config.file_pattern = r.str()?;
        self.config.memctl = r.opt(|r| Ok(DeviceId(r.u32()?)))?;
        self.config.token = Token(r.u128()?);
        self.config.va_base = r.u64()?;
        self.config.queue_size = r.u16()?;
        self.config.cache_entries = r.len()?;
        self.config.per_request_cost = SimDuration::from_nanos(r.u64()?);
        self.pasid = Pasid(r.u32()?);
        let tag = r.u8()?;
        self.state = server_state_from_tag(r, tag)?;
        self.engine.restore(r)?;
        self.scanner.restore(r)?;
        self.memctl = r.opt(|r| Ok(DeviceId(r.u32()?)))?;
        self.mem_op = r.u64()?;
        self.file_op = r.u64()?;
        self.session = r.opt(|r| {
            let mut s = FileSession::new(
                DeviceId(0),
                DeviceId(0),
                lastcpu_bus::ServiceId(0),
                Token::NONE,
                Pasid(0),
                0,
                1,
            );
            s.restore(r)?;
            Ok(s)
        })?;
        self.file_size = r.u64()?;
        self.rebuild_next = r.u64()?;
        self.rebuild_inflight = r.u64()?;
        let n = r.len()?;
        self.inflight = DetHashMap::default();
        for _ in 0..n {
            let slot = r.u16()?;
            let p = Pending::snap_decode(r)?;
            self.inflight.insert(slot, p);
        }
        let n = r.len()?;
        self.backlog = VecDeque::with_capacity(n);
        for _ in 0..n {
            let port = PortId(r.u32()?);
            let body = r.bytes()?;
            let req = KvsRequest::decode(&body)
                .ok_or_else(|| r.corrupt("undecodable backlogged request"))?;
            self.backlog.push_back((port, req));
        }
        self.cache.restore(r)?;
        self.stats.gets = r.u64()?;
        self.stats.puts = r.u64()?;
        self.stats.deletes = r.u64()?;
        self.stats.cache_hits = r.u64()?;
        self.stats.fast_gets = r.u64()?;
        self.stats.shed = r.u64()?;
        self.stats.misses = r.u64()?;
        self.stats.failures = r.u64()?;
        self.stats.unavailable = r.u64()?;
        self.recovering = r.bool()?;
        self.generation = r.u64()?;
        self.fast_path = r.bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::KvsResponse;

    #[test]
    fn value_cache_lru_semantics() {
        let mut c = ValueCache::new(2);
        c.insert(b"a", vec![1]);
        c.insert(b"b", vec![2]);
        c.insert(b"c", vec![3]); // evicts a
        assert_eq!(c.get(b"a"), None);
        assert_eq!(c.get(b"b").cloned(), Some(vec![2]));
        assert_eq!(c.get(b"c").cloned(), Some(vec![3]));
        c.remove(b"b");
        assert_eq!(c.get(b"b"), None);
        // Updating an existing key does not evict.
        c.insert(b"c", vec![9]);
        assert_eq!(c.get(b"c").cloned(), Some(vec![9]));
    }

    #[test]
    fn zero_capacity_cache_stores_nothing() {
        let mut c = ValueCache::new(0);
        c.insert(b"a", vec![1]);
        assert_eq!(c.get(b"a"), None);
    }

    #[test]
    fn server_starts_in_boot() {
        let s = KvsServer::new(ServerConfig::default(), Pasid(1));
        assert_eq!(s.state(), ServerState::Boot);
        assert_eq!(s.key_count(), 0);
    }

    mod degradation {
        use super::*;
        use lastcpu_bus::CorrId;
        use lastcpu_iommu::Iommu;
        use lastcpu_mem::Dram;
        use lastcpu_sim::{DetRng, MetricsHub, SimTime};

        struct Fix {
            iommu: Iommu,
            dram: Dram,
            rng: DetRng,
            req: u64,
            stats: MetricsHub,
        }

        impl Fix {
            fn new() -> Self {
                Fix {
                    iommu: Iommu::new(8),
                    dram: Dram::new(1 << 20),
                    rng: DetRng::new(11),
                    req: 0,
                    stats: MetricsHub::new(),
                }
            }

            fn ctx(&mut self) -> DeviceCtx<'_> {
                DeviceCtx::new(
                    SimTime::ZERO,
                    DeviceId(9),
                    Some(PortId(3)),
                    &mut self.iommu,
                    &mut self.dram,
                    &mut self.rng,
                    &mut self.req,
                    CorrId::NONE,
                    &self.stats,
                )
            }
        }

        #[test]
        fn restart_fails_over_queued_work_and_reenters_discovery() {
            let mut fix = Fix::new();
            let mut monitor = Monitor::new();
            let mut server = KvsServer::new(ServerConfig::default(), Pasid(1));
            let mut ctx = fix.ctx();
            server.start(&mut ctx, &mut monitor);
            assert_eq!(server.state(), ServerState::FindingMemory);
            // Pretend the server got to Ready with work queued and in flight,
            // then the backing SSD died.
            server.state = ServerState::Ready;
            server.backlog.push_back((
                PortId(7),
                KvsRequest::Get {
                    id: 1,
                    key: b"k".to_vec(),
                },
            ));
            server.inflight.insert(
                4,
                Pending::Get {
                    port: PortId(7),
                    id: 2,
                },
            );
            let mut out = Vec::new();
            server.restart(&mut ctx, &mut monitor, &mut out);
            // Both the in-flight op and the backlogged request were answered
            // with an explicit Unavailable instead of being wedged.
            assert_eq!(out.len(), 2);
            for (_, bytes) in &out {
                let resp = KvsResponse::decode(bytes).unwrap();
                assert_eq!(resp.status, KvsStatus::Unavailable);
            }
            assert!(server.inflight.is_empty());
            assert!(server.backlog.is_empty());
            assert!(server.session.is_none());
            assert!(server.recovering);
            assert_eq!(server.state(), ServerState::FindingMemory);
            assert_eq!(server.stats().failures, 1);
            assert_eq!(server.stats().unavailable, 2);
        }

        #[test]
        fn requests_during_recovery_get_unavailable_not_busy() {
            let mut fix = Fix::new();
            let mut monitor = Monitor::new();
            let mut server = KvsServer::new(ServerConfig::default(), Pasid(1));
            let mut ctx = fix.ctx();
            server.start(&mut ctx, &mut monitor);
            // Before any failure: still booting => Busy.
            let mut out = Vec::new();
            server.on_request(
                &mut ctx,
                PortId(7),
                KvsRequest::Get {
                    id: 5,
                    key: b"k".to_vec(),
                },
                &mut out,
            );
            assert_eq!(
                KvsResponse::decode(&out[0].1).unwrap().status,
                KvsStatus::Busy
            );
            // After a failure-triggered restart: recovering => Unavailable.
            let mut sink = Vec::new();
            server.restart(&mut ctx, &mut monitor, &mut sink);
            let mut out = Vec::new();
            server.on_request(
                &mut ctx,
                PortId(7),
                KvsRequest::Get {
                    id: 6,
                    key: b"k".to_vec(),
                },
                &mut out,
            );
            assert_eq!(
                KvsResponse::decode(&out[0].1).unwrap().status,
                KvsStatus::Unavailable
            );
            // Reaching Ready clears the recovering flag.
            server.state = ServerState::Rebuilding;
            server.file_size = 0;
            let mut out2 = Vec::new();
            server.drain(&mut ctx, &mut out2); // no session: early return keeps flag
            assert!(server.recovering);
        }

        #[test]
        fn busy_responses_report_queue_depth() {
            let mut fix = Fix::new();
            let mut monitor = Monitor::new();
            let mut server = KvsServer::new(ServerConfig::default(), Pasid(1));
            let mut ctx = fix.ctx();
            server.start(&mut ctx, &mut monitor);
            // Fake a loaded Ready server: a full backlog plus in-flight work.
            server.state = ServerState::Ready;
            for i in 0..MAX_BACKLOG {
                server.backlog.push_back((
                    PortId(7),
                    KvsRequest::Get {
                        id: i as u64,
                        key: b"k".to_vec(),
                    },
                ));
            }
            server.inflight.insert(
                4,
                Pending::Get {
                    port: PortId(7),
                    id: 9000,
                },
            );
            let mut out = Vec::new();
            server.on_request(
                &mut ctx,
                PortId(7),
                KvsRequest::Get {
                    id: 9001,
                    key: b"k".to_vec(),
                },
                &mut out,
            );
            let resp = KvsResponse::decode(&out[0].1).unwrap();
            assert_eq!(resp.status, KvsStatus::Busy);
            assert_eq!(resp.busy_depth(), Some(MAX_BACKLOG as u32 + 1));
        }
    }
}
