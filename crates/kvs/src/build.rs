//! One-call assembly of the two KVS deployments.

use lastcpu_baseline::{CpuDevice, DumbNic};
use lastcpu_core::{DeviceHandle, System, SystemConfig};
use lastcpu_devices::flash::{NandChip, NandConfig};
use lastcpu_devices::fs::FlashFs;
use lastcpu_devices::ftl::Ftl;
use lastcpu_devices::nic::SmartNic;
use lastcpu_devices::ssd::{SmartSsd, SsdConfig};
use lastcpu_fabric::{Fabric, FabricConfig, MachineId};
use lastcpu_mem::Pasid;
use lastcpu_net::PortId;

use crate::app::KvsNicApp;
use crate::cpu_app::KvsCpuApp;
use crate::router::{RetryPolicy, RouterConfig, ShardRouterHost};
use crate::server::ServerConfig;

/// An assembled machine running the KVS.
pub struct KvsSetup {
    /// The machine (not yet powered on).
    pub system: System,
    /// The device processing KVS requests (smart NIC or CPU).
    pub frontend: DeviceHandle,
    /// The storage device.
    pub ssd: DeviceHandle,
    /// The network port clients should send to.
    pub kvs_port: PortId,
}

/// The KVS data file path.
pub const KVS_FILE: &str = "/data/kv.db";

fn kvs_fs(nand: NandConfig) -> FlashFs {
    let mut fs = FlashFs::format(Ftl::new(NandChip::new(nand)));
    fs.create(KVS_FILE).expect("fresh filesystem");
    fs
}

/// Default flash geometry for KVS experiments (64 MiB raw).
pub fn default_nand() -> NandConfig {
    NandConfig {
        blocks: 256,
        pages_per_block: 64,
        page_size: 4096,
        max_erase_cycles: u32::MAX,
        ..NandConfig::default()
    }
}

/// Builds the CPU-less deployment (§3): KVS on a smart NIC, data on a smart
/// SSD, memory controller + system bus providing the OS functions.
pub fn build_cpuless_kvs(
    sys_config: SystemConfig,
    ssd_config: SsdConfig,
    mut server_config: ServerConfig,
) -> KvsSetup {
    let mut system = System::new(sys_config);
    system.add_memctl("memctl0");
    let mut ssd_config = ssd_config;
    if !ssd_config.exports.contains(&KVS_FILE.to_string()) {
        ssd_config.exports.push(KVS_FILE.into());
    }
    let ssd = system.add_device(Box::new(SmartSsd::new(
        "ssd0",
        kvs_fs(default_nand()),
        ssd_config,
    )));
    server_config.memctl = None; // discover it, as a self-managing device must
    let nic = system.add_net_device(Box::new(SmartNic::new(
        "nic0",
        // The application's address space is identified by the NIC's bus
        // address — one app, one PASID (§2.2).
        KvsNicApp::new(server_config, Pasid(ssd.id.0 + 2)),
    )));
    let kvs_port = system.device_port(nic).expect("NIC has a port");
    KvsSetup {
        system,
        frontend: nic,
        ssd,
        kvs_port,
    }
}

/// Builds the conventional deployment: KVS on the CPU behind a dumb NIC;
/// the same smart SSD serves storage so the storage service time is
/// identical — the measured difference is the kernel detour.
pub fn build_baseline_kvs(
    sys_config: SystemConfig,
    ssd_config: SsdConfig,
    mut server_config: ServerConfig,
) -> KvsSetup {
    let mut system = System::new(sys_config);
    let mut ssd_config = ssd_config;
    if !ssd_config.exports.contains(&KVS_FILE.to_string()) {
        ssd_config.exports.push(KVS_FILE.into());
    }
    let cpu = system.add_device_with("cpu0", "cpu", |id, dram| {
        server_config.memctl = Some(id); // the kernel is the memory manager
        Box::new(CpuDevice::new(
            "cpu0",
            id,
            dram,
            KvsCpuApp::new(server_config, Pasid(id.0)),
        ))
    });
    let ssd = system.add_device(Box::new(SmartSsd::new(
        "ssd0",
        kvs_fs(default_nand()),
        ssd_config,
    )));
    let nic = system.add_net_device(Box::new(DumbNic::new("nic0", cpu.id)));
    let kvs_port = system.device_port(nic).expect("NIC has a port");
    KvsSetup {
        system,
        frontend: cpu,
        ssd,
        kvs_port,
    }
}

/// Builds the *hybrid* deployment the paper's §5 asks about ("what would it
/// look like if we reintroduced a CPU to such a system?"): the KVS still
/// runs on a CPU behind a dumb NIC, but the control plane is the paper's —
/// a discrete memory-controller device and SSDP discovery; the CPU is just
/// another device and owns nothing. Comparing hybrid with the baseline
/// separates the two effects: decentralizing *control* (E1) vs offloading
/// the *data path* (E2).
pub fn build_hybrid_kvs(
    sys_config: SystemConfig,
    ssd_config: SsdConfig,
    mut server_config: ServerConfig,
) -> KvsSetup {
    let mut system = System::new(sys_config);
    let memctl = system.add_memctl("memctl0");
    let mut ssd_config = ssd_config;
    if !ssd_config.exports.contains(&KVS_FILE.to_string()) {
        ssd_config.exports.push(KVS_FILE.into());
    }
    // The app uses the *external* memory controller; the CPU's embedded
    // memory manager loses the controller-registration race at the bus and
    // is never consulted.
    server_config.memctl = Some(memctl.id);
    let cpu = system.add_device_with("cpu0", "cpu", |id, dram| {
        Box::new(CpuDevice::new(
            "cpu0",
            id,
            dram,
            KvsCpuApp::new(server_config, Pasid(id.0)),
        ))
    });
    let ssd = system.add_device(Box::new(SmartSsd::new(
        "ssd0",
        kvs_fs(default_nand()),
        ssd_config,
    )));
    let nic = system.add_net_device(Box::new(DumbNic::new("nic0", cpu.id)));
    let kvs_port = system.device_port(nic).expect("NIC has a port");
    KvsSetup {
        system,
        frontend: cpu,
        ssd,
        kvs_port,
    }
}

/// An assembled rack (E10): M CPU-less machines — each a full §3 deployment
/// with smart NIC + smart SSD + memory controller — co-simulated under one
/// [`Fabric`], each carrying a [`ShardRouterHost`] that shards the key space
/// over every KVS frontend in the rack with R-way replication.
///
/// The rack is not yet powered on; attach clients to
/// [`router_ports`](Self::router_ports) (via
/// `fabric.machine_mut(m).add_host(..)`), then call `fabric.power_on()`.
pub struct RackSetup {
    /// The co-simulation.
    pub fabric: Fabric,
    /// Machine ids in index order (`machines[i]` is `"m{i}"`).
    pub machines: Vec<MachineId>,
    /// Per-machine KVS frontend (the smart NIC).
    pub frontends: Vec<DeviceHandle>,
    /// Per-machine shard-router port — point clients here.
    pub router_ports: Vec<PortId>,
}

impl RackSetup {
    /// The shard router on machine `i`.
    pub fn router(&self, i: usize) -> &ShardRouterHost {
        self.fabric
            .machine(self.machines[i])
            .host_as(self.router_ports[i])
            .expect("router present")
    }

    /// The KVS frontend NIC on machine `i`.
    pub fn nic(&self, i: usize) -> &SmartNic<KvsNicApp> {
        self.fabric
            .machine(self.machines[i])
            .device_as(self.frontends[i])
            .expect("NIC present")
    }

    /// The acked-write audit at the heart of E10: keys some *alive* router
    /// acknowledged a PUT for that no alive machine's index holds. With
    /// R ≥ 2 this must stay 0 across any single machine crash; with R = 1
    /// a crash loses the victim's shard.
    pub fn lost_acked_keys(&self) -> usize {
        let alive: Vec<usize> = (0..self.machines.len())
            .filter(|&i| !self.fabric.is_dead(self.machines[i]))
            .collect();
        let mut lost = 0;
        for &r in &alive {
            for key in self.router(r).acked_put_keys() {
                if !alive.iter().any(|&i| self.nic(i).app().contains(key)) {
                    lost += 1;
                }
            }
        }
        lost
    }
}

/// Builds an E10 rack: `machines` CPU-less KVS deployments under one fabric,
/// with a shard router per machine configured for `replication`-way writes.
/// Machine `i` runs `base` with its seed offset by `i` (so machines draw
/// from distinct deterministic streams).
pub fn build_rack_kvs(
    fabric_config: FabricConfig,
    machines: usize,
    replication: usize,
    base: SystemConfig,
) -> RackSetup {
    build_rack_kvs_with_policy(
        fabric_config,
        machines,
        replication,
        base,
        RetryPolicy::default(),
    )
}

/// [`build_rack_kvs`] with an explicit router [`RetryPolicy`] — the E10
/// ablation hook. Every router in the rack runs the same policy arm.
pub fn build_rack_kvs_with_policy(
    fabric_config: FabricConfig,
    machines: usize,
    replication: usize,
    base: SystemConfig,
    policy: RetryPolicy,
) -> RackSetup {
    let mut fabric = Fabric::new(fabric_config);
    let mut ids = Vec::with_capacity(machines);
    let mut frontends = Vec::with_capacity(machines);
    let mut router_ports = Vec::with_capacity(machines);
    for i in 0..machines {
        let setup = build_cpuless_kvs(
            SystemConfig {
                seed: base.seed + i as u64,
                ..base.clone()
            },
            SsdConfig::default(),
            ServerConfig::default(),
        );
        frontends.push(setup.frontend);
        let m = fabric.add_machine(format!("m{i}"), setup.system);
        let dir_port = fabric.directory_port(m);
        let router_port = fabric
            .machine_mut(m)
            .add_host(Box::new(ShardRouterHost::new(RouterConfig {
                dir_port,
                replication,
                policy,
                name: format!("router{i}"),
                ..RouterConfig::default()
            })));
        ids.push(m);
        router_ports.push(router_port);
    }
    RackSetup {
        fabric,
        machines: ids,
        frontends,
        router_ports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{KvsClientHost, WorkloadConfig};
    use crate::server::ServerState;
    use lastcpu_sim::SimDuration;

    fn small_workload(prefix: &str) -> WorkloadConfig {
        WorkloadConfig {
            keys: 50,
            theta: 0.9,
            read_fraction: 0.8,
            value_size: 64,
            outstanding: 4,
            total_ops: 300,
            preload: true,
            stats_prefix: prefix.into(),
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn cpuless_kvs_serves_a_workload() {
        let mut setup = build_cpuless_kvs(
            SystemConfig::default(),
            SsdConfig::default(),
            ServerConfig::default(),
        );
        let port = setup.system.add_host(Box::new(KvsClientHost::new(
            setup.kvs_port,
            small_workload("c0"),
        )));
        setup.system.power_on();
        setup.system.run_for(SimDuration::from_secs(2));

        let client: &KvsClientHost = setup.system.host_as(port).unwrap();
        assert!(
            client.is_done(),
            "workload incomplete: {} ops; nic state {:?}",
            client.ops_done(),
            setup
                .system
                .device_as::<SmartNic<KvsNicApp>>(setup.frontend)
                .map(|n| n.app().state())
        );
        assert_eq!(client.errors(), 0);
        let nic: &SmartNic<KvsNicApp> = setup.system.device_as(setup.frontend).unwrap();
        assert_eq!(nic.app().state(), ServerState::Ready);
        assert_eq!(nic.app().key_count(), 50);
        let st = nic.app().stats();
        assert!(st.gets > 0 && st.puts >= 50);
        // Latencies were recorded.
        let h = setup.system.stats().histogram("c0.latency").unwrap();
        assert!(h.count() >= 250, "measured ops {}", h.count());
    }

    #[test]
    fn baseline_kvs_serves_a_workload_slower() {
        let mut cpuless = build_cpuless_kvs(
            SystemConfig::default(),
            SsdConfig::default(),
            ServerConfig::default(),
        );
        let p1 = cpuless.system.add_host(Box::new(KvsClientHost::new(
            cpuless.kvs_port,
            small_workload("c"),
        )));
        cpuless.system.power_on();
        cpuless.system.run_for(SimDuration::from_secs(2));
        let c1: &KvsClientHost = cpuless.system.host_as(p1).unwrap();
        assert!(c1.is_done(), "cpuless incomplete: {}", c1.ops_done());
        // Means are exact (sum/count); percentiles carry ~9% bucket error,
        // smaller than the ~10us kernel detour on a ~300us flash-bound op.
        let lat1 = cpuless
            .system
            .stats()
            .histogram("c.latency")
            .unwrap()
            .mean();

        let mut base = build_baseline_kvs(
            SystemConfig::default(),
            SsdConfig::default(),
            ServerConfig::default(),
        );
        let p2 = base.system.add_host(Box::new(KvsClientHost::new(
            base.kvs_port,
            small_workload("c"),
        )));
        base.system.power_on();
        base.system.run_for(SimDuration::from_secs(2));
        let c2: &KvsClientHost = base.system.host_as(p2).unwrap();
        assert!(c2.is_done(), "baseline incomplete: {}", c2.ops_done());
        assert_eq!(c2.errors(), 0);
        let lat2 = base.system.stats().histogram("c.latency").unwrap().mean();

        assert!(
            lat2 > lat1,
            "kernel detour must cost: baseline mean {lat2} vs cpu-less mean {lat1}"
        );
    }

    #[test]
    fn index_rebuild_recovers_data_across_restart() {
        // Run a workload, then build a *new* NIC app over the same file
        // contents and check the index rebuild path. We simulate restart by
        // running a second system whose SSD starts from the same flash
        // contents — here approximated by running load, then querying a
        // key that was only ever written via the log.
        let mut setup = build_cpuless_kvs(
            SystemConfig::default(),
            SsdConfig::default(),
            ServerConfig::default(),
        );
        let port = setup.system.add_host(Box::new(KvsClientHost::new(
            setup.kvs_port,
            WorkloadConfig {
                keys: 30,
                total_ops: 60,
                read_fraction: 1.0, // after preload, pure GETs
                ..small_workload("c1")
            },
        )));
        setup.system.power_on();
        setup.system.run_for(SimDuration::from_secs(2));
        let client: &KvsClientHost = setup.system.host_as(port).unwrap();
        assert!(client.is_done());
        assert_eq!(client.errors(), 0);
        // Pure-GET phase after preload: every measured GET hits the index
        // (the only NotFounds are the client's liveness probes).
        let nic: &SmartNic<KvsNicApp> = setup.system.device_as(setup.frontend).unwrap();
        let st = nic.app().stats();
        assert_eq!(nic.app().key_count(), 30);
        assert!(
            st.misses <= 2,
            "only probe misses allowed, got {}",
            st.misses
        );
        assert!(st.gets >= 60);
    }
}
