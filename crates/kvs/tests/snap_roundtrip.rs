//! Snapshot round-trip properties (DESIGN.md §14).
//!
//! The contract under test: for any reachable component state,
//! `snapshot → restore into a fresh instance → snapshot` is byte-identical,
//! and a corrupted checkpoint can never be mistaken for a valid one.

use lastcpu_core::SystemConfig;
use lastcpu_fabric::ring::HashRing;
use lastcpu_kvs::client::{KvsClientHost, WorkloadConfig};
use lastcpu_kvs::router::RouterConfig;
use lastcpu_kvs::server::ServerConfig;
use lastcpu_kvs::{build_cpuless_kvs, KvEngine, RetryPolicy, ShardRouterHost};
use lastcpu_net::PortId;
use lastcpu_sim::SimDuration;
use lastcpu_snap::{Checkpoint, Restore, SnapReader, Snapshot};
use proptest::prelude::*;

fn restore_fresh<T: Restore>(mut fresh: T, bytes: &[u8]) -> T {
    let mut r = SnapReader::new("test", bytes);
    fresh.restore(&mut r).expect("restore well-formed bytes");
    r.finish().expect("no trailing bytes");
    fresh
}

proptest! {
    /// KvEngine: any op history → snapshot/restore/snapshot byte-identical,
    /// and the restored index answers every key the original does.
    #[test]
    fn engine_roundtrip_is_byte_identical(
        ops in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..48), any::<bool>()),
            1..120,
        ),
    ) {
        let mut a = KvEngine::new();
        for (kb, value, del) in &ops {
            let key = format!("k{:03}", kb % 32).into_bytes();
            if *del {
                let _ = a.delete(&key);
            } else {
                let _ = a.put(&key, value);
            }
        }
        let bytes = a.snapshot_bytes();
        let b = restore_fresh(KvEngine::new(), &bytes);
        prop_assert_eq!(&bytes, &b.snapshot_bytes());
        prop_assert_eq!(a.len(), b.len());
        for kb in 0u8..32 {
            let key = format!("k{kb:03}").into_bytes();
            prop_assert_eq!(a.get(&key), b.get(&key));
        }
    }

    /// HashRing: any membership → byte-identical round trip, and the
    /// restored ring places every key exactly where the original does.
    #[test]
    fn hashring_roundtrip_preserves_placement(
        members in proptest::collection::vec(0u8..20, 0..12),
        vnodes in 1u32..96,
    ) {
        let mut a = HashRing::new(vnodes);
        for m in &members {
            a.insert(&format!("m{m}/kvs"));
        }
        let bytes = a.snapshot_bytes();
        let b = restore_fresh(HashRing::new(1), &bytes);
        prop_assert_eq!(&bytes, &b.snapshot_bytes());
        for i in 0u64..64 {
            let key = format!("key-{i:08}").into_bytes();
            prop_assert_eq!(a.replicas(&key, 3), b.replicas(&key, 3));
        }
    }

    /// ShardRouterHost: any configuration → byte-identical round trip into
    /// a router built with a *different* configuration.
    #[test]
    fn router_roundtrip_is_byte_identical(
        replication in 1usize..5,
        vnodes in 1u32..64,
        max_retries in 0u32..8,
        rtt_multiplier in 1u64..6,
        dir_port in any::<u32>(),
    ) {
        let a = ShardRouterHost::new(RouterConfig {
            dir_port: PortId(dir_port),
            replication,
            vnodes,
            max_retries,
            rtt_multiplier,
            policy: RetryPolicy::AdaptiveP2c,
            name: format!("router-{vnodes}"),
            ..RouterConfig::default()
        });
        let bytes = a.snapshot_bytes();
        let b = restore_fresh(
            ShardRouterHost::new(RouterConfig::default()),
            &bytes,
        );
        prop_assert_eq!(&bytes, &b.snapshot_bytes());
    }
}

/// Builds the single-machine CPU-less KVS with a driving client, runs it
/// `warm_us` of virtual time past power-on.
fn warm_system(seed: u64, warm_us: u64) -> lastcpu_kvs::KvsSetup {
    let mut setup = build_cpuless_kvs(
        SystemConfig {
            seed,
            trace: false,
            ..SystemConfig::default()
        },
        Default::default(),
        ServerConfig::default(),
    );
    setup.system.add_host(Box::new(KvsClientHost::new(
        setup.kvs_port,
        WorkloadConfig {
            keys: 40,
            value_size: 64,
            outstanding: 4,
            total_ops: 400,
            preload: true,
            ..WorkloadConfig::default()
        },
    )));
    setup.system.power_on();
    setup.system.run_for(SimDuration::from_micros(warm_us));
    setup
}

/// A mid-run system checkpoint survives encode/decode byte-exactly, and a
/// fresh system restored from it re-checkpoints to identical bytes.
#[test]
fn system_checkpoint_roundtrip_is_byte_identical() {
    let mut live = warm_system(0x51AB, 900);
    let ck = live.system.checkpoint("test").expect("checkpoint");
    let encoded = ck.encode();
    let reread = Checkpoint::decode(&encoded).expect("decode");
    assert_eq!(reread.encode(), encoded, "encode/decode must be stable");
    assert!(ck.diff(&reread).is_none());

    let mut fresh = warm_system(0x51AB, 0);
    fresh.system.restore_from(&ck).expect("restore + verify");
    let again = fresh.system.checkpoint("test").expect("re-checkpoint");
    assert_eq!(
        again.encode(),
        encoded,
        "restored system must re-checkpoint byte-identically"
    );

    // Both continue identically.
    live.system.run_for(SimDuration::from_micros(600));
    fresh.system.run_for(SimDuration::from_micros(600));
    let d_live = live.system.checkpoint("end").expect("checkpoint");
    let d_fresh = fresh.system.checkpoint("end").expect("checkpoint");
    assert!(
        d_live.diff(&d_fresh).is_none(),
        "continuation diverged: {:?}",
        d_live.diff(&d_fresh)
    );
}

proptest! {
    /// Flipping any single byte of an encoded checkpoint must fail loudly
    /// on decode, or — if the flip lands in the (checksum-free) manifest —
    /// produce a checkpoint whose digest differs. A corrupted checkpoint
    /// can never silently impersonate the original.
    #[test]
    fn corrupted_checkpoint_never_passes_silently(pos_seed in any::<u64>(), bit in 0u8..8) {
        let live = warm_system(0xC0DE, 400);
        let ck = live.system.checkpoint("corrupt-me").expect("checkpoint");
        let clean = ck.encode();
        let mut bent = clean.clone();
        let pos = (pos_seed % bent.len() as u64) as usize;
        bent[pos] ^= 1 << bit;
        match Checkpoint::decode(&bent) {
            Err(_) => {} // loud failure: Corrupt / ChecksumMismatch / VersionMismatch
            Ok(decoded) => {
                prop_assert!(
                    decoded.digest() != ck.digest(),
                    "byte {} flipped yet checkpoint decoded to an identical digest",
                    pos,
                );
            }
        }
    }
}

/// Truncation at every prefix length fails loudly.
#[test]
fn truncated_checkpoint_fails_loudly() {
    let live = warm_system(0x7259, 300);
    let clean = live.system.checkpoint("truncate-me").expect("ck").encode();
    for keep in [0, 1, 7, clean.len() / 2, clean.len() - 1] {
        assert!(
            Checkpoint::decode(&clean[..keep]).is_err(),
            "truncation to {keep} bytes must not decode"
        );
    }
}
