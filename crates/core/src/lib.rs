//! `lastcpu-core`: the emulated CPU-less machine.
//!
//! This crate is the paper's contribution assembled into a running system:
//! a machine with **no CPU**, in which self-managing devices (smart NIC,
//! smart SSD, FPGA accelerator, auth service, console), a discrete memory
//! controller and a privileged system-management bus cooperate to provide
//! every function a traditional OS kernel would — virtualization
//! (multiplexing + address translation), isolation, and resource
//! management (§1, contribution 1).
//!
//! [`System`] is the machine. It owns:
//!
//! - the virtual clock and event queue (`lastcpu-sim`);
//! - simulated DRAM (`lastcpu-mem`) — the data plane;
//! - one IOMMU per device (`lastcpu-iommu`) — programmed *only* by the bus;
//! - the system bus (`lastcpu-bus`) — the control plane;
//! - the devices (`lastcpu-devices`) and the memory-controller device
//!   ([`MemCtlDevice`] wrapping `lastcpu-memctl`);
//! - a network switch (`lastcpu-net`) with external [`NetHost`]s (client
//!   machines driving workloads).
//!
//! The simulator enforces the physical realities the paper leans on:
//!
//! - **Device serialization.** A device processes one thing at a time;
//!   events arriving while its firmware is busy wait until it is free.
//!   Contention on a shared device is therefore real, which is what the
//!   isolation experiment measures.
//! - **Plane separation.** Control messages pay bus latencies; doorbells
//!   and DMA pay data-plane latencies; the two do not queue behind each
//!   other (§2.3) — except in the deliberately conflated configuration the
//!   E6 experiment builds.
//! - **Ordering of privileged writes.** A `MapInstruction` programs the
//!   IOMMU one bus hop before the corresponding response can reach the
//!   requester, so a device can never observe "allocation succeeded" while
//!   its mapping is still pending.

pub mod config;
pub mod host;
pub mod memctl_dev;
pub mod system;

pub use config::SystemConfig;
pub use host::{HostAction, HostCtx, NetHost};
pub use memctl_dev::MemCtlDevice;
pub use system::{DeviceHandle, System, TunnelDelivery};

// Re-export the crates a system assembler needs, so downstream code can
// depend on `lastcpu-core` alone.
pub use lastcpu_bus as bus;
pub use lastcpu_devices as devices;
pub use lastcpu_iommu as iommu;
pub use lastcpu_mem as mem;
pub use lastcpu_memctl as memctl;
pub use lastcpu_net as net;
pub use lastcpu_sim as sim;
pub use lastcpu_virtio as virtio;
