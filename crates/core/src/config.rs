//! System-wide configuration.

use lastcpu_bus::{BusCostModel, RetryConfig, SecurityPolicy};
use lastcpu_net::NetCostModel;
use lastcpu_sim::{FaultPlan, QueueEngine, SimDuration};

/// Configuration of the emulated machine.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Deterministic seed: same seed, same run.
    pub seed: u64,
    /// Physical DRAM size in bytes.
    pub dram_bytes: u64,
    /// IOTLB entries per device IOMMU.
    pub iotlb_entries: usize,
    /// Control-plane cost model.
    pub bus_cost: BusCostModel,
    /// Network cost model.
    pub net_cost: NetCostModel,
    /// Latency of a doorbell (an MSI-like data-plane memory write, §2.3).
    pub doorbell_latency: SimDuration,
    /// Time a device takes to come back after a bus-initiated reset.
    pub reset_latency: SimDuration,
    /// How often the bus scans for lapsed heartbeats (`None` = disabled;
    /// most experiments disable it to avoid heartbeat noise in traces).
    pub liveness_interval: Option<SimDuration>,
    /// When true, control-plane messages are tunnelled over the *data*
    /// interconnect: every bus message also occupies the DRAM path for its
    /// wire length. This is the conflated-planes configuration that E6
    /// compares against the paper's split design (§2.3).
    pub conflate_planes: bool,
    /// Enable trace collection (protocol-step recording).
    pub trace: bool,
    /// Deterministic fault schedule (`None` = fault-free run). The plan's
    /// injections are turned into ordinary discrete events at
    /// [`power_on`](crate::System::power_on), so a faulty run replays
    /// bit-identically from its seed.
    pub fault_plan: Option<FaultPlan>,
    /// Per-request timeout + bounded-backoff retry for bus RPCs (`None` =
    /// disabled, the pre-fault-subsystem behaviour). Failure experiments
    /// enable this so lost/corrupted requests are retransmitted instead of
    /// wedging the requester.
    pub rpc_retry: Option<RetryConfig>,
    /// Which data structure backs the event queue. The timing wheel is the
    /// default; the binary heap is retained as the E9 `--engine heap`
    /// baseline. Both produce bit-identical runs.
    pub queue_engine: QueueEngine,
    /// Enable the E11 security audit: every DMA translation verdict and
    /// every privileged bus operation is recorded (`sec.*` metrics plus
    /// `security_denial` trace events), so denied accesses are *provably*
    /// denied. Off by default — the audit is observation, and performance
    /// experiments don't pay for it.
    pub security_audit: bool,
    /// Bus hardening policy (shadow-announce denial, control-flood
    /// limiting). The default policy changes nothing; see
    /// [`SecurityPolicy::hardened`] for the settings the E11 attack matrix
    /// runs under.
    pub security_policy: SecurityPolicy,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            seed: 0xC0FFEE,
            dram_bytes: 1 << 30, // 1 GiB (sparse; only touched pages cost host memory)
            iotlb_entries: 64,
            bus_cost: BusCostModel::default(),
            net_cost: NetCostModel::default(),
            doorbell_latency: SimDuration::from_nanos(250),
            reset_latency: SimDuration::from_micros(100),
            liveness_interval: None,
            conflate_planes: false,
            trace: true,
            fault_plan: None,
            rpc_retry: None,
            queue_engine: QueueEngine::Wheel,
            security_audit: false,
            security_policy: SecurityPolicy::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SystemConfig::default();
        assert!(c.dram_bytes >= 1 << 20);
        assert!(c.iotlb_entries > 0);
        assert!(c.doorbell_latency < c.bus_cost.unicast(64));
        assert!(!c.conflate_planes);
    }
}
