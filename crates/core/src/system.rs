//! The machine: devices + bus + memory + network under one event loop.

use std::any::Any;
use std::sync::Arc;

use lastcpu_bus::bus::DeviceState;
use lastcpu_bus::{
    BusEffect, ConnId, DeviceId, Dst, Envelope, Payload, RequestId, RetryStats, RetryVerdict,
    RpcTracker, Status, SystemBus,
};
use lastcpu_devices::device::{Action, Device, DeviceCtx};
use lastcpu_iommu::{AccessKind, Iommu, IommuFault, IommuFaultKind};
use lastcpu_mem::{Dram, MapError, Pasid, Perms, PhysAddr, VirtAddr, PAGE_SIZE};
use lastcpu_net::{Frame, PortId, Switch};
use lastcpu_sim::{
    profile, BufPool, CorrId, CounterHandle, DetHashMap, DetHashSet, DetRng, EventQueue,
    FaultEvent, FaultKind, GaugeHandle, HistogramHandle, MetricsHub, SimDuration, SimTime,
    TraceData, TraceSink,
};

use crate::config::SystemConfig;
use crate::host::{HostAction, HostCtx, NetHost};
use crate::memctl_dev::MemCtlDevice;

/// Handle to a device in the system (bus address + slot index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceHandle {
    /// The device's bus address.
    pub id: DeviceId,
    idx: usize,
}

/// Internal events.
enum Event {
    /// Power-on self-test of one device.
    Start(usize),
    /// A message reaches the bus for processing.
    ///
    /// `Arc`-shared so routing, fault filtering, and delivery pass one
    /// allocation around instead of deep-cloning the payload per hop.
    BusMsg(Arc<Envelope>),
    /// A message is delivered to a device.
    Deliver { idx: usize, env: Arc<Envelope> },
    /// A device timer fires.
    Timer {
        idx: usize,
        token: u64,
        corr: CorrId,
    },
    /// The bus writes a device's IOMMU (privileged, §2.2).
    Map {
        idx: usize,
        pasid: u32,
        va: u64,
        pa: u64,
        pages: u64,
        perms: u8,
        corr: CorrId,
    },
    /// The bus removes mappings from a device's IOMMU.
    Unmap {
        idx: usize,
        pasid: u32,
        va: u64,
        pages: u64,
        corr: CorrId,
    },
    /// A reset pulse reaches a device.
    Reset { idx: usize, corr: CorrId },
    /// Drain the next item from a device's ingress FIFO.
    InboxPop(usize),
    /// A frame reaches a switch port.
    NetDeliver {
        port: PortId,
        frame: Frame,
        corr: CorrId,
    },
    /// Power-on of one host.
    HostStart(usize),
    /// A host timer fires.
    HostTimer {
        hidx: usize,
        token: u64,
        corr: CorrId,
    },
    /// Periodic heartbeat scan.
    Liveness,
    /// A scheduled fault-plan injection fires (index into the plan).
    Fault(usize),
    /// Sweep the RPC tracker for lapsed reply deadlines.
    RetryCheck,
}

/// Maps an event to the profiling scope its handling is attributed to.
/// Grouped by mechanism (the attribution table wants "where do the
/// allocations come from", not one row per enum variant).
fn scope_of(ev: &Event) -> &'static str {
    match ev {
        Event::Start(_) | Event::Reset { .. } => "engine.lifecycle",
        Event::BusMsg(_) => "engine.bus_msg",
        Event::Deliver { .. } => "engine.deliver",
        Event::Timer { .. } => "engine.timer",
        Event::Map { .. } | Event::Unmap { .. } => "engine.map",
        Event::InboxPop(_) => "engine.inbox_pop",
        Event::NetDeliver { .. } => "engine.net_deliver",
        Event::HostStart(_) | Event::HostTimer { .. } => "engine.host",
        Event::Liveness | Event::Fault(_) | Event::RetryCheck => "engine.maintenance",
    }
}

/// A unit of work waiting in a device's ingress FIFO.
enum Work {
    Msg(Arc<Envelope>),
    Timer(u64, CorrId),
    Net(Frame, CorrId),
}

/// A frame that reached one of the machine's *tunnel ports* — switch ports
/// owned by an embedding rack fabric rather than by a local device or host.
/// The fabric drains these after every step and carries them to another
/// machine (or to the rack directory), preserving the correlation id so a
/// causal trace spans machines end to end.
#[derive(Debug, Clone)]
pub struct TunnelDelivery {
    /// When the frame finished traversing this machine's edge switch.
    pub at: SimTime,
    /// The tunnel port it was delivered to.
    pub port: PortId,
    /// The frame (its `src` is the local sender's port).
    pub frame: Frame,
    /// Correlation id of the activity the frame belongs to.
    pub corr: CorrId,
}

/// Bound on retained audit detail records (denials / privileged-op
/// verdicts) per audit when [`SystemConfig::security_audit`] is on. The
/// exact verdict *counters* are unbounded; only detail records are capped,
/// so an attacker cannot turn the audit into a memory-exhaustion vector.
const SEC_AUDIT_CAP: usize = 4096;

/// Pre-registered per-device metric handles (`{subsystem}.{name}.*` keys), so
/// hot-path updates are a `Cell` add with no map lookup.
struct SlotMetrics {
    msgs: CounterHandle,
    frames_rx: CounterHandle,
    inbox_depth: GaugeHandle,
    handler_ns: HistogramHandle,
    iommu_faults: CounterHandle,
    /// RPC retransmissions issued on behalf of this device.
    retries: CounterHandle,
    /// Down-to-re-registered latency of this device's recoveries.
    recovery_latency: HistogramHandle,
    /// DMA translations denied for this device (E11 security audit).
    sec_dma_denied: CounterHandle,
}

/// Maps a device kind string to the metric-key subsystem prefix.
fn subsystem_of(kind: &str) -> &'static str {
    match kind {
        "smart-nic" | "dumb-nic" => "nic",
        "smart-ssd" => "ssd",
        "fpga-accelerator" => "accel",
        "memory-controller" => "memctl",
        "cpu" => "cpu",
        _ => "device",
    }
}

fn slot_metrics(hub: &MetricsHub, kind: &str, name: &str) -> SlotMetrics {
    let sub = subsystem_of(kind);
    SlotMetrics {
        msgs: hub.counter_handle(&format!("{sub}.{name}.msgs")),
        frames_rx: hub.counter_handle(&format!("{sub}.{name}.frames_rx")),
        inbox_depth: hub.gauge_handle(&format!("{sub}.{name}.inbox_depth")),
        handler_ns: hub.histogram_handle(&format!("{sub}.{name}.handler_ns")),
        iommu_faults: hub.counter_handle(&format!("iommu.{name}.faults")),
        retries: hub.counter_handle(&format!("bus.{name}.retries")),
        recovery_latency: hub.histogram_handle(&format!("bus.{name}.recovery_latency")),
        sec_dma_denied: hub.counter_handle(&format!("sec.{name}.dma_denied")),
    }
}

/// Pre-registered system-wide metric handles.
struct SysMetrics {
    bus_messages: CounterHandle,
    pages_mapped: CounterHandle,
    pages_unmapped: CounterHandle,
    map_failures: CounterHandle,
    iommu_faults: CounterHandle,
    doorbells: CounterHandle,
    doorbells_coalesced: CounterHandle,
    device_resets: CounterHandle,
    link_control_msgs: CounterHandle,
    faults_injected: CounterHandle,
    msgs_dropped: CounterHandle,
    msgs_corrupted: CounterHandle,
    msgs_delayed: CounterHandle,
    rpc_retries: CounterHandle,
    rpc_give_ups: CounterHandle,
    /// E11 security audit: DMA translation verdicts.
    sec_dma_allowed: CounterHandle,
    sec_dma_denied: CounterHandle,
    /// E11 security audit: privileged bus-operation verdicts.
    sec_privops_allowed: CounterHandle,
    sec_privops_denied: CounterHandle,
    /// E11 security audit: control messages shed by the flood limiter.
    sec_flood_dropped: CounterHandle,
}

impl SysMetrics {
    fn register(hub: &MetricsHub) -> Self {
        SysMetrics {
            bus_messages: hub.counter_handle("bus.messages"),
            pages_mapped: hub.counter_handle("bus.pages_mapped"),
            pages_unmapped: hub.counter_handle("bus.pages_unmapped"),
            map_failures: hub.counter_handle("bus.map_failures"),
            iommu_faults: hub.counter_handle("iommu.faults"),
            doorbells: hub.counter_handle("system.doorbells"),
            doorbells_coalesced: hub.counter_handle("system.doorbells_coalesced"),
            device_resets: hub.counter_handle("system.device_resets"),
            link_control_msgs: hub.counter_handle("link.control_msgs"),
            faults_injected: hub.counter_handle("fault.injected"),
            msgs_dropped: hub.counter_handle("fault.msgs_dropped"),
            msgs_corrupted: hub.counter_handle("fault.msgs_corrupted"),
            msgs_delayed: hub.counter_handle("fault.msgs_delayed"),
            rpc_retries: hub.counter_handle("bus.rpc_retries"),
            rpc_give_ups: hub.counter_handle("bus.rpc_give_ups"),
            sec_dma_allowed: hub.counter_handle("sec.dma_allowed"),
            sec_dma_denied: hub.counter_handle("sec.dma_denied"),
            sec_privops_allowed: hub.counter_handle("sec.privops_allowed"),
            sec_privops_denied: hub.counter_handle("sec.privops_denied"),
            sec_flood_dropped: hub.counter_handle("sec.flood_dropped"),
        }
    }
}

struct Slot {
    id: DeviceId,
    device: Box<dyn Device>,
    iommu: Iommu,
    rng: DetRng,
    next_req: u64,
    port: Option<PortId>,
    busy_until: SimTime,
    halted: bool,
    /// A halted device that must not be revived by a bus reset.
    permanently_dead: bool,
    /// Ingress FIFO: work arriving while the firmware is busy queues here
    /// in arrival order. Without this, events rescheduled at `busy_until`
    /// would race to the back of the global event queue and a continuously
    /// loaded device could starve one peer's messages indefinitely.
    inbox: std::collections::VecDeque<Work>,
    /// Whether an `InboxPop` event is pending for this slot.
    pop_armed: bool,
    /// Per-device metric handles.
    met: SlotMetrics,
    /// Armed fault-injection state (all zero/idle on a fault-free run).
    faults: SlotFaults,
    /// Reusable action buffer, lent to each `DeviceCtx` and reclaimed after
    /// its effects apply, so steady-state dispatch allocates nothing.
    scratch_actions: Vec<Action>,
    /// Reusable fault buffer (same lifecycle as `scratch_actions`).
    scratch_faults: Vec<IommuFault>,
}

/// Per-slot fault-injection state, armed by [`Event::Fault`] and consumed
/// as messages touch the slot.
struct SlotFaults {
    /// Wire messages to silently discard.
    drop_rem: u32,
    /// Wire messages to bit-flip.
    corrupt_rem: u32,
    /// Deterministic stream for corruption bit choice (armed with the
    /// fault; falls back to a fixed stream if a corrupt fires unarmed).
    corrupt_rng: Option<DetRng>,
    /// Wire messages to delay.
    delay_rem: u32,
    /// Extra latency per delayed message.
    delay_extra: SimDuration,
    /// Service-time multiplier while `now < slow_until`.
    slow_factor: u32,
    /// End of the slow-down window.
    slow_until: SimTime,
    /// When the device went down (recovery-latency base); cleared when its
    /// re-registration `Hello` brings it back to `Alive`.
    down_since: Option<SimTime>,
}

impl Default for SlotFaults {
    fn default() -> Self {
        SlotFaults {
            drop_rem: 0,
            corrupt_rem: 0,
            corrupt_rng: None,
            delay_rem: 0,
            delay_extra: SimDuration::ZERO,
            slow_factor: 1,
            slow_until: SimTime::ZERO,
            down_since: None,
        }
    }
}

/// The RPC retry machinery (present when [`SystemConfig::rpc_retry`] is
/// set): the tracker itself, a dedicated jitter stream, and a dedupe guard
/// for the sweep event.
struct RpcState {
    tracker: RpcTracker,
    rng: DetRng,
    /// Time of the currently scheduled [`Event::RetryCheck`], if any.
    sweep_at: Option<SimTime>,
}

struct HostSlot {
    host: Box<dyn NetHost>,
    port: PortId,
    rng: DetRng,
    /// Reusable action buffer (see `Slot::scratch_actions`).
    scratch_actions: Vec<HostAction>,
}

/// Shared-interconnect state for the conflated-planes configuration (E6).
struct SharedLink {
    busy_until: SimTime,
    per_byte_ps: u64,
}

impl SharedLink {
    /// Serializes `bytes` through the link starting no earlier than `at`;
    /// returns the added queueing + occupancy delay.
    fn occupy(&mut self, at: SimTime, bytes: u64) -> SimDuration {
        let start = self.busy_until.max(at);
        let occupancy = SimDuration::from_nanos(bytes.saturating_mul(self.per_byte_ps) / 1000);
        self.busy_until = start + occupancy;
        self.busy_until.since(at)
    }
}

/// The emulated CPU-less machine.
///
/// # Examples
///
/// Building the smallest possible machine and running its power-on
/// sequence:
///
/// ```
/// use lastcpu_core::{System, SystemConfig};
/// use lastcpu_sim::SimDuration;
///
/// let mut sys = System::new(SystemConfig::default());
/// let _memctl = sys.add_memctl("memctl0");
/// sys.power_on();
/// sys.run_for(SimDuration::from_millis(1));
/// assert!(sys.bus().alive().count() == 1);
/// ```
pub struct System {
    config: SystemConfig,
    queue: EventQueue<Event>,
    bus: SystemBus,
    dram: Dram,
    slots: Vec<Slot>,
    by_id: DetHashMap<DeviceId, usize>,
    hosts: Vec<HostSlot>,
    switch: Switch,
    port_to_slot: DetHashMap<PortId, usize>,
    port_to_host: DetHashMap<PortId, usize>,
    trace: TraceSink,
    stats: MetricsHub,
    met: SysMetrics,
    root_rng: DetRng,
    /// Next correlation id to hand out (`0` is reserved for `CorrId::NONE`).
    next_corr: u64,
    shared_link: Option<SharedLink>,
    memctl_id: Option<DeviceId>,
    /// The fault plan's injections, sorted, indexed by [`Event::Fault`].
    fault_events: Vec<FaultEvent>,
    /// RPC timeout/retry machinery (when configured).
    rpc: Option<RpcState>,
    /// Switch ports owned by an embedding rack fabric (see
    /// [`System::add_tunnel_port`]).
    tunnel_ports: DetHashSet<PortId>,
    /// Frames delivered to tunnel ports, awaiting [`System::drain_tunnel`].
    tunnel_out: Vec<TunnelDelivery>,
    /// Payload-buffer pool for the zero-alloc delivery path. Devices and
    /// hosts encode into buffers drawn from here (via
    /// `DeviceCtx::take_buf` / `HostCtx::take_buf`); the storage recycles
    /// when the consuming endpoint drops the frame.
    pool: BufPool,
}

impl System {
    /// Creates an empty machine.
    pub fn new(config: SystemConfig) -> Self {
        let mut bus = SystemBus::new().with_cost_model(config.bus_cost);
        bus.set_security_policy(config.security_policy);
        if config.security_audit {
            bus.enable_audit(SEC_AUDIT_CAP);
        }
        let switch = Switch::new().with_cost_model(config.net_cost);
        let trace = if config.trace {
            TraceSink::default()
        } else {
            TraceSink::disabled()
        };
        let shared_link = config.conflate_planes.then_some(SharedLink {
            busy_until: SimTime::ZERO,
            per_byte_ps: 400,
        });
        let stats = MetricsHub::new();
        let met = SysMetrics::register(&stats);
        let root_rng = DetRng::new(config.seed);
        let fault_events = config
            .fault_plan
            .as_ref()
            .map(|p| p.events())
            .unwrap_or_default();
        let rpc = config.rpc_retry.map(|rc| RpcState {
            tracker: RpcTracker::new(rc),
            // `split` derives without advancing `root_rng`, so enabling
            // retries does not perturb the rest of a seeded run.
            rng: root_rng.split(0x5E7_127),
            sweep_at: None,
        });
        System {
            queue: EventQueue::with_engine(config.queue_engine),
            bus,
            dram: Dram::new(config.dram_bytes),
            slots: Vec::new(),
            by_id: DetHashMap::default(),
            hosts: Vec::new(),
            switch,
            port_to_slot: DetHashMap::default(),
            port_to_host: DetHashMap::default(),
            trace,
            stats,
            met,
            root_rng,
            next_corr: 1,
            shared_link,
            memctl_id: None,
            fault_events,
            rpc,
            tunnel_ports: DetHashSet::default(),
            tunnel_out: Vec::new(),
            pool: BufPool::new(),
            config,
        }
    }

    // --- Assembly -----------------------------------------------------

    /// Adds a device without a network port.
    pub fn add_device(&mut self, device: Box<dyn Device>) -> DeviceHandle {
        self.add_device_inner(device, false)
    }

    /// Adds a device with a switch port (smart NICs).
    pub fn add_net_device(&mut self, device: Box<dyn Device>) -> DeviceHandle {
        self.add_device_inner(device, true)
    }

    /// Adds a device whose constructor needs to know its own bus address
    /// and the machine's DRAM size (e.g. the baseline CPU, which embeds the
    /// memory manager).
    pub fn add_device_with(
        &mut self,
        name: &str,
        kind: &str,
        build: impl FnOnce(DeviceId, u64) -> Box<dyn Device>,
    ) -> DeviceHandle {
        let id = self.bus.attach(name, kind);
        let device = build(id, self.dram.size());
        let idx = self.slots.len();
        let met = slot_metrics(&self.stats, kind, name);
        self.slots.push(Slot {
            id,
            device,
            iommu: self.new_iommu(),
            rng: self.root_rng.split(id.0 as u64),
            next_req: 0,
            port: None,
            busy_until: SimTime::ZERO,
            halted: false,
            permanently_dead: false,
            inbox: std::collections::VecDeque::new(),
            pop_armed: false,
            met,
            faults: SlotFaults::default(),
            scratch_actions: Vec::new(),
            scratch_faults: Vec::new(),
        });
        self.by_id.insert(id, idx);
        DeviceHandle { id, idx }
    }

    /// Builds a per-device IOMMU honouring the machine's IOTLB size and,
    /// when [`SystemConfig::security_audit`] is set, the DMA audit.
    fn new_iommu(&self) -> Iommu {
        let mut mmu = Iommu::new(self.config.iotlb_entries);
        if self.config.security_audit {
            mmu.enable_audit(SEC_AUDIT_CAP);
        }
        mmu
    }

    fn add_device_inner(&mut self, device: Box<dyn Device>, with_port: bool) -> DeviceHandle {
        let id = self.bus.attach(device.name(), device.kind());
        let idx = self.slots.len();
        let met = slot_metrics(&self.stats, device.kind(), device.name());
        let port = with_port.then(|| {
            let p = self.switch.add_port();
            self.port_to_slot.insert(p, idx);
            p
        });
        self.slots.push(Slot {
            id,
            device,
            iommu: self.new_iommu(),
            rng: self.root_rng.split(id.0 as u64),
            next_req: 0,
            port,
            busy_until: SimTime::ZERO,
            halted: false,
            permanently_dead: false,
            inbox: std::collections::VecDeque::new(),
            pop_armed: false,
            met,
            faults: SlotFaults::default(),
            scratch_actions: Vec::new(),
            scratch_faults: Vec::new(),
        });
        self.by_id.insert(id, idx);
        DeviceHandle { id, idx }
    }

    /// Adds the memory-controller device sized to this machine's DRAM.
    pub fn add_memctl(&mut self, name: &str) -> DeviceHandle {
        self.add_memctl_with_config(name, lastcpu_memctl::MemCtlConfig::default())
    }

    /// Adds the memory controller with an explicit policy configuration
    /// (per-device quotas).
    pub fn add_memctl_with_config(
        &mut self,
        name: &str,
        config: lastcpu_memctl::MemCtlConfig,
    ) -> DeviceHandle {
        let id = self.bus.attach(name, "memory-controller");
        let idx = self.slots.len();
        let met = slot_metrics(&self.stats, "memory-controller", name);
        let dev = MemCtlDevice::with_config(name, id, self.dram.size(), config);
        self.slots.push(Slot {
            id,
            device: Box::new(dev),
            iommu: self.new_iommu(),
            rng: self.root_rng.split(id.0 as u64),
            next_req: 0,
            port: None,
            busy_until: SimTime::ZERO,
            halted: false,
            permanently_dead: false,
            inbox: std::collections::VecDeque::new(),
            pop_armed: false,
            met,
            faults: SlotFaults::default(),
            scratch_actions: Vec::new(),
            scratch_faults: Vec::new(),
        });
        self.by_id.insert(id, idx);
        self.memctl_id = Some(id);
        DeviceHandle { id, idx }
    }

    /// The memory controller's bus address, if one was added.
    pub fn memctl_id(&self) -> Option<DeviceId> {
        self.memctl_id
    }

    /// Aggregate RPC retry counters, when retries are enabled.
    pub fn rpc_stats(&self) -> Option<RetryStats> {
        self.rpc.as_ref().map(|r| r.tracker.stats())
    }

    /// Adds an external host machine; returns its switch port.
    pub fn add_host(&mut self, host: Box<dyn NetHost>) -> PortId {
        let port = self.switch.add_port();
        let hidx = self.hosts.len();
        let rng = self.root_rng.split(0x8000_0000 | hidx as u64);
        self.hosts.push(HostSlot {
            host,
            port,
            rng,
            scratch_actions: Vec::new(),
        });
        self.port_to_host.insert(port, hidx);
        port
    }

    /// The network port of a device, if it has one.
    pub fn device_port(&self, h: DeviceHandle) -> Option<PortId> {
        self.slots[h.idx].port
    }

    /// The network port of a device looked up by bus address (the rack
    /// fabric's directory resolves bus registry entries to ports this way).
    pub fn port_of(&self, id: DeviceId) -> Option<PortId> {
        self.by_id.get(&id).and_then(|&idx| self.slots[idx].port)
    }

    // --- Fabric embedding -------------------------------------------------
    //
    // A rack fabric (`lastcpu-fabric`) co-simulates many `System` machines
    // under one global clock. Each machine exposes *tunnel ports* — switch
    // ports owned by the fabric — plus fine-grained stepping so the fabric
    // can interleave machines deterministically.

    /// Adds a switch port owned by an embedding fabric. Frames delivered to
    /// it (after traversing this machine's edge switch like any other
    /// traffic) are exported via [`System::drain_tunnel`] instead of being
    /// handed to a device or host.
    pub fn add_tunnel_port(&mut self) -> PortId {
        let p = self.switch.add_port();
        self.tunnel_ports.insert(p);
        p
    }

    /// Takes the frames that reached tunnel ports since the last drain.
    pub fn drain_tunnel(&mut self) -> Vec<TunnelDelivery> {
        std::mem::take(&mut self.tunnel_out)
    }

    /// Moves the frames that reached tunnel ports into `out` (appended),
    /// reusing the caller's buffer instead of allocating a fresh `Vec` per
    /// drain. The fabric steps every machine once per scheduling round, so
    /// the per-round `drain_tunnel` allocation shows up at rack scale.
    pub fn drain_tunnel_into(&mut self, out: &mut Vec<TunnelDelivery>) {
        out.append(&mut self.tunnel_out);
    }

    /// Whether any tunnel deliveries are waiting to be drained.
    pub fn has_tunnel_out(&self) -> bool {
        !self.tunnel_out.is_empty()
    }

    /// The machine's payload-buffer pool (for diagnostics and the `--profile`
    /// straggler report).
    pub fn pool(&self) -> &BufPool {
        &self.pool
    }

    /// Injects a frame arriving from outside the machine (an inter-machine
    /// link). The frame enters this machine's edge switch at `at` and pays
    /// the ordinary store-and-forward costs to reach `frame.dst`; `corr` is
    /// preserved so causal traces span machines.
    pub fn inject_frame(&mut self, at: SimTime, frame: Frame, corr: CorrId) {
        let at = at.max(self.now());
        if self.trace.is_enabled() {
            self.trace.emit_data(
                at,
                "net",
                corr,
                TraceData::Text(format!(
                    "frame enters from fabric link for port {} ({} B)",
                    frame.dst.0,
                    frame.payload.len()
                )),
            );
        }
        self.route_frame(at, frame, corr);
    }

    /// The firing time of this machine's next pending event, if any. The
    /// fabric's global scheduler advances whichever machine is earliest.
    pub fn peek_next_at(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pops and handles exactly one event; returns its firing time. The
    /// fabric steps machines one event at a time so cross-machine causality
    /// is never reordered.
    pub fn step(&mut self) -> Option<SimTime> {
        let ev = {
            let _pop = profile::span("engine.pop");
            self.queue.pop()?
        };
        let at = ev.at;
        self.handle(at, ev.event);
        Some(at)
    }

    /// Rebases the correlation-id allocator to start at `base` (at least
    /// 1). The fabric gives every machine a disjoint namespace — machine
    /// `m` allocates from `(m+1) << 40` — so a correlation id is unique
    /// rack-wide and a Chrome trace merged across machines never aliases
    /// two activities.
    pub fn set_corr_base(&mut self, base: u64) {
        self.next_corr = base.max(1);
    }

    // --- Introspection --------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The system bus (registry, stats).
    pub fn bus(&self) -> &SystemBus {
        &self.bus
    }

    /// The system-wide metrics hub.
    pub fn stats(&self) -> &MetricsHub {
        &self.stats
    }

    /// The metrics hub, mutably (benches reset between runs).
    pub fn stats_mut(&mut self) -> &mut MetricsHub {
        &mut self.stats
    }

    /// The protocol trace.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Raises (or lowers) the trace sink's retention bound. Offline
    /// analyses that walk a whole run — e.g. [`lastcpu_sim::critpath`]
    /// over an E12 rack phase — call this before `power_on` so the default
    /// ring does not evict the records they join on.
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace.set_capacity(capacity);
    }

    /// DRAM (content inspection in tests).
    pub fn dram_mut(&mut self) -> &mut Dram {
        &mut self.dram
    }

    /// A device's IOMMU (inspection in tests and experiments).
    pub fn iommu(&self, h: DeviceHandle) -> &Iommu {
        &self.slots[h.idx].iommu
    }

    /// Typed access to a device.
    pub fn device_as<T: Device>(&self, h: DeviceHandle) -> Option<&T> {
        let dev: &dyn Any = self.slots[h.idx].device.as_ref();
        dev.downcast_ref::<T>()
    }

    /// Typed mutable access to a device.
    pub fn device_as_mut<T: Device>(&mut self, h: DeviceHandle) -> Option<&mut T> {
        let dev: &mut dyn Any = self.slots[h.idx].device.as_mut();
        dev.downcast_mut::<T>()
    }

    /// Typed access to a host by port.
    pub fn host_as<T: NetHost>(&self, port: PortId) -> Option<&T> {
        let hidx = *self.port_to_host.get(&port)?;
        let host: &dyn Any = self.hosts[hidx].host.as_ref();
        host.downcast_ref::<T>()
    }

    // --- Power & run ------------------------------------------------------

    /// Schedules power-on: every device and host runs its start hook with a
    /// small deterministic jitter (devices do not boot lockstep).
    pub fn power_on(&mut self) {
        for idx in 0..self.slots.len() {
            let jitter = SimDuration::from_nanos(self.root_rng.below(5_000));
            self.queue.schedule_in(jitter, Event::Start(idx));
        }
        for hidx in 0..self.hosts.len() {
            let jitter = SimDuration::from_nanos(5_000 + self.root_rng.below(5_000));
            self.queue.schedule_in(jitter, Event::HostStart(hidx));
        }
        if let Some(interval) = self.config.liveness_interval {
            self.queue.schedule_in(interval, Event::Liveness);
        }
        // Fault injections become ordinary discrete events: same queue,
        // same deterministic tie-break, bit-identical replays.
        for (i, e) in self.fault_events.iter().enumerate() {
            self.queue.schedule_at(e.at, Event::Fault(i));
        }
    }

    /// Powers on one late-added device (for devices attached after
    /// [`System::power_on`], e.g. hot-plug scenarios).
    pub fn start_device(&mut self, h: DeviceHandle) {
        self.queue.schedule_now(Event::Start(h.idx));
    }

    /// Runs until the queue is empty or `deadline` passes. Returns events
    /// processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        loop {
            let popped = {
                let _pop = profile::span("engine.pop");
                self.queue.pop_until(deadline)
            };
            let Some(ev) = popped else { break };
            self.handle(ev.at, ev.event);
            n += 1;
        }
        n
    }

    /// Runs for `d` of virtual time from now.
    pub fn run_for(&mut self, d: SimDuration) -> u64 {
        let deadline = self.now() + d;
        self.run_until(deadline)
    }

    /// Runs until the event queue drains completely (only terminates when
    /// no recurring timers are armed), up to `max_events`.
    pub fn run_to_idle(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events {
            let popped = {
                let _pop = profile::span("engine.pop");
                self.queue.pop()
            };
            match popped {
                Some(ev) => {
                    self.handle(ev.at, ev.event);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    // --- Fault injection ---------------------------------------------------

    /// Kills a device now. With `permanent = false` the bus's reset attempt
    /// revives it after [`SystemConfig::reset_latency`]; with `permanent =
    /// true` the device stays dead (§4 "if the entire device fails").
    pub fn kill_device(&mut self, h: DeviceHandle, permanent: bool) {
        let now = self.now();
        let corr = self.fresh_corr();
        self.slots[h.idx].halted = true;
        self.slots[h.idx].permanently_dead = permanent;
        self.slots[h.idx].inbox.clear();
        self.mark_down(h.idx, now);
        if let Some(rpc) = self.rpc.as_mut() {
            rpc.tracker.forget_requester(h.id);
        }
        self.trace.emit_data(
            now,
            "fault",
            corr,
            TraceData::DeviceFault {
                device: h.id.to_string(),
                detail: format!("device {} killed (permanent={permanent})", h.id),
            },
        );
        let mut fx = Vec::new();
        // Cannot fail: the handle came from this system.
        let _ = self.bus.mark_failed(h.id, &mut fx);
        self.apply_bus_effects(now, fx);
    }

    // --- Event handling -----------------------------------------------------

    /// Allocates a correlation id for a spontaneously starting activity
    /// (device/host power-on, operator fault injection).
    fn fresh_corr(&mut self) -> CorrId {
        let c = CorrId(self.next_corr);
        self.next_corr += 1;
        c
    }

    fn handle(&mut self, now: SimTime, ev: Event) {
        // Per-event attribution scope: every allocation and sim-ns charge
        // below lands on this event family's row of the E12 table.
        let _scope = profile::span(scope_of(&ev));
        match ev {
            Event::Start(idx) => {
                let corr = self.fresh_corr();
                self.dispatch(idx, now, corr, |d, ctx| d.on_start(ctx))
            }
            Event::BusMsg(env) => {
                self.met.bus_messages.incr();
                if self.trace.is_enabled() {
                    if let Payload::Hello { name, kind } = &env.payload {
                        self.trace.emit_data(
                            now,
                            "bus",
                            env.corr,
                            TraceData::BusRegister {
                                device: format!("{name} ({kind})"),
                            },
                        );
                    }
                }
                let src = env.src;
                let corr = env.corr;
                let was_hello = matches!(env.payload, Payload::Hello { .. });
                let mut fx = Vec::new();
                self.bus.handle(now, env, &mut fx);
                self.drain_bus_audit(now, corr);
                self.apply_bus_effects(now, fx);
                if was_hello {
                    self.note_possible_recovery(now, src);
                }
            }
            Event::Deliver { idx, env } => self.feed(idx, now, Work::Msg(env)),
            Event::Timer { idx, token, corr } => self.feed(idx, now, Work::Timer(token, corr)),
            Event::InboxPop(idx) => {
                self.slots[idx].pop_armed = false;
                if self.slot_busy(idx, now) {
                    // Another same-instant event got in first; try again
                    // when the firmware frees up. FIFO order is preserved
                    // because the items stay in the inbox.
                    self.arm_pop(idx, now);
                    return;
                }
                let popped = self.slots[idx].inbox.pop_front();
                self.slots[idx]
                    .met
                    .inbox_depth
                    .set(self.slots[idx].inbox.len() as i64);
                if let Some(work) = popped {
                    self.run_work(idx, now, work);
                }
                if !self.slots[idx].inbox.is_empty() {
                    self.arm_pop(idx, now);
                }
            }
            Event::Map {
                idx,
                pasid,
                va,
                pa,
                pages,
                perms,
                corr,
            } => self.apply_map(idx, pasid, va, pa, pages, perms, corr),
            Event::Unmap {
                idx,
                pasid,
                va,
                pages,
                corr,
            } => self.apply_unmap(idx, pasid, va, pages, corr),
            Event::Reset { idx, corr } => {
                if self.slots[idx].permanently_dead {
                    return;
                }
                self.slots[idx].halted = false;
                self.slots[idx].busy_until = now;
                self.slots[idx].inbox.clear();
                self.met.device_resets.incr();
                self.dispatch(idx, now, corr, |d, ctx| d.on_reset(ctx));
            }
            Event::NetDeliver { port, frame, corr } => {
                if self.tunnel_ports.contains(&port) {
                    // The port belongs to an embedding rack fabric: the
                    // frame leaves this machine. The fabric drains it after
                    // this step and models the inter-machine link.
                    let _tun = profile::span("fabric.tunnel_out");
                    if self.trace.is_enabled() {
                        self.trace.emit_data(
                            now,
                            "net",
                            corr,
                            TraceData::Text(format!(
                                "frame exits to fabric link via port {} ({} B)",
                                port.0,
                                frame.payload.len()
                            )),
                        );
                    }
                    self.tunnel_out.push(TunnelDelivery {
                        at: now,
                        port,
                        frame,
                        corr,
                    });
                } else if let Some(&idx) = self.port_to_slot.get(&port) {
                    self.feed(idx, now, Work::Net(frame, corr));
                } else if let Some(&hidx) = self.port_to_host.get(&port) {
                    self.dispatch_host(hidx, now, corr, move |h, ctx| h.on_frame(ctx, frame));
                }
            }
            Event::HostStart(hidx) => {
                let corr = self.fresh_corr();
                self.dispatch_host(hidx, now, corr, |h, ctx| h.on_start(ctx))
            }
            Event::HostTimer { hidx, token, corr } => {
                self.dispatch_host(hidx, now, corr, move |h, ctx| h.on_timer(ctx, token))
            }
            Event::Liveness => {
                let mut fx = Vec::new();
                let lapsed = self.bus.check_liveness(now, &mut fx);
                for id in lapsed {
                    if let Some(&idx) = self.by_id.get(&id) {
                        self.slots[idx].halted = true;
                        self.mark_down(idx, now);
                    }
                }
                self.apply_bus_effects(now, fx);
                if let Some(interval) = self.config.liveness_interval {
                    self.queue.schedule_in(interval, Event::Liveness);
                }
            }
            Event::Fault(i) => self.apply_fault(now, i),
            Event::RetryCheck => self.rpc_sweep(now),
        }
    }

    /// Records the down-to-alive latency of a device whose `Hello` just
    /// brought it back to the bus's `Alive` state after a fault.
    fn note_possible_recovery(&mut self, now: SimTime, src: DeviceId) {
        let Some(&idx) = self.by_id.get(&src) else {
            return;
        };
        let Some(t0) = self.slots[idx].faults.down_since else {
            return;
        };
        let alive = self
            .bus
            .device(src)
            .map(|e| e.state == DeviceState::Alive)
            .unwrap_or(false);
        if !alive {
            return;
        }
        let lat = now.since(t0);
        self.slots[idx].met.recovery_latency.record(lat);
        self.slots[idx].faults.down_since = None;
        if self.trace.is_enabled() {
            let name = self.slots[idx].device.name().to_string();
            self.trace.emit_data(
                now,
                "fault",
                CorrId::NONE,
                TraceData::Text(format!("{name} recovered after {lat}")),
            );
        }
    }

    /// Stamps the moment a device went down, if not already down.
    fn mark_down(&mut self, idx: usize, now: SimTime) {
        if self.slots[idx].faults.down_since.is_none() {
            self.slots[idx].faults.down_since = Some(now);
        }
    }

    /// Applies one scheduled fault-plan injection.
    fn apply_fault(&mut self, now: SimTime, i: usize) {
        let ev = self.fault_events[i].clone();
        let Some(idx) = self.slots.iter().position(|s| s.device.name() == ev.target) else {
            return;
        };
        self.met.faults_injected.incr();
        let corr = self.fresh_corr();
        self.trace.emit_data(
            now,
            "fault",
            corr,
            TraceData::DeviceFault {
                device: ev.target.clone(),
                detail: format!("inject {} on {}", ev.kind.tag(), ev.target),
            },
        );
        match ev.kind {
            FaultKind::Drop { count } => self.slots[idx].faults.drop_rem += count,
            FaultKind::Corrupt { count } => {
                self.slots[idx].faults.corrupt_rem += count;
                if let Some(plan) = self.config.fault_plan.as_ref() {
                    self.slots[idx].faults.corrupt_rng = Some(plan.stream(i as u64));
                }
            }
            FaultKind::Delay { count, extra_ns } => {
                let f = &mut self.slots[idx].faults;
                f.delay_rem += count;
                f.delay_extra = SimDuration::from_nanos(extra_ns.max(f.delay_extra.as_nanos()));
            }
            FaultKind::Crash => {
                if self.slots[idx].permanently_dead {
                    return;
                }
                let id = self.slots[idx].id;
                self.slots[idx].halted = true;
                self.slots[idx].inbox.clear();
                self.mark_down(idx, now);
                if let Some(rpc) = self.rpc.as_mut() {
                    rpc.tracker.forget_requester(id);
                }
                // The bus notices (DeviceFailed broadcast + reset pulse):
                // the crash is loud, recovery replays the Figure-2 init.
                let mut fx = Vec::new();
                let _ = self.bus.mark_failed(id, &mut fx);
                self.apply_bus_effects(now, fx);
            }
            FaultKind::Hang => {
                // Silent: the device just stops. No bus notification — only
                // the heartbeat liveness sweep can detect this, which is
                // the point of the fault.
                self.slots[idx].halted = true;
                self.slots[idx].inbox.clear();
                self.mark_down(idx, now);
            }
            FaultKind::SlowDown { factor, for_ns } => {
                let f = &mut self.slots[idx].faults;
                f.slow_factor = factor.max(1);
                f.slow_until = now + SimDuration::from_nanos(for_ns);
            }
            FaultKind::IommuStorm { count } => {
                // A burst of spurious translation faults the device firmware
                // must service (§4: devices handle their own faults).
                for k in 0..count {
                    let fault = IommuFault {
                        pasid: Pasid(0),
                        va: VirtAddr::new(k as u64 * PAGE_SIZE),
                        access: AccessKind::Read,
                        kind: IommuFaultKind::NotMapped,
                    };
                    self.dispatch(idx, now, corr, move |d, ctx| d.on_fault(ctx, fault));
                }
                self.slots[idx].met.iommu_faults.add(count as u64);
                self.met.iommu_faults.add(count as u64);
            }
        }
    }

    /// Applies armed wire faults for slot `idx` to a message touching it
    /// (as sender or recipient). Returns `None` when the message is
    /// consumed (dropped, or corrupted beyond decoding), otherwise the
    /// possibly-corrupted envelope plus any extra latency.
    fn wire_fault_filter(
        &mut self,
        now: SimTime,
        idx: usize,
        env: Arc<Envelope>,
    ) -> Option<(Arc<Envelope>, SimDuration)> {
        let f = &mut self.slots[idx].faults;
        if f.drop_rem == 0 && f.corrupt_rem == 0 && f.delay_rem == 0 {
            return Some((env, SimDuration::ZERO)); // fast path: nothing armed
        }
        if f.drop_rem > 0 {
            f.drop_rem -= 1;
            self.met.msgs_dropped.incr();
            self.trace.emit_data(
                now,
                "fault",
                env.corr,
                TraceData::Text(format!("dropped {} on the wire", env.payload.kind_name())),
            );
            return None;
        }
        if f.corrupt_rem > 0 {
            f.corrupt_rem -= 1;
            let rng = f.corrupt_rng.get_or_insert_with(|| DetRng::new(0xC0_22_09));
            // The corruption point is the one place on the delivery path
            // that genuinely needs the frame bytes (to flip a wire bit and
            // re-run the FNV-1a frame check); everywhere else sizes come
            // from `encoded_len()` without materializing the frame.
            let mut bytes = env.encode();
            let bit = rng.below(bytes.len() as u64 * 8);
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            self.met.msgs_corrupted.incr();
            let corr = env.corr;
            let kind = env.payload.kind_name();
            return match Envelope::decode(&bytes) {
                Ok(corrupted) => {
                    // Survived the frame check (astronomically unlikely with
                    // the FCS, but handled): delivered as a *different*
                    // message; the endpoint validation layers must cope.
                    self.trace.emit_data(
                        now,
                        "fault",
                        corr,
                        TraceData::Text(format!(
                            "corrupted {kind} -> {}",
                            corrupted.payload.kind_name()
                        )),
                    );
                    Some((Arc::new(corrupted), SimDuration::ZERO))
                }
                Err(_) => {
                    // The envelope's frame check sequence catches the flip;
                    // the receiver discards the frame, so on the wire this is
                    // a drop — the sender's RPC timeout retransmits.
                    self.met.msgs_dropped.incr();
                    self.trace.emit_data(
                        now,
                        "fault",
                        corr,
                        TraceData::Text(format!("corrupted {kind}; frame check dropped it")),
                    );
                    None
                }
            };
        }
        // delay_rem > 0
        f.delay_rem -= 1;
        let extra = f.delay_extra;
        self.met.msgs_delayed.incr();
        Some((env, extra))
    }

    /// Ensures a [`Event::RetryCheck`] is scheduled at the tracker's next
    /// deadline. Deadlines only move later (each is `send + timeout`), so a
    /// sweep armed earlier never misses one.
    fn arm_rpc_sweep(&mut self) {
        let Some(rpc) = self.rpc.as_mut() else {
            return;
        };
        let Some(d) = rpc.tracker.next_deadline() else {
            return;
        };
        if rpc.sweep_at.is_some_and(|t| t <= d) {
            return;
        }
        rpc.sweep_at = Some(d);
        self.queue.schedule_at(d, Event::RetryCheck);
    }

    /// Sweeps the RPC tracker: retransmits timed-out requests (with
    /// backoff + jitter) and surfaces terminal failures for exhausted ones.
    fn rpc_sweep(&mut self, now: SimTime) {
        let verdicts = {
            let Some(rpc) = self.rpc.as_mut() else {
                return;
            };
            rpc.sweep_at = None;
            rpc.tracker.expire(now, &mut rpc.rng)
        };
        for v in verdicts {
            match v {
                RetryVerdict::Resend {
                    env,
                    send_at,
                    attempt,
                } => {
                    self.met.rpc_retries.incr();
                    let src_idx = self.by_id.get(&env.src).copied();
                    if let Some(idx) = src_idx {
                        self.slots[idx].met.retries.incr();
                    }
                    if self.trace.is_enabled() {
                        self.trace.emit_data(
                            now,
                            "bus",
                            env.corr,
                            TraceData::Text(format!(
                                "retry {attempt} of {} from {}",
                                env.payload.kind_name(),
                                env.src
                            )),
                        );
                    }
                    // Retransmissions traverse the same faulty wire.
                    let env = Arc::new(env);
                    let filtered = match src_idx {
                        Some(idx) => self.wire_fault_filter(send_at, idx, env),
                        None => Some((env, SimDuration::ZERO)),
                    };
                    let Some((env, extra)) = filtered else {
                        continue;
                    };
                    let hop = self.config.bus_cost.hop_latency + extra;
                    self.queue.schedule_at(send_at + hop, Event::BusMsg(env));
                }
                RetryVerdict::GiveUp {
                    env,
                    first_sent,
                    attempts,
                } => {
                    self.met.rpc_give_ups.incr();
                    self.trace.emit_data(
                        now,
                        "fault",
                        env.corr,
                        TraceData::Text(format!(
                            "{} from {} abandoned after {attempts} attempts ({} in flight)",
                            env.payload.kind_name(),
                            env.src,
                            now.since(first_sent),
                        )),
                    );
                    // Synthesize a terminal failure reply so the requester's
                    // state machine unwinds instead of wedging (graceful
                    // degradation; the KVS server turns this into
                    // `Unavailable` for its clients).
                    if let Some(payload) = failure_reply_for(&env.payload) {
                        let src = match env.dst {
                            Dst::Device(d) => d,
                            _ => DeviceId::BUS,
                        };
                        let fail = Envelope {
                            src,
                            dst: Dst::Device(env.src),
                            req: env.req,
                            corr: env.corr,
                            payload,
                        };
                        if let Some(&idx) = self.by_id.get(&env.src) {
                            self.queue.schedule_at(
                                now,
                                Event::Deliver {
                                    idx,
                                    env: Arc::new(fail),
                                },
                            );
                        }
                    }
                }
            }
        }
        self.arm_rpc_sweep();
    }

    fn slot_busy(&self, idx: usize, now: SimTime) -> bool {
        self.slots[idx].busy_until > now
    }

    /// Ensures one `InboxPop` is pending for the slot, at the time its
    /// firmware frees up.
    fn arm_pop(&mut self, idx: usize, now: SimTime) {
        if self.slots[idx].pop_armed {
            return;
        }
        self.slots[idx].pop_armed = true;
        let at = self.slots[idx].busy_until.max(now);
        self.queue.schedule_at(at, Event::InboxPop(idx));
    }

    /// Routes one unit of work to a device: runs it now if the firmware is
    /// idle and nothing is queued ahead of it, otherwise appends it to the
    /// ingress FIFO.
    fn feed(&mut self, idx: usize, now: SimTime, work: Work) {
        if self.slots[idx].halted {
            return;
        }
        if self.slot_busy(idx, now) || !self.slots[idx].inbox.is_empty() {
            // Doorbells are level-triggered registers, not edge queues: a
            // second ring of the same doorbell while the first is still
            // pending coalesces with it (MSI semantics, §2.3). Without
            // this, a tenant ringing per-request floods the ingress FIFO
            // faster than the device drains it.
            if let Work::Msg(ref e) = work {
                if let Payload::Doorbell { conn, value } = e.payload {
                    let dup = self.slots[idx].inbox.iter().any(|w| {
                        matches!(
                            w,
                            Work::Msg(other) if other.src == e.src
                                && other.payload == Payload::Doorbell { conn, value }
                        )
                    });
                    if dup {
                        self.met.doorbells_coalesced.incr();
                        return;
                    }
                }
            }
            self.slots[idx].inbox.push_back(work);
            self.slots[idx]
                .met
                .inbox_depth
                .set(self.slots[idx].inbox.len() as i64);
            self.arm_pop(idx, now);
            return;
        }
        self.run_work(idx, now, work);
        if !self.slots[idx].inbox.is_empty() {
            self.arm_pop(idx, now);
        }
    }

    /// Executes one unit of work on an idle device.
    fn run_work(&mut self, idx: usize, now: SimTime, work: Work) {
        match work {
            Work::Msg(env) => {
                self.slots[idx].met.msgs.incr();
                self.trace_envelope(now, idx, &env);
                let corr = env.corr;
                // Devices take ownership of their message. A unicast
                // delivery holds the last reference here, so this is a
                // move out of the `Arc`, not a copy; only broadcast
                // recipients (shared refcount > 1) pay a clone.
                let env = Arc::try_unwrap(env).unwrap_or_else(|shared| (*shared).clone());
                self.dispatch(idx, now, corr, move |d, ctx| d.on_message(ctx, env));
            }
            Work::Timer(token, corr) => {
                self.dispatch(idx, now, corr, move |d, ctx| d.on_timer(ctx, token));
            }
            Work::Net(frame, corr) => {
                self.slots[idx].met.frames_rx.incr();
                self.dispatch(idx, now, corr, move |d, ctx| d.on_net(ctx, frame));
            }
        }
    }

    /// Runs one device hook and applies its effects.
    fn dispatch(
        &mut self,
        idx: usize,
        now: SimTime,
        corr: CorrId,
        f: impl FnOnce(&mut dyn Device, &mut DeviceCtx<'_>),
    ) {
        let slot = &mut self.slots[idx];
        if slot.halted {
            return;
        }
        let scratch_actions = std::mem::take(&mut slot.scratch_actions);
        let scratch_faults = std::mem::take(&mut slot.scratch_faults);
        let mut ctx = DeviceCtx::new(
            now,
            slot.id,
            slot.port,
            &mut slot.iommu,
            &mut self.dram,
            &mut slot.rng,
            &mut slot.next_req,
            corr,
            &self.stats,
        )
        .with_tracing(self.trace.is_enabled())
        .with_pool(&self.pool)
        .with_scratch(scratch_actions, scratch_faults);
        f(slot.device.as_mut(), &mut ctx);
        let (mut actions, mut elapsed, mut faults) = ctx.finish();
        if slot.faults.slow_factor > 1 && now < slot.faults.slow_until {
            // An active slow-down fault stretches the firmware's service
            // time (thermal throttling, background housekeeping).
            elapsed = elapsed.saturating_mul(slot.faults.slow_factor as u64);
        }
        slot.busy_until = now + elapsed;
        let t = slot.busy_until;
        slot.met.handler_ns.record(elapsed);
        // The handler's modeled service time is the sim-ns cost of whatever
        // event scope this dispatch ran under.
        profile::charge_sim(elapsed.as_nanos());
        if !faults.is_empty() {
            slot.met.iommu_faults.add(faults.len() as u64);
            self.met.iommu_faults.add(faults.len() as u64);
        }
        // E11 audit: convert this dispatch's DMA verdicts into `sec.*`
        // metrics and `security_denial` trace events, exactly once.
        if let Some(audit) = slot.iommu.audit_mut() {
            let delta = audit.drain();
            if delta.allowed > 0 {
                self.met.sec_dma_allowed.add(delta.allowed);
            }
            if delta.denied > 0 {
                self.met.sec_dma_denied.add(delta.denied);
                slot.met.sec_dma_denied.add(delta.denied);
            }
            if self.trace.is_enabled() && !delta.records.is_empty() {
                let name = slot.device.name().to_string();
                for r in &delta.records {
                    self.trace.emit_data(
                        now,
                        format!("sec.{name}"),
                        corr,
                        TraceData::SecurityDenial {
                            device: name.clone(),
                            check: "dma".to_string(),
                            detail: format!(
                                "pasid {} va {:#x} {:?}: {:?}",
                                r.pasid.0,
                                r.va.as_u64(),
                                r.access,
                                r.kind
                            ),
                        },
                    );
                }
            }
        }
        {
            // Named sub-scope: allocations while applying device effects
            // (event scheduling, routing) attribute to `engine.apply`
            // instead of the dispatching event's generic scope.
            let _sp = profile::span("engine.apply");
            for a in actions.drain(..) {
                self.apply_action(idx, t, corr, a);
            }
        }
        // Hand the (now empty) scratch buffers back to the slot. No
        // reentrant dispatch happens inside `apply_action` (effects become
        // scheduled events), so the slot's buffers were untouched meanwhile.
        faults.clear();
        let slot = &mut self.slots[idx];
        slot.scratch_actions = actions;
        slot.scratch_faults = faults;
    }

    /// Converts freshly recorded bus-audit verdicts into `sec.*` metrics
    /// and `security_denial` trace events (called after every
    /// `bus.handle()`).
    fn drain_bus_audit(&mut self, now: SimTime, corr: CorrId) {
        let Some(delta) = self.bus.audit_mut().map(|a| a.drain()) else {
            return;
        };
        if delta.allowed > 0 {
            self.met.sec_privops_allowed.add(delta.allowed);
        }
        if delta.denied > 0 {
            self.met.sec_privops_denied.add(delta.denied);
        }
        if delta.rate_limited > 0 {
            self.met.sec_flood_dropped.add(delta.rate_limited);
        }
        if self.trace.is_enabled() {
            for r in &delta.records {
                if r.verdict == lastcpu_bus::BusVerdict::Allowed {
                    continue;
                }
                let device = self
                    .bus
                    .device(r.src)
                    .map(|e| e.name.clone())
                    .unwrap_or_else(|| format!("{}", r.src));
                let check = match r.op {
                    lastcpu_bus::PrivOpKind::RegisterController => "register_controller",
                    lastcpu_bus::PrivOpKind::MapInstruction => "map_instruction",
                    lastcpu_bus::PrivOpKind::Announce => "announce",
                    lastcpu_bus::PrivOpKind::Control => "control",
                };
                self.trace.emit_data(
                    now,
                    "sec.bus",
                    corr,
                    TraceData::SecurityDenial {
                        device,
                        check: check.to_string(),
                        detail: format!(
                            "{:?} (resource {:?}, target {:?})",
                            r.reason, r.resource, r.target
                        ),
                    },
                );
            }
        }
    }

    fn dispatch_host(
        &mut self,
        hidx: usize,
        now: SimTime,
        corr: CorrId,
        f: impl FnOnce(&mut dyn NetHost, &mut HostCtx<'_>),
    ) {
        let hs = &mut self.hosts[hidx];
        let scratch = std::mem::take(&mut hs.scratch_actions);
        let mut ctx = HostCtx::new(now, hs.port, &self.stats, &mut hs.rng, corr)
            .with_tracing(self.trace.is_enabled())
            .with_pool(&self.pool)
            .with_scratch(scratch);
        f(hs.host.as_mut(), &mut ctx);
        let mut actions = ctx.finish();
        for a in actions.drain(..) {
            match a {
                HostAction::NetTx(frame) => self.route_frame(now, frame, corr),
                HostAction::SetTimer { delay, token } => {
                    self.queue
                        .schedule_in(delay, Event::HostTimer { hidx, token, corr });
                }
                HostAction::Trace(s) => {
                    let name = self.hosts[hidx].host.name().to_string();
                    self.trace.emit_data(now, name, corr, TraceData::Text(s));
                }
                HostAction::Stage { stage, id, aux } => {
                    let name = self.hosts[hidx].host.name().to_string();
                    self.trace
                        .emit_data(now, name, corr, TraceData::Stage { stage, id, aux });
                }
            }
        }
        self.hosts[hidx].scratch_actions = actions;
    }

    fn route_frame(&mut self, at: SimTime, frame: Frame, corr: CorrId) {
        // The switch computes per-recipient delivery times including egress
        // queueing, which is how network contention becomes real. Unicast —
        // the hot path — moves the frame into its single delivery event;
        // only broadcast pays the allocating route + per-recipient clones.
        if frame.dst != PortId::BROADCAST {
            if let Some(deliver_at) = self.switch.route_unicast(at, &frame) {
                let port = frame.dst;
                self.queue
                    .schedule_at(deliver_at, Event::NetDeliver { port, frame, corr });
            }
            return;
        }
        for (port, deliver_at) in self.switch.route(at, &frame) {
            self.queue.schedule_at(
                deliver_at,
                Event::NetDeliver {
                    port,
                    frame: frame.clone(),
                    corr,
                },
            );
        }
    }

    fn apply_action(&mut self, idx: usize, t: SimTime, corr: CorrId, action: Action) {
        match action {
            Action::SendBus(env) => {
                if self.trace.is_enabled() {
                    let name = self.slots[idx].device.name().to_string();
                    let data = match &env.payload {
                        Payload::Query { pattern } => TraceData::Discovery {
                            pattern: pattern.clone(),
                            dst: format!("{:?}", env.dst),
                        },
                        p => TraceData::BusSend {
                            what: p.kind_name().to_string(),
                            dst: format!("{:?}", env.dst),
                        },
                    };
                    self.trace.emit_data(t, name, env.corr, data);
                }
                // Arm the retry tracker *before* wire faults apply: the
                // tracker exists precisely to notice lost sends.
                if let Some(rpc) = self.rpc.as_mut() {
                    rpc.tracker.track(t, &env);
                }
                self.arm_rpc_sweep();
                let Some((env, extra)) = self.wire_fault_filter(t, idx, Arc::new(env)) else {
                    return;
                };
                // One hop to the bus; processing/latency modelled by the
                // bus's own cost model when it emits deliveries.
                let mut hop = self.config.bus_cost.hop_latency + extra;
                if let Some(link) = self.shared_link.as_mut() {
                    hop += link.occupy(t, env.encoded_len() as u64);
                    self.met.link_control_msgs.incr();
                }
                self.queue.schedule_at(t + hop, Event::BusMsg(env));
            }
            Action::Doorbell { to, conn, value } => {
                let env = Envelope {
                    src: self.slots[idx].id,
                    dst: Dst::Device(to),
                    req: RequestId(0),
                    corr,
                    payload: Payload::Doorbell { conn, value },
                };
                if self.trace.is_enabled() {
                    let name = self.slots[idx].device.name().to_string();
                    self.trace.emit_data(
                        t,
                        name,
                        corr,
                        TraceData::QueueDoorbell {
                            to: to.to_string(),
                            value,
                        },
                    );
                }
                let mut lat = self.config.doorbell_latency;
                if let Some(link) = self.shared_link.as_mut() {
                    lat += link.occupy(t, 8);
                }
                self.met.doorbells.incr();
                if let Some(&to_idx) = self.by_id.get(&to) {
                    self.queue.schedule_at(
                        t + lat,
                        Event::Deliver {
                            idx: to_idx,
                            env: Arc::new(env),
                        },
                    );
                }
            }
            Action::SetTimer { delay, token } => {
                self.queue
                    .schedule_at(t + delay, Event::Timer { idx, token, corr });
            }
            Action::NetTx(frame) => self.route_frame(t, frame, corr),
            Action::Trace(s) => {
                let name = self.slots[idx].device.name().to_string();
                self.trace.emit_data(t, name, corr, TraceData::Text(s));
            }
            Action::Stage { stage, id, aux } => {
                let name = self.slots[idx].device.name().to_string();
                self.trace
                    .emit_data(t, name, corr, TraceData::Stage { stage, id, aux });
            }
            Action::Halt { reason } => {
                let id = self.slots[idx].id;
                self.slots[idx].halted = true;
                self.slots[idx].inbox.clear();
                self.mark_down(idx, t);
                self.trace.emit_data(
                    t,
                    "fault",
                    corr,
                    TraceData::DeviceFault {
                        device: id.to_string(),
                        detail: format!("{id} halted: {reason}"),
                    },
                );
                let mut fx = Vec::new();
                let _ = self.bus.mark_failed(id, &mut fx);
                self.apply_bus_effects(t, fx);
            }
        }
    }

    fn apply_bus_effects(&mut self, now: SimTime, fx: Vec<BusEffect>) {
        for effect in fx {
            match effect {
                BusEffect::Deliver { to, env, latency } => {
                    let mut lat = latency;
                    if let Some(link) = self.shared_link.as_mut() {
                        lat += link.occupy(now, env.encoded_len() as u64);
                    }
                    if let Some(&idx) = self.by_id.get(&to) {
                        // Destination-side wire faults: a reply eaten here
                        // must *not* complete the tracker — the requester
                        // never saw it.
                        let Some((env, extra)) = self.wire_fault_filter(now, idx, env) else {
                            continue;
                        };
                        if env.payload.is_reply() {
                            if let Some(rpc) = self.rpc.as_mut() {
                                rpc.tracker.complete(to, env.req, &env.payload);
                            }
                        }
                        self.queue
                            .schedule_at(now + lat + extra, Event::Deliver { idx, env });
                    }
                }
                BusEffect::ProgramMap {
                    device,
                    pasid,
                    va,
                    pa,
                    pages,
                    perms,
                    corr,
                } => {
                    if let Some(&idx) = self.by_id.get(&device) {
                        if self.trace.is_enabled() {
                            self.trace.emit_data(
                                now,
                                "bus",
                                corr,
                                TraceData::DmaGrant {
                                    to: device.to_string(),
                                    pages,
                                    writable: perms & 2 != 0,
                                },
                            );
                        }
                        // The privileged write lands after one hop plus bus
                        // processing — strictly before any 2-hop response.
                        let lat =
                            self.config.bus_cost.hop_latency + self.config.bus_cost.processing;
                        self.queue.schedule_at(
                            now + lat,
                            Event::Map {
                                idx,
                                pasid,
                                va,
                                pa,
                                pages,
                                perms,
                                corr,
                            },
                        );
                    }
                }
                BusEffect::ProgramUnmap {
                    device,
                    pasid,
                    va,
                    pages,
                    corr,
                } => {
                    if let Some(&idx) = self.by_id.get(&device) {
                        let lat =
                            self.config.bus_cost.hop_latency + self.config.bus_cost.processing;
                        self.queue.schedule_at(
                            now + lat,
                            Event::Unmap {
                                idx,
                                pasid,
                                va,
                                pages,
                                corr,
                            },
                        );
                    }
                }
                BusEffect::ResetDevice { device, corr } => {
                    if let Some(&idx) = self.by_id.get(&device) {
                        self.queue
                            .schedule_in(self.config.reset_latency, Event::Reset { idx, corr });
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // Mirrors the wire-level Map request.
    fn apply_map(
        &mut self,
        idx: usize,
        pasid: u32,
        va: u64,
        pa: u64,
        pages: u64,
        perms: u8,
        corr: CorrId,
    ) {
        let slot = &mut self.slots[idx];
        let perms = perms_from_bits(perms);
        slot.iommu.bind_pasid(Pasid(pasid));
        for i in 0..pages {
            let va_i = VirtAddr::new(va + i * PAGE_SIZE);
            let pa_i = PhysAddr::new(pa + i * PAGE_SIZE);
            match slot.iommu.map(Pasid(pasid), va_i, pa_i, perms) {
                Ok(()) => {}
                Err(MapError::AlreadyMapped { .. }) => {
                    // Idempotent re-grant (e.g. a share retried after a
                    // failure broadcast raced with it): refresh permissions.
                    let _ = slot.iommu.protect(Pasid(pasid), va_i, perms);
                }
                Err(e) => {
                    self.trace.emit_data(
                        self.queue.now(),
                        "bus",
                        corr,
                        TraceData::MapFailure {
                            error: format!("{e}"),
                        },
                    );
                    self.met.map_failures.incr();
                    return;
                }
            }
        }
        self.met.pages_mapped.add(pages);
        self.trace.emit_data(
            self.queue.now(),
            "bus",
            corr,
            TraceData::IommuMap {
                device: slot.id.to_string(),
                pasid,
                va,
                pa,
                pages,
                perms: perms.to_string(),
            },
        );
    }

    fn apply_unmap(&mut self, idx: usize, pasid: u32, va: u64, pages: u64, corr: CorrId) {
        let slot = &mut self.slots[idx];
        let mut removed = 0;
        for i in 0..pages {
            let va_i = VirtAddr::new(va + i * PAGE_SIZE);
            if slot.iommu.unmap(Pasid(pasid), va_i).is_ok() {
                removed += 1;
            }
        }
        self.met.pages_unmapped.add(removed);
        self.trace.emit_data(
            self.queue.now(),
            "bus",
            corr,
            TraceData::IommuUnmap {
                device: slot.id.to_string(),
                pasid,
                va,
                pages: removed,
            },
        );
    }

    fn trace_envelope(&mut self, now: SimTime, to_idx: usize, env: &Envelope) {
        if !self.trace.is_enabled() {
            return;
        }
        let to = self.slots[to_idx].device.name().to_string();
        let from = if env.src == DeviceId::BUS {
            "bus".to_string()
        } else {
            self.by_id
                .get(&env.src)
                .map(|&i| self.slots[i].device.name().to_string())
                .unwrap_or_else(|| format!("{}", env.src))
        };
        self.trace.emit_data(
            now,
            from,
            env.corr,
            TraceData::Deliver {
                to,
                kind: env.payload.kind_name(),
            },
        );
    }
}

/// The terminal failure reply synthesized for an abandoned request, so the
/// requester's state machine unwinds instead of waiting forever. Requests
/// without a typed response (e.g. `Hello` — the reset path re-issues it)
/// get none.
fn failure_reply_for(p: &Payload) -> Option<Payload> {
    Some(match p {
        Payload::OpenRequest { .. } => Payload::OpenResponse {
            status: Status::Failed,
            conn: ConnId(0),
            shm_bytes: 0,
            params: Vec::new(),
        },
        Payload::CloseRequest { .. } => Payload::CloseResponse {
            status: Status::Failed,
        },
        Payload::MemAlloc { .. } => Payload::MemAllocResponse {
            status: Status::Failed,
            region: 0,
        },
        Payload::MemFree { .. } => Payload::MemFreeResponse {
            status: Status::Failed,
        },
        Payload::Share { .. } => Payload::ShareResponse {
            status: Status::Failed,
        },
        Payload::RegisterController { .. } | Payload::MapInstruction { .. } => Payload::BusAck {
            status: Status::Failed,
        },
        _ => return None,
    })
}

fn perms_from_bits(bits: u8) -> Perms {
    let mut p = Perms::NONE;
    if bits & 1 != 0 {
        p = p.union(Perms::R);
    }
    if bits & 2 != 0 {
        p = p.union(Perms::W);
    }
    if bits & 4 != 0 {
        p = p.union(Perms::X);
    }
    p
}

use lastcpu_snap::{Checkpoint, Manifest, SnapError, SnapWriter, Snapshot as _};

impl System {
    /// Stable fingerprint of the builder recipe: configuration plus the
    /// device/host lineup. Restore refuses to verify a checkpoint against
    /// a machine built from a different recipe — replay-based restore is
    /// only sound when the re-executed machine starts from the same
    /// construction.
    pub fn config_fingerprint(&self) -> u64 {
        let mut h = lastcpu_snap::fnv1a(format!("{:?}", self.config).as_bytes());
        for s in &self.slots {
            lastcpu_snap::fnv1a_fold(&mut h, s.device.name().as_bytes());
            lastcpu_snap::fnv1a_fold(&mut h, s.device.kind().as_bytes());
        }
        for hs in &self.hosts {
            lastcpu_snap::fnv1a_fold(&mut h, hs.host.name().as_bytes());
        }
        h
    }

    /// Folds one pending event — firing time, tie-break sequence, and full
    /// content — into the queue digest.
    fn fold_event(h: &mut u64, at: SimTime, seq: u64, ev: &Event) {
        let mut w = SnapWriter::new();
        w.put_u64(at.as_nanos());
        w.put_u64(seq);
        match ev {
            Event::Start(i) => {
                w.put_u8(0);
                w.put_len(*i);
            }
            Event::BusMsg(env) => {
                w.put_u8(1);
                w.put_bytes(&env.encode());
            }
            Event::Deliver { idx, env } => {
                w.put_u8(2);
                w.put_len(*idx);
                w.put_bytes(&env.encode());
            }
            Event::Timer { idx, token, corr } => {
                w.put_u8(3);
                w.put_len(*idx);
                w.put_u64(*token);
                w.put_u64(corr.0);
            }
            Event::Map {
                idx,
                pasid,
                va,
                pa,
                pages,
                perms,
                corr,
            } => {
                w.put_u8(4);
                w.put_len(*idx);
                w.put_u32(*pasid);
                w.put_u64(*va);
                w.put_u64(*pa);
                w.put_u64(*pages);
                w.put_u8(*perms);
                w.put_u64(corr.0);
            }
            Event::Unmap {
                idx,
                pasid,
                va,
                pages,
                corr,
            } => {
                w.put_u8(5);
                w.put_len(*idx);
                w.put_u32(*pasid);
                w.put_u64(*va);
                w.put_u64(*pages);
                w.put_u64(corr.0);
            }
            Event::Reset { idx, corr } => {
                w.put_u8(6);
                w.put_len(*idx);
                w.put_u64(corr.0);
            }
            Event::InboxPop(i) => {
                w.put_u8(7);
                w.put_len(*i);
            }
            Event::NetDeliver { port, frame, corr } => {
                w.put_u8(8);
                w.put_u32(port.0);
                w.put_u32(frame.src.0);
                w.put_u32(frame.dst.0);
                w.put_bytes(&frame.payload);
                w.put_u64(corr.0);
            }
            Event::HostStart(i) => {
                w.put_u8(9);
                w.put_len(*i);
            }
            Event::HostTimer { hidx, token, corr } => {
                w.put_u8(10);
                w.put_len(*hidx);
                w.put_u64(*token);
                w.put_u64(corr.0);
            }
            Event::Liveness => w.put_u8(11),
            Event::Fault(i) => {
                w.put_u8(12);
                w.put_len(*i);
            }
            Event::RetryCheck => w.put_u8(13),
        }
        lastcpu_snap::fnv1a_fold(h, &w.into_bytes());
    }

    /// The `engine` section: virtual clock, event cursors, a content digest
    /// of every pending event, and the machine-global odds and ends that
    /// live outside any component (correlation allocator, shared link,
    /// tunnel state, fault schedule).
    fn engine_section(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u64(self.queue.now().as_nanos());
        w.put_u64(self.queue.events_processed());
        w.put_u64(self.queue.seq_cursor());
        let mut entries = self.queue.entries();
        entries.sort_by_key(|(at, seq, _)| (*at, *seq));
        w.put_len(entries.len());
        let mut h = lastcpu_snap::fnv1a(b"queue");
        for (at, seq, ev) in &entries {
            Self::fold_event(&mut h, *at, *seq, ev);
        }
        w.put_u64(h);
        w.put_u64(self.next_corr);
        w.put_opt(self.memctl_id.as_ref(), |w, d| w.put_u32(d.0));
        w.put_opt(self.shared_link.as_ref(), |w, l| {
            w.put_u64(l.busy_until.as_nanos());
            w.put_u64(l.per_byte_ps);
        });
        let mut tp: Vec<u32> = self.tunnel_ports.iter().map(|p| p.0).collect();
        tp.sort_unstable();
        w.put_len(tp.len());
        for p in tp {
            w.put_u32(p);
        }
        w.put_len(self.tunnel_out.len());
        for t in &self.tunnel_out {
            w.put_u64(t.at.as_nanos());
            w.put_u32(t.port.0);
            w.put_u32(t.frame.src.0);
            w.put_u32(t.frame.dst.0);
            w.put_bytes(&t.frame.payload);
        }
        w.put_len(self.fault_events.len());
        for f in &self.fault_events {
            w.put_u64(f.at.as_nanos());
            w.put_str(&f.target);
            f.kind.encode(&mut w);
        }
        w.into_bytes()
    }

    /// One device slot: engine-side bookkeeping (scheduling, ingress FIFO,
    /// armed faults, RNG), the slot's IOMMU, then the device's own state
    /// via [`Device::snapshot_state`].
    fn slot_section(&self, s: &Slot) -> lastcpu_snap::Result<Vec<u8>> {
        let mut w = SnapWriter::new();
        w.put_u32(s.id.0);
        w.put_opt(s.port.as_ref(), |w, p| w.put_u32(p.0));
        w.put_u64(s.busy_until.as_nanos());
        w.put_bool(s.halted);
        w.put_bool(s.permanently_dead);
        w.put_u64(s.next_req);
        s.rng.snapshot(&mut w);
        w.put_bool(s.pop_armed);
        w.put_len(s.inbox.len());
        for work in &s.inbox {
            match work {
                Work::Msg(env) => {
                    w.put_u8(0);
                    w.put_bytes(&env.encode());
                }
                Work::Timer(token, corr) => {
                    w.put_u8(1);
                    w.put_u64(*token);
                    w.put_u64(corr.0);
                }
                Work::Net(frame, corr) => {
                    w.put_u8(2);
                    w.put_u32(frame.src.0);
                    w.put_u32(frame.dst.0);
                    w.put_bytes(&frame.payload);
                    w.put_u64(corr.0);
                }
            }
        }
        w.put_u32(s.faults.drop_rem);
        w.put_u32(s.faults.corrupt_rem);
        w.put_opt(s.faults.corrupt_rng.as_ref(), |w, r| r.snapshot(w));
        w.put_u32(s.faults.delay_rem);
        w.put_u64(s.faults.delay_extra.as_nanos());
        w.put_u32(s.faults.slow_factor);
        w.put_u64(s.faults.slow_until.as_nanos());
        w.put_opt(s.faults.down_since.as_ref(), |w, t| w.put_u64(t.as_nanos()));
        s.iommu.snapshot(&mut w);
        s.device.snapshot_state(&mut w)?;
        Ok(w.into_bytes())
    }

    /// Serializes the whole machine into a versioned [`Checkpoint`]:
    /// manifest (seed, virtual time, event cursor, config fingerprint)
    /// plus one checksummed section per component, in fixed order.
    ///
    /// Fails loudly ([`SnapError::Unsupported`]) if any attached device or
    /// host does not implement its snapshot hook — a checkpoint that
    /// silently skipped state could never verify a restore.
    pub fn checkpoint(&self, label: &str) -> lastcpu_snap::Result<Checkpoint> {
        let manifest = Manifest {
            schema_version: lastcpu_snap::SCHEMA_VERSION,
            seed: self.config.seed,
            virtual_ns: self.queue.now().as_nanos(),
            events: self.queue.events_processed(),
            config_fp: self.config_fingerprint(),
            label: label.to_string(),
        };
        let mut ck = Checkpoint::new(manifest);
        ck.add_section("engine", self.engine_section());
        ck.add_section("rng", {
            let mut w = SnapWriter::new();
            self.root_rng.snapshot(&mut w);
            w.into_bytes()
        });
        ck.add_section("bus", self.bus.snapshot_bytes());
        ck.add_section("rpc", {
            let mut w = SnapWriter::new();
            w.put_opt(self.rpc.as_ref(), |w, rpc| {
                rpc.tracker.snapshot(w);
                rpc.rng.snapshot(w);
                w.put_opt(rpc.sweep_at.as_ref(), |w, t| w.put_u64(t.as_nanos()));
            });
            w.into_bytes()
        });
        ck.add_section("dram", self.dram.snapshot_bytes());
        ck.add_section("switch", self.switch.snapshot_bytes());
        ck.add_section("pool", self.pool.snapshot_bytes());
        ck.add_section("metrics", self.stats.snapshot_bytes());
        ck.add_section("trace", self.trace.snapshot_bytes());
        for (i, s) in self.slots.iter().enumerate() {
            ck.add_section(&format!("dev{i}"), self.slot_section(s)?);
        }
        for (i, hs) in self.hosts.iter().enumerate() {
            let mut w = SnapWriter::new();
            w.put_u32(hs.port.0);
            hs.rng.snapshot(&mut w);
            hs.host.snapshot_state(&mut w)?;
            ck.add_section(&format!("host{i}"), w.into_bytes());
        }
        Ok(ck)
    }

    /// Steps until exactly `events` events have been processed (the
    /// manifest cursor). Returns the number of events stepped here.
    pub fn run_to_cursor(&mut self, events: u64) -> u64 {
        let mut n = 0;
        while self.queue.events_processed() < events {
            if self.step().is_none() {
                break;
            }
            n += 1;
        }
        n
    }

    /// Byte-for-byte verification of this machine against `ck`: takes a
    /// fresh checkpoint and requires every section to match exactly.
    pub fn verify_checkpoint(&self, ck: &Checkpoint) -> lastcpu_snap::Result<()> {
        let mine = self.checkpoint(&ck.manifest.label)?;
        if let Some(detail) = ck.diff(&mine) {
            return Err(SnapError::VerifyMismatch {
                section: "system".into(),
                detail,
            });
        }
        Ok(())
    }

    /// Restores this machine to the state captured in `ck`.
    ///
    /// The machine must be freshly built from the *same recipe* (config +
    /// device/host lineup, checked via the manifest fingerprint) and
    /// powered on. Restore is deterministic re-execution: the engine
    /// replays to the manifest's event cursor — bit-identical by
    /// construction of the simulator — and then every section is verified
    /// byte-for-byte against the checkpoint. Any divergence fails loudly
    /// with [`SnapError::VerifyMismatch`]; a successful return is a proof
    /// that this machine is in the checkpointed state, not an assumption.
    pub fn restore_from(&mut self, ck: &Checkpoint) -> lastcpu_snap::Result<()> {
        if ck.manifest.schema_version != lastcpu_snap::SCHEMA_VERSION {
            return Err(SnapError::VersionMismatch {
                want: lastcpu_snap::SCHEMA_VERSION,
                got: ck.manifest.schema_version,
            });
        }
        if ck.manifest.seed != self.config.seed {
            return Err(SnapError::VerifyMismatch {
                section: "manifest".into(),
                detail: format!(
                    "seed mismatch: checkpoint {}, this machine {}",
                    ck.manifest.seed, self.config.seed
                ),
            });
        }
        if ck.manifest.config_fp != self.config_fingerprint() {
            return Err(SnapError::VerifyMismatch {
                section: "manifest".into(),
                detail: format!(
                    "config fingerprint mismatch: checkpoint {:#018x}, this machine {:#018x}",
                    ck.manifest.config_fp,
                    self.config_fingerprint()
                ),
            });
        }
        self.run_to_cursor(ck.manifest.events);
        self.verify_checkpoint(ck)
    }
}

// ---------------------------------------------------------------------------
// Checkpoint / restore
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use lastcpu_devices::auth::AuthDevice;
    use lastcpu_devices::console::{ConsoleDevice, ConsoleState};
    use lastcpu_devices::flash::{NandChip, NandConfig};
    use lastcpu_devices::fs::FlashFs;
    use lastcpu_devices::ftl::Ftl;
    use lastcpu_devices::monitor::AuthMode;
    use lastcpu_devices::nic::{EchoApp, SmartNic};
    use lastcpu_devices::ssd::{SmartSsd, SsdConfig};

    fn small_fs() -> FlashFs {
        FlashFs::format(Ftl::new(NandChip::new(NandConfig {
            blocks: 64,
            pages_per_block: 32,
            page_size: 4096,
            max_erase_cycles: u32::MAX,
            ..NandConfig::default()
        })))
    }

    fn base_system() -> System {
        System::new(SystemConfig::default())
    }

    #[test]
    fn devices_register_on_power_on() {
        let mut sys = base_system();
        sys.add_memctl("memctl0");
        sys.add_device(Box::new(AuthDevice::new("auth0", 0x5EC, &[])));
        sys.power_on();
        sys.run_for(SimDuration::from_millis(1));
        assert_eq!(sys.bus().alive().count(), 2);
    }

    #[test]
    fn echo_nic_round_trip_over_network() {
        struct Pinger {
            sent_at: Option<SimTime>,
            rtt: Option<SimDuration>,
            nic_port: PortId,
        }
        impl NetHost for Pinger {
            fn name(&self) -> &str {
                "pinger"
            }
            fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
                self.sent_at = Some(ctx.now);
                ctx.net_tx(self.nic_port, b"ping".to_vec());
            }
            fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: Frame) {
                assert_eq!(frame.payload, b"ping");
                self.rtt = Some(ctx.now.since(self.sent_at.unwrap()));
            }
        }

        let mut sys = base_system();
        sys.add_memctl("memctl0");
        let nic = sys.add_net_device(Box::new(SmartNic::new("nic0", EchoApp::new())));
        let nic_port = sys.device_port(nic).unwrap();
        let host_port = sys.add_host(Box::new(Pinger {
            sent_at: None,
            rtt: None,
            nic_port,
        }));
        sys.power_on();
        sys.run_for(SimDuration::from_millis(5));
        let pinger: &Pinger = sys.host_as(host_port).unwrap();
        let rtt = pinger.rtt.expect("echo came back");
        // Two network traversals at ~1us propagation each.
        assert!(rtt > SimDuration::from_micros(2), "rtt {rtt}");
        assert!(rtt < SimDuration::from_millis(1), "rtt {rtt}");
    }

    #[test]
    fn console_reads_log_end_to_end() {
        // The full §3/§4 machinery: auth login, discovery, Figure-2 session
        // setup, VIRTIO reads — with no CPU anywhere.
        let mut sys = base_system();
        let memctl = sys.add_memctl("memctl0");
        sys.add_device(Box::new(AuthDevice::new(
            "auth0",
            0xFEED,
            &[("operator", "hunter2")],
        )));
        let mut fs = small_fs();
        fs.create("/logs/app.log").unwrap();
        fs.write("/logs/app.log", 0, b"kv-store started\nrequests: 12345\n")
            .unwrap();
        let ssd = sys.add_device(Box::new(SmartSsd::new(
            "ssd0",
            fs,
            SsdConfig {
                exports: vec!["/logs/app.log".into()],
                file_auth: AuthMode::Sealed { secret: 0xFEED },
                ..SsdConfig::default()
            },
        )));
        let console = sys.add_device(Box::new(ConsoleDevice::new(
            "console0",
            memctl.id,
            "operator",
            "hunter2",
            "/logs/app.log",
        )));
        sys.power_on();
        sys.run_for(SimDuration::from_millis(50));

        let c: &ConsoleDevice = sys.device_as(console).unwrap();
        assert_eq!(
            c.state(),
            ConsoleState::Done,
            "console stuck; trace tail: {:?}",
            {
                let v: Vec<_> = sys.trace().events().collect();
                v.into_iter().rev().take(15).collect::<Vec<_>>()
            }
        );
        assert_eq!(
            c.log().unwrap(),
            b"kv-store started\nrequests: 12345\n".as_slice()
        );
        // The data really moved through the SSD's IOMMU under a PASID.
        let ssd_tlb = sys.iommu(ssd).tlb_stats();
        assert!(
            ssd_tlb.hits + ssd_tlb.misses > 0,
            "SSD DMA went through its IOMMU"
        );
        assert!(sys.stats().counter("bus.pages_mapped") > 0);
    }

    #[test]
    fn wrong_password_is_denied() {
        let mut sys = base_system();
        let memctl = sys.add_memctl("memctl0");
        sys.add_device(Box::new(AuthDevice::new(
            "auth0",
            0xFEED,
            &[("operator", "hunter2")],
        )));
        let mut fs = small_fs();
        fs.create("/logs/app.log").unwrap();
        sys.add_device(Box::new(SmartSsd::new(
            "ssd0",
            fs,
            SsdConfig {
                exports: vec!["/logs/app.log".into()],
                file_auth: AuthMode::Sealed { secret: 0xFEED },
                ..SsdConfig::default()
            },
        )));
        let console = sys.add_device(Box::new(ConsoleDevice::new(
            "console0",
            memctl.id,
            "operator",
            "wrong-password",
            "/logs/app.log",
        )));
        sys.power_on();
        sys.run_for(SimDuration::from_millis(50));
        let c: &ConsoleDevice = sys.device_as(console).unwrap();
        assert_eq!(c.state(), ConsoleState::Failed(lastcpu_bus::Status::Denied));
    }

    #[test]
    fn killed_device_is_fenced_and_revived_by_reset() {
        let mut sys = base_system();
        sys.add_memctl("memctl0");
        let auth = sys.add_device(Box::new(AuthDevice::new("auth0", 1, &[])));
        sys.power_on();
        sys.run_for(SimDuration::from_millis(1));
        assert_eq!(sys.bus().alive().count(), 2);
        sys.kill_device(auth, false);
        assert_eq!(sys.bus().alive().count(), 1);
        // The bus reset pulse revives it; it re-registers via Hello.
        sys.run_for(SimDuration::from_millis(5));
        assert_eq!(sys.bus().alive().count(), 2);
        assert_eq!(sys.stats().counter("system.device_resets"), 1);
    }

    #[test]
    fn permanent_kill_stays_dead() {
        let mut sys = base_system();
        sys.add_memctl("memctl0");
        let auth = sys.add_device(Box::new(AuthDevice::new("auth0", 1, &[])));
        sys.power_on();
        sys.run_for(SimDuration::from_millis(1));
        sys.kill_device(auth, true);
        sys.run_for(SimDuration::from_millis(10));
        assert_eq!(sys.bus().alive().count(), 1);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let mut sys = base_system();
            let memctl = sys.add_memctl("memctl0");
            sys.add_device(Box::new(AuthDevice::new("auth0", 0xFEED, &[("op", "pw")])));
            let mut fs = small_fs();
            fs.create("/l").unwrap();
            fs.write("/l", 0, &vec![7u8; 5000]).unwrap();
            sys.add_device(Box::new(SmartSsd::new(
                "ssd0",
                fs,
                SsdConfig {
                    exports: vec!["/l".into()],
                    file_auth: AuthMode::Sealed { secret: 0xFEED },
                    ..SsdConfig::default()
                },
            )));
            sys.add_device(Box::new(ConsoleDevice::new(
                "console0", memctl.id, "op", "pw", "/l",
            )));
            sys.power_on();
            sys.run_for(SimDuration::from_millis(30));
            (
                sys.now(),
                sys.trace().total_emitted(),
                sys.stats().counter("bus.pages_mapped"),
                sys.bus().stats().messages,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crash_fault_recovers_and_records_latency() {
        use lastcpu_sim::{FaultKind, FaultPlan};
        let mut plan = FaultPlan::new(1);
        plan.inject(
            SimTime::ZERO + SimDuration::from_millis(2),
            "auth0",
            FaultKind::Crash,
        );
        let mut sys = System::new(SystemConfig {
            fault_plan: Some(plan),
            ..SystemConfig::default()
        });
        sys.add_memctl("memctl0");
        sys.add_device(Box::new(AuthDevice::new("auth0", 1, &[])));
        sys.power_on();
        sys.run_for(SimDuration::from_millis(20));
        assert_eq!(sys.bus().alive().count(), 2, "crashed device re-registered");
        assert_eq!(sys.stats().counter("fault.injected"), 1);
        let h = sys
            .stats()
            .histogram("bus.auth0.recovery_latency")
            .expect("histogram registered");
        assert_eq!(h.count(), 1, "one recovery recorded");
        assert!(
            h.mean() >= sys.config.reset_latency,
            "recovery >= reset pulse"
        );
    }

    #[test]
    fn hang_fault_is_detected_by_liveness_and_recovered() {
        use lastcpu_sim::{FaultKind, FaultPlan};
        let mut plan = FaultPlan::new(1);
        plan.inject(
            SimTime::ZERO + SimDuration::from_millis(3),
            "auth0",
            FaultKind::Hang,
        );
        let mut sys = System::new(SystemConfig {
            fault_plan: Some(plan),
            // The hang is silent: only the heartbeat sweep can notice.
            liveness_interval: Some(SimDuration::from_millis(2)),
            ..SystemConfig::default()
        });
        sys.add_memctl("memctl0");
        sys.add_device(Box::new(AuthDevice::new("auth0", 1, &[])));
        sys.power_on();
        // Default heartbeat timeout is 10ms; detection needs hang + lapse.
        sys.run_for(SimDuration::from_millis(40));
        assert_eq!(sys.bus().alive().count(), 2, "hung device recovered");
        let h = sys
            .stats()
            .histogram("bus.auth0.recovery_latency")
            .expect("histogram registered");
        assert_eq!(h.count(), 1);
        assert!(
            h.mean() >= SimDuration::from_millis(10),
            "silent hang detection is bounded below by the heartbeat timeout, got {}",
            h.mean()
        );
    }

    #[test]
    fn dropped_hello_is_retransmitted_by_rpc_retry() {
        use lastcpu_bus::RetryConfig;
        use lastcpu_sim::{FaultKind, FaultPlan};
        // Arm a drop *before* power-on: the device's very first Hello is
        // eaten on the wire. Without retries it would stay invisible until
        // something reset it; with retries it re-registers on its own.
        let mut plan = FaultPlan::new(1);
        plan.inject(SimTime::ZERO, "auth0", FaultKind::Drop { count: 1 });
        let mut sys = System::new(SystemConfig {
            fault_plan: Some(plan),
            rpc_retry: Some(RetryConfig::default()),
            ..SystemConfig::default()
        });
        sys.add_memctl("memctl0");
        sys.add_device(Box::new(AuthDevice::new("auth0", 1, &[])));
        sys.power_on();
        sys.run_for(SimDuration::from_millis(5));
        assert_eq!(sys.bus().alive().count(), 2, "lost Hello was retried");
        assert!(sys.stats().counter("bus.auth0.retries") >= 1);
        assert_eq!(sys.stats().counter("fault.msgs_dropped"), 1);
        let rs = sys.rpc_stats().expect("retry enabled");
        assert!(rs.recovered >= 1, "completion arrived after a retry");
        assert_eq!(rs.give_ups, 0);
    }

    #[test]
    fn faulty_run_replays_bit_identically() {
        use lastcpu_bus::RetryConfig;
        use lastcpu_sim::{FaultPlan, SimTime as T};
        let run = || {
            let plan = FaultPlan::generate(
                99,
                &["auth0", "console0", "ssd0"],
                T::ZERO,
                SimDuration::from_millis(30),
                12,
            );
            let mut sys = System::new(SystemConfig {
                fault_plan: Some(plan),
                rpc_retry: Some(RetryConfig::default()),
                ..SystemConfig::default()
            });
            let memctl = sys.add_memctl("memctl0");
            sys.add_device(Box::new(AuthDevice::new("auth0", 0xFEED, &[("op", "pw")])));
            let mut fs = small_fs();
            fs.create("/l").unwrap();
            fs.write("/l", 0, &vec![7u8; 3000]).unwrap();
            sys.add_device(Box::new(SmartSsd::new(
                "ssd0",
                fs,
                SsdConfig {
                    exports: vec!["/l".into()],
                    file_auth: AuthMode::Sealed { secret: 0xFEED },
                    ..SsdConfig::default()
                },
            )));
            sys.add_device(Box::new(ConsoleDevice::new(
                "console0", memctl.id, "op", "pw", "/l",
            )));
            sys.power_on();
            sys.run_for(SimDuration::from_millis(40));
            (
                sys.now(),
                sys.trace().total_emitted(),
                sys.stats().counter("fault.injected"),
                sys.stats().counter("fault.msgs_dropped"),
                sys.stats().counter("bus.rpc_retries"),
                sys.stats().counter("system.device_resets"),
                sys.bus().stats().messages,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn busy_device_defers_events() {
        // The SSD charges flash latencies; while busy, later messages wait.
        // Covered implicitly by the end-to-end tests; here we check the
        // mechanism directly with two starts of the same device kind.
        let mut sys = base_system();
        sys.add_memctl("memctl0");
        sys.power_on();
        let n = sys.run_for(SimDuration::from_millis(1));
        assert!(n > 0);
    }
}
