//! External network hosts.
//!
//! A [`NetHost`] is a machine on the far side of the network — a client
//! driving the KVS, a load generator, an operator's workstation. Hosts are
//! *not* devices: they have no bus address, no IOMMU, no access to anything
//! but their switch port. They exist so workloads enter the system the way
//! the paper describes — "The NIC exposes a KVS interface to other machines
//! over the network" (§3).

use lastcpu_net::{Frame, PortId};
use lastcpu_sim::{CorrId, DetRng, MetricsHub, SimDuration, SimTime};

/// Effects a host queues during a callback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostAction {
    /// Transmit a frame.
    NetTx(Frame),
    /// Arm a timer.
    SetTimer {
        /// Delay until the timer fires.
        delay: SimDuration,
        /// Token returned in `on_timer`.
        token: u64,
    },
    /// Emit a trace record.
    Trace(String),
}

/// Execution context of a host callback.
pub struct HostCtx<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// The host's switch port.
    pub port: PortId,
    /// Correlation id of the activity this callback belongs to. Frames the
    /// host transmits and timers it arms inherit it.
    pub corr: CorrId,
    /// The system-wide metrics hub (hosts record end-to-end latencies).
    pub stats: &'a MetricsHub,
    rng: &'a mut DetRng,
    actions: Vec<HostAction>,
}

impl<'a> HostCtx<'a> {
    /// Creates a context. Called by the simulator only.
    pub fn new(
        now: SimTime,
        port: PortId,
        stats: &'a MetricsHub,
        rng: &'a mut DetRng,
        corr: CorrId,
    ) -> Self {
        HostCtx {
            now,
            port,
            corr,
            stats,
            rng,
            actions: Vec::new(),
        }
    }

    /// The host's deterministic RNG.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Queues a frame for transmission.
    pub fn net_tx(&mut self, dst: PortId, payload: Vec<u8>) {
        let frame = Frame::unicast(self.port, dst, payload);
        self.actions.push(HostAction::NetTx(frame));
    }

    /// Arms a timer.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.actions.push(HostAction::SetTimer { delay, token });
    }

    /// Emits a trace record.
    pub fn trace(&mut self, what: impl Into<String>) {
        self.actions.push(HostAction::Trace(what.into()));
    }

    /// Consumes the context. Called by the simulator only.
    pub fn finish(self) -> Vec<HostAction> {
        self.actions
    }
}

/// A machine on the network.
///
/// The `Any` supertrait lets the simulator hand back typed references for
/// workload inspection.
pub trait NetHost: std::any::Any {
    /// Host name (for traces).
    fn name(&self) -> &str;

    /// Called once at power-on.
    fn on_start(&mut self, ctx: &mut HostCtx<'_>);

    /// A frame arrived on the host's port.
    fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: Frame);

    /// A timer armed with [`HostCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut HostCtx<'_>, _token: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_queues_actions_in_order() {
        let stats = MetricsHub::new();
        let mut rng = DetRng::new(1);
        let mut ctx = HostCtx::new(SimTime::ZERO, PortId(3), &stats, &mut rng, CorrId::NONE);
        ctx.net_tx(PortId(9), vec![1]);
        ctx.set_timer(SimDuration::from_micros(1), 7);
        ctx.trace("x");
        let a = ctx.finish();
        assert!(matches!(&a[0], HostAction::NetTx(f) if f.src == PortId(3) && f.dst == PortId(9)));
        assert!(matches!(a[1], HostAction::SetTimer { token: 7, .. }));
        assert!(matches!(&a[2], HostAction::Trace(_)));
    }
}
