//! External network hosts.
//!
//! A [`NetHost`] is a machine on the far side of the network — a client
//! driving the KVS, a load generator, an operator's workstation. Hosts are
//! *not* devices: they have no bus address, no IOMMU, no access to anything
//! but their switch port. They exist so workloads enter the system the way
//! the paper describes — "The NIC exposes a KVS interface to other machines
//! over the network" (§3).

use lastcpu_net::{Frame, PortId};
use lastcpu_sim::{BufPool, Bytes, CorrId, DetRng, MetricsHub, SimDuration, SimTime};

/// Effects a host queues during a callback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostAction {
    /// Transmit a frame.
    NetTx(Frame),
    /// Arm a timer.
    SetTimer {
        /// Delay until the timer fires.
        delay: SimDuration,
        /// Token returned in `on_timer`.
        token: u64,
    },
    /// Emit a trace record.
    Trace(String),
    /// Emit a critical-path stage mark (see [`lastcpu_sim::critpath`]).
    Stage {
        /// Milestone label (`client.issue`, `router.recv`, …).
        stage: &'static str,
        /// Primary join key.
        id: u64,
        /// Secondary disambiguator.
        aux: u64,
    },
}

/// Execution context of a host callback.
pub struct HostCtx<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// The host's switch port.
    pub port: PortId,
    /// Correlation id of the activity this callback belongs to. Frames the
    /// host transmits and timers it arms inherit it.
    pub corr: CorrId,
    /// The system-wide metrics hub (hosts record end-to-end latencies).
    pub stats: &'a MetricsHub,
    /// Whether the system's trace sink is collecting. Hosts use this to
    /// skip building [`HostAction::Trace`] / [`HostAction::Stage`] payloads
    /// on hot paths when nothing would record them.
    pub tracing: bool,
    rng: &'a mut DetRng,
    pool: Option<&'a BufPool>,
    actions: Vec<HostAction>,
}

impl<'a> HostCtx<'a> {
    /// Creates a context. Called by the simulator only.
    pub fn new(
        now: SimTime,
        port: PortId,
        stats: &'a MetricsHub,
        rng: &'a mut DetRng,
        corr: CorrId,
    ) -> Self {
        HostCtx {
            now,
            port,
            corr,
            stats,
            tracing: false,
            rng,
            pool: None,
            actions: Vec::new(),
        }
    }

    /// Marks the context as tracing-enabled (the simulator sets this from
    /// the trace sink's state before each callback).
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Attaches the machine's payload-buffer pool (simulator only).
    pub fn with_pool(mut self, pool: &'a BufPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Seeds the action buffer with a reusable scratch `Vec` (simulator
    /// only; the simulator stores the `Vec` back after draining it, so the
    /// per-callback allocation disappears).
    pub fn with_scratch(mut self, actions: Vec<HostAction>) -> Self {
        debug_assert!(actions.is_empty());
        self.actions = actions;
        self
    }

    /// The host's deterministic RNG.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// An empty payload buffer, drawn from the machine's pool when one is
    /// attached. Encode into it and pass it to [`HostCtx::net_tx`]; the
    /// storage recycles when the frame is consumed at the receiver.
    pub fn take_buf(&self) -> Bytes {
        match self.pool {
            Some(p) => p.take(),
            None => Bytes::new(),
        }
    }

    /// A payload buffer pre-filled with `len` copies of `byte` (pooled when
    /// a pool is attached).
    pub fn take_buf_filled(&self, byte: u8, len: usize) -> Bytes {
        match self.pool {
            Some(p) => p.take_filled(byte, len),
            None => vec![byte; len].into(),
        }
    }

    /// Queues a frame for transmission.
    pub fn net_tx(&mut self, dst: PortId, payload: impl Into<Bytes>) {
        let frame = Frame::unicast(self.port, dst, payload);
        self.actions.push(HostAction::NetTx(frame));
    }

    /// Arms a timer.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.actions.push(HostAction::SetTimer { delay, token });
    }

    /// Emits a trace record.
    pub fn trace(&mut self, what: impl Into<String>) {
        self.actions.push(HostAction::Trace(what.into()));
    }

    /// Emits a critical-path stage mark. A no-op while the trace sink is
    /// disabled, so per-operation marks cost performance runs nothing.
    #[inline]
    pub fn stage(&mut self, stage: &'static str, id: u64, aux: u64) {
        if self.tracing {
            self.actions.push(HostAction::Stage { stage, id, aux });
        }
    }

    /// Consumes the context. Called by the simulator only.
    pub fn finish(self) -> Vec<HostAction> {
        self.actions
    }
}

/// A machine on the network.
///
/// The `Any` supertrait lets the simulator hand back typed references for
/// workload inspection.
pub trait NetHost: std::any::Any {
    /// Host name (for traces).
    fn name(&self) -> &str;

    /// Called once at power-on.
    fn on_start(&mut self, ctx: &mut HostCtx<'_>);

    /// A frame arrived on the host's port.
    fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: Frame);

    /// A timer armed with [`HostCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut HostCtx<'_>, _token: u64) {}

    /// Serializes the host's durable state into a checkpoint section
    /// body. Loud default: a host type either implements this or cannot
    /// appear in a checkpointed machine.
    fn snapshot_state(&self, _w: &mut lastcpu_snap::SnapWriter) -> lastcpu_snap::Result<()> {
        Err(lastcpu_snap::SnapError::Unsupported(format!(
            "host {:?}",
            self.name()
        )))
    }

    /// Loads state written by [`NetHost::snapshot_state`] back in place.
    fn restore_state(&mut self, _r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        Err(lastcpu_snap::SnapError::Unsupported(format!(
            "host {:?}",
            self.name()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_queues_actions_in_order() {
        let stats = MetricsHub::new();
        let mut rng = DetRng::new(1);
        let mut ctx = HostCtx::new(SimTime::ZERO, PortId(3), &stats, &mut rng, CorrId::NONE);
        ctx.net_tx(PortId(9), vec![1]);
        ctx.set_timer(SimDuration::from_micros(1), 7);
        ctx.trace("x");
        let a = ctx.finish();
        assert!(matches!(&a[0], HostAction::NetTx(f) if f.src == PortId(3) && f.dst == PortId(9)));
        assert!(matches!(a[1], HostAction::SetTimer { token: 7, .. }));
        assert!(matches!(&a[2], HostAction::Trace(_)));
    }

    #[test]
    fn stage_marks_follow_the_tracing_flag() {
        let stats = MetricsHub::new();
        let mut rng = DetRng::new(1);
        let mut off = HostCtx::new(SimTime::ZERO, PortId(3), &stats, &mut rng, CorrId::NONE);
        off.stage("client.issue", 1, 2);
        assert!(off.finish().is_empty(), "marks dropped while not tracing");

        let mut rng = DetRng::new(1);
        let mut on = HostCtx::new(SimTime::ZERO, PortId(3), &stats, &mut rng, CorrId::NONE)
            .with_tracing(true);
        on.stage("client.issue", 1, 2);
        let a = on.finish();
        assert!(matches!(
            a[0],
            HostAction::Stage {
                stage: "client.issue",
                id: 1,
                aux: 2
            }
        ));
    }
}
