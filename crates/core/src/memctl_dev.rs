//! Device wrapper for the memory controller.
//!
//! `lastcpu-memctl` is pure policy logic; this wrapper gives it a device
//! body: power-on self-test, `Hello`, heartbeats, and the `memory` service
//! announcement other devices discover (§2.2: the controller is a device
//! like any other — only its *controllership* of the Memory resource class
//! is privileged, and that is granted by the bus, not assumed).

use lastcpu_bus::{Dst, Envelope, Payload, ResourceKind, ServiceDesc, ServiceId};
use lastcpu_devices::device::{Device, DeviceCtx};
use lastcpu_memctl::{MemCtlConfig, MemoryController};
use lastcpu_sim::SimDuration;

/// Heartbeat timer token.
const TOKEN_HEARTBEAT: u64 = 1;

/// The memory-controller device.
pub struct MemCtlDevice {
    name: String,
    ctl: MemoryController,
    heartbeat: SimDuration,
}

impl MemCtlDevice {
    /// Wraps a controller with bus address `id` over `dram_bytes` of DRAM.
    pub fn new(name: &str, id: lastcpu_bus::DeviceId, dram_bytes: u64) -> Self {
        Self::with_config(name, id, dram_bytes, MemCtlConfig::default())
    }

    /// Wraps a controller with an explicit policy configuration.
    pub fn with_config(
        name: &str,
        id: lastcpu_bus::DeviceId,
        dram_bytes: u64,
        config: MemCtlConfig,
    ) -> Self {
        MemCtlDevice {
            name: name.to_string(),
            ctl: MemoryController::with_config(id, dram_bytes, config),
            heartbeat: SimDuration::from_millis(2),
        }
    }

    /// The wrapped controller (stats, inspection).
    pub fn controller(&self) -> &MemoryController {
        &self.ctl
    }

    fn forward(ctx: &mut DeviceCtx<'_>, out: Vec<Envelope>) {
        for e in out {
            ctx.send_bus_with_req(e.dst, e.req, e.payload);
        }
    }
}

impl Device for MemCtlDevice {
    fn snapshot_state(&self, w: &mut lastcpu_snap::SnapWriter) -> lastcpu_snap::Result<()> {
        w.put_str(&self.name);
        w.put_u64(self.heartbeat.as_nanos());
        lastcpu_snap::Snapshot::snapshot(&self.ctl, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.name = r.str()?;
        self.heartbeat = SimDuration::from_nanos(r.u64()?);
        lastcpu_snap::Restore::restore(&mut self.ctl, r)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "memory-controller"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.busy(SimDuration::from_micros(10)); // DRAM training, ECC scrub
        ctx.send_bus(
            Dst::Bus,
            Payload::Hello {
                name: self.name.clone(),
                kind: "memory-controller".into(),
            },
        );
        // Claim the Memory resource class (§2.2 "Address Translation").
        let mut out = Vec::new();
        self.ctl.on_start(&mut out);
        Self::forward(ctx, out);
        // Announce the allocation service so applications can discover the
        // controller instead of hard-wiring its address.
        ctx.send_bus(
            Dst::Bus,
            Payload::Announce {
                service: ServiceDesc {
                    id: ServiceId(1),
                    name: "memory".into(),
                    resource: ResourceKind::Memory,
                },
            },
        );
        ctx.set_timer(self.heartbeat, TOKEN_HEARTBEAT);
    }

    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        match env.payload {
            // Queries for the memory service are answered directly (the
            // wrapper has no Monitor — the controller is deliberately the
            // smallest possible device).
            Payload::Query { ref pattern } if pattern == "memory" || pattern == "memory*" => {
                ctx.send_bus_with_req(
                    Dst::Device(env.src),
                    env.req,
                    Payload::QueryHit {
                        device: self.ctl.id(),
                        service: ServiceDesc {
                            id: ServiceId(1),
                            name: "memory".into(),
                            resource: ResourceKind::Memory,
                        },
                    },
                );
            }
            Payload::Query { .. }
            | Payload::HelloAck { .. }
            | Payload::Announce { .. }
            | Payload::Withdraw { .. } => {}
            _ => {
                // Per-message firmware cost: table lookups and updates.
                ctx.busy(SimDuration::from_nanos(400));
                let mut out = Vec::new();
                self.ctl.handle(&env, &mut out);
                Self::forward(ctx, out);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        if token == TOKEN_HEARTBEAT {
            ctx.send_bus(Dst::Bus, Payload::Heartbeat);
            ctx.set_timer(self.heartbeat, TOKEN_HEARTBEAT);
        }
    }

    fn on_reset(&mut self, ctx: &mut DeviceCtx<'_>) {
        // A memory-controller reset loses the allocation tables: in a real
        // machine this is close to fatal. The wrapper re-registers; the
        // tables start empty (documented failure-model boundary).
        ctx.busy(SimDuration::from_micros(10));
        ctx.send_bus(
            Dst::Bus,
            Payload::Hello {
                name: self.name.clone(),
                kind: "memory-controller".into(),
            },
        );
        let mut out = Vec::new();
        self.ctl.on_start(&mut out);
        Self::forward(ctx, out);
        ctx.set_timer(self.heartbeat, TOKEN_HEARTBEAT);
    }
}
