//! Tracing and the span profiler must compose: enabling `--profile` next to
//! `--trace-out` cannot change the recorded trace, and the profiler's own
//! accounting must not double-count nested spans.

#![cfg(feature = "profiling")]

use lastcpu_core::{HostCtx, NetHost, System, SystemConfig};
use lastcpu_devices::auth::AuthDevice;
use lastcpu_devices::console::ConsoleDevice;
use lastcpu_devices::flash::{NandChip, NandConfig};
use lastcpu_devices::fs::FlashFs;
use lastcpu_devices::ftl::Ftl;
use lastcpu_devices::monitor::AuthMode;
use lastcpu_devices::nic::{EchoApp, SmartNic};
use lastcpu_devices::ssd::{SmartSsd, SsdConfig};
use lastcpu_net::{Frame, PortId};
use lastcpu_sim::export::trace_jsonl;
use lastcpu_sim::{profile, SimDuration};

/// Fires pings at the echo NIC, one per reply.
struct Pinger {
    nic_port: PortId,
    remaining: u32,
    replies: u32,
}

impl NetHost for Pinger {
    fn name(&self) -> &str {
        "pinger"
    }
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.remaining -= 1;
        ctx.net_tx(self.nic_port, b"ping".to_vec());
    }
    fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: Frame) {
        self.replies += 1;
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.net_tx(self.nic_port, frame.payload);
        }
    }
}

/// Runs the echo workload with tracing on; returns the trace as JSONL.
fn echo_run() -> String {
    let mut sys = System::new(SystemConfig::default());
    sys.add_memctl("memctl0");
    let nic = sys.add_net_device(Box::new(SmartNic::new("nic0", EchoApp::new())));
    let nic_port = sys.device_port(nic).unwrap();
    let host_port = sys.add_host(Box::new(Pinger {
        nic_port,
        remaining: 20,
        replies: 0,
    }));
    sys.power_on();
    sys.run_for(SimDuration::from_millis(20));
    let p: &Pinger = sys.host_as(host_port).unwrap();
    assert_eq!(p.replies, 20, "echo workload must complete");
    trace_jsonl(sys.trace())
}

/// Runs the console end-to-end workload (auth + discovery + VIRTIO reads),
/// which exercises spans *nested* inside engine event scopes (the IOMMU
/// translates during DMA); returns the trace as JSONL.
fn console_run() -> String {
    let mut sys = System::new(SystemConfig::default());
    let memctl = sys.add_memctl("memctl0");
    sys.add_device(Box::new(AuthDevice::new(
        "auth0",
        0xFEED,
        &[("operator", "hunter2")],
    )));
    let mut fs = FlashFs::format(Ftl::new(NandChip::new(NandConfig {
        blocks: 64,
        pages_per_block: 32,
        page_size: 4096,
        max_erase_cycles: u32::MAX,
        ..NandConfig::default()
    })));
    fs.create("/logs/app.log").unwrap();
    fs.write("/logs/app.log", 0, b"kv-store started\n").unwrap();
    sys.add_device(Box::new(SmartSsd::new(
        "ssd0",
        fs,
        SsdConfig {
            exports: vec!["/logs/app.log".into()],
            file_auth: AuthMode::Sealed { secret: 0xFEED },
            ..SsdConfig::default()
        },
    )));
    sys.add_device(Box::new(ConsoleDevice::new(
        "console0",
        memctl.id,
        "operator",
        "hunter2",
        "/logs/app.log",
    )));
    sys.power_on();
    sys.run_for(SimDuration::from_millis(50));
    trace_jsonl(sys.trace())
}

#[test]
fn profiler_does_not_perturb_the_trace() {
    // Same seed, tracing on both times; profiling off vs. on. The trace is
    // pure virtual time, so the two runs must export identical bytes — the
    // profiler observes the run, it must not participate in it.
    profile::reset();
    profile::set_enabled(false);
    let without = echo_run();
    profile::set_enabled(true);
    let with = echo_run();
    profile::set_enabled(false);
    profile::reset();
    assert_eq!(without, with, "profiling changed the recorded trace");

    // Same property on the DMA-heavy workload (nested spans active).
    profile::reset();
    profile::set_enabled(false);
    let without = console_run();
    profile::set_enabled(true);
    let with = console_run();
    profile::set_enabled(false);
    profile::reset();
    assert_eq!(without, with, "profiling changed the recorded trace");
}

#[test]
fn nested_spans_do_not_double_count_root_time() {
    profile::reset();
    profile::set_enabled(true);
    let _ = console_run();
    let snap = profile::snapshot();
    profile::set_enabled(false);
    profile::reset();

    let find = |name: &str| snap.scopes.iter().find(|s| s.name == name);

    // The engine pop loop and per-event scopes are top level; everything
    // they call (IOMMU translation, device work) nests underneath.
    let pop = find("engine.pop").expect("engine.pop scope recorded");
    assert!(pop.spans > 0);
    assert_eq!(pop.wall_ns, pop.wall_root_ns, "engine.pop is top-level");

    // iommu.translate always runs inside an engine event scope (a DMA is
    // processed while handling a delivery), so none of its wall time may
    // count toward the root total.
    let iommu = find("iommu.translate").expect("iommu.translate scope recorded");
    assert!(iommu.spans > 0, "console workload performed no DMA");
    assert!(iommu.wall_ns > 0);
    assert_eq!(
        iommu.wall_root_ns, 0,
        "nested span double-counted into roots"
    );

    // Coverage arithmetic: the root total is the sum of root times and can
    // never exceed the (nesting-inflated) flat sum.
    let flat: u64 = snap.scopes.iter().map(|s| s.wall_ns).sum();
    assert!(snap.wall_root_total_ns() <= flat);

    // Sim-time attribution flows through the same scopes: the dispatcher
    // charged handler service time to the event scopes it ran under.
    assert!(snap.sim_total_ns() > 0, "no sim-ns attributed");
}
