//! Versioned, deterministic snapshot/restore framing (DESIGN.md §14).
//!
//! Everything stateful in the simulator serializes into a [`Checkpoint`]: a
//! manifest (schema version, seed, virtual time, event cursor) plus named
//! per-component *sections*, each an independently checksummed byte string
//! with stable little-endian framing. The format is deliberately dumb —
//! fixed-width LE integers, length-prefixed byte strings, no compression
//! except an RLE helper for sparse memory — because the property that
//! matters is not density but *stability*: the same component state must
//! encode to the same bytes on every host, every run, every thread count.
//!
//! Two traits split the work:
//!
//! - [`Snapshot`] — serialize your state into a [`SnapWriter`]. Every
//!   stateful component implements this; it needs only `&self`.
//! - [`Restore`] — load state back *in place* from a [`SnapReader`].
//!   Implemented where in-place loading is tractable (RNGs, queues, pools,
//!   metrics); higher layers (`System`, `Fabric`) restore by deterministic
//!   re-execution to the manifest's event cursor and then *verify* every
//!   section byte-for-byte against a fresh snapshot (see DESIGN.md §14 for
//!   why re-execution + verification is equivalent to in-place loading in a
//!   deterministic simulator, and strictly harder to get silently wrong).
//!
//! Corruption never loads partially: [`Checkpoint::decode`] verifies every
//! section checksum before any component sees any bytes, and readers
//! bounds-check every primitive.

use std::collections::BTreeMap;
use std::fmt;

/// Bumped whenever the framing or any section layout changes shape.
/// v2: the fabric section serializes per-topology-link queue cursors and
/// traffic counters instead of per-machine uplink/downlink busy times.
pub const SCHEMA_VERSION: u32 = 2;

/// File magic: identifies a lastcpu checkpoint, revision 1 of the framing.
pub const MAGIC: &[u8; 8] = b"LCSNAP1\0";

/// FNV-1a offset basis (also the seed callers use for rolling digests).
pub const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds more bytes into a rolling FNV-1a digest.
pub fn fnv1a_fold(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Interns a string with `'static` lifetime.
///
/// Checkpointed enums carry a few `&'static str` fields (trace stage names,
/// delivery kinds); restore rebuilds them through this table. Each distinct
/// string leaks exactly once per process — the sets involved are tiny and
/// fixed (protocol milestone names), so this is bounded.
pub fn intern_static(s: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static TABLE: OnceLock<Mutex<std::collections::BTreeSet<&'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(std::collections::BTreeSet::new()));
    let mut t = table.lock().expect("intern table poisoned");
    if let Some(&hit) = t.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    t.insert(leaked);
    leaked
}

/// Why a checkpoint could not be produced or loaded.
#[derive(Debug)]
pub enum SnapError {
    /// The byte stream is structurally invalid (truncated, bad magic,
    /// trailing garbage, out-of-range length).
    Corrupt { section: String, detail: String },
    /// A section's stored checksum does not match its body. Restore refuses
    /// to load *any* state from a checkpoint with a bad section.
    ChecksumMismatch {
        section: String,
        want: u64,
        got: u64,
    },
    /// The checkpoint was written by an incompatible schema revision.
    VersionMismatch { want: u32, got: u32 },
    /// A component the restore path needs is absent from the checkpoint.
    MissingSection(String),
    /// The component does not support snapshot (default trait impls fail
    /// loudly rather than silently skipping state).
    Unsupported(String),
    /// Re-executed state diverged from the checkpointed section bytes.
    VerifyMismatch { section: String, detail: String },
    /// Filesystem error reading or writing a checkpoint file.
    Io(std::io::Error),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Corrupt { section, detail } => {
                write!(f, "corrupt section {section:?}: {detail}")
            }
            SnapError::ChecksumMismatch { section, want, got } => write!(
                f,
                "checksum mismatch in section {section:?}: stored {want:#018x}, body hashes to {got:#018x}"
            ),
            SnapError::VersionMismatch { want, got } => {
                write!(f, "schema version mismatch: this build reads v{want}, checkpoint is v{got}")
            }
            SnapError::MissingSection(s) => write!(f, "checkpoint has no section {s:?}"),
            SnapError::Unsupported(what) => {
                write!(f, "component {what:?} does not support snapshot/restore")
            }
            SnapError::VerifyMismatch { section, detail } => {
                write!(f, "restored state diverged in section {section:?}: {detail}")
            }
            SnapError::Io(e) => write!(f, "checkpoint i/o: {e}"),
        }
    }
}

impl std::error::Error for SnapError {}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> Self {
        SnapError::Io(e)
    }
}

pub type Result<T> = std::result::Result<T, SnapError>;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Append-only little-endian encoder for one section body.
#[derive(Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        // Bit pattern, not value: NaN payloads and -0.0 must round-trip so
        // snapshot→restore→snapshot is byte-identical.
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// A collection length (u64 on the wire so usize width cannot matter).
    pub fn put_len(&mut self, n: usize) {
        self.put_u64(n as u64);
    }

    /// Length-prefixed raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_len(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// `Some`/`None` tagged value.
    pub fn put_opt<T>(&mut self, v: Option<&T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            None => self.put_u8(0),
            Some(t) => {
                self.put_u8(1);
                f(self, t);
            }
        }
    }

    /// Byte run-length encoding for sparse memory images: pairs of
    /// (run_len u64, byte u8). Typical DRAM images are almost all zero.
    pub fn put_bytes_rle(&mut self, b: &[u8]) {
        self.put_len(b.len());
        let mut i = 0;
        let mut runs = 0u64;
        let runs_pos = self.buf.len();
        self.put_u64(0); // patched below
        while i < b.len() {
            let byte = b[i];
            let mut j = i + 1;
            while j < b.len() && b[j] == byte {
                j += 1;
            }
            self.put_u64((j - i) as u64);
            self.put_u8(byte);
            runs += 1;
            i = j;
        }
        self.buf[runs_pos..runs_pos + 8].copy_from_slice(&runs.to_le_bytes());
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian decoder over one section body.
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: String,
}

impl<'a> SnapReader<'a> {
    pub fn new(section: &str, buf: &'a [u8]) -> Self {
        SnapReader {
            buf,
            pos: 0,
            section: section.to_string(),
        }
    }

    /// Builds a [`SnapError::Corrupt`] naming this reader's section, for
    /// component decoders that detect semantic invariant violations.
    pub fn corrupt(&self, detail: impl Into<String>) -> SnapError {
        SnapError::Corrupt {
            section: self.section.clone(),
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(self.corrupt(format!(
                "truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Restore must consume sections exactly; leftover bytes mean the
    /// decoder and encoder disagree about the layout.
    pub fn finish(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(self.corrupt(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(self.corrupt(format!("bad bool byte {v}"))),
        }
    }

    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn u128(&mut self) -> Result<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A collection length, sanity-capped against the bytes actually left so
    /// a corrupted length cannot trigger an absurd allocation.
    ///
    /// This *decodes* a length field — it is not the reader's own size, so
    /// the `len`/`is_empty` pairing convention does not apply.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> Result<usize> {
        let n = self.u64()?;
        if n > (1u64 << 40) {
            return Err(self.corrupt(format!("implausible length {n}")));
        }
        Ok(n as usize)
    }

    pub fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.len()?;
        Ok(self.take(n)?.to_vec())
    }

    pub fn str(&mut self) -> Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b).map_err(|e| self.corrupt(format!("invalid utf-8: {e}")))
    }

    pub fn opt<T>(&mut self, mut f: impl FnMut(&mut Self) -> Result<T>) -> Result<Option<T>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            v => Err(self.corrupt(format!("bad option tag {v}"))),
        }
    }

    /// Inverse of [`SnapWriter::put_bytes_rle`].
    pub fn bytes_rle(&mut self) -> Result<Vec<u8>> {
        let total = self.len()?;
        let runs = self.u64()?;
        let mut out = Vec::with_capacity(total);
        for _ in 0..runs {
            let n = self.len()?;
            let byte = self.u8()?;
            if out.len() + n > total {
                return Err(self.corrupt("rle runs exceed declared length"));
            }
            out.resize(out.len() + n, byte);
        }
        if out.len() != total {
            return Err(self.corrupt(format!(
                "rle runs cover {} of {total} declared bytes",
                out.len()
            )));
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Traits
// ---------------------------------------------------------------------------

/// Serialize complete component state, deterministically.
///
/// The contract: two components in the same logical state write identical
/// bytes, regardless of how they reached that state (insertion order, thread
/// count, process lifetime). Anything violating that breaks checkpoint
/// verification, so implementations must iterate maps in sorted order and
/// never serialize addresses, capacities, or wall-clock values.
pub trait Snapshot {
    fn snapshot(&self, w: &mut SnapWriter);

    /// The component's section bytes, freshly encoded.
    fn snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        self.snapshot(&mut w);
        w.into_bytes()
    }
}

/// Load serialized state back in place.
///
/// After `restore`, a fresh [`Snapshot::snapshot_bytes`] must equal the bytes
/// that were restored from (the round-trip property the proptests pin).
pub trait Restore {
    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<()>;

    /// Restore from a full section body, requiring exact consumption.
    fn restore_bytes(&mut self, section: &str, bytes: &[u8]) -> Result<()> {
        let mut r = SnapReader::new(section, bytes);
        self.restore(&mut r)?;
        r.finish()
    }
}

// ---------------------------------------------------------------------------
// Manifest + checkpoint container
// ---------------------------------------------------------------------------

/// Checkpoint-wide metadata, written before any section.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Framing + section-layout revision ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Root seed of the checkpointed run.
    pub seed: u64,
    /// Virtual time at the checkpoint, nanoseconds.
    pub virtual_ns: u64,
    /// Events processed so far — the re-execution cursor for restore.
    pub events: u64,
    /// Fingerprint of the builder configuration; restore refuses to verify
    /// against a system built from a different recipe.
    pub config_fp: u64,
    /// Free-form producer tag (bench name, machine id, ...).
    pub label: String,
}

impl Manifest {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u32(self.schema_version);
        w.put_u64(self.seed);
        w.put_u64(self.virtual_ns);
        w.put_u64(self.events);
        w.put_u64(self.config_fp);
        w.put_str(&self.label);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Manifest> {
        Ok(Manifest {
            schema_version: r.u32()?,
            seed: r.u64()?,
            virtual_ns: r.u64()?,
            events: r.u64()?,
            config_fp: r.u64()?,
            label: r.str()?,
        })
    }
}

/// A manifest plus named, checksummed sections; the unit that hits disk.
///
/// Section order is insertion order and is part of the byte format, so
/// producers emit components in a fixed order and `encode` → `decode` →
/// `encode` is byte-identical.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Checkpoint {
    pub manifest: Manifest,
    sections: Vec<(String, Vec<u8>)>,
}

impl Checkpoint {
    pub fn new(manifest: Manifest) -> Self {
        Checkpoint {
            manifest,
            sections: Vec::new(),
        }
    }

    /// Adds a section; duplicate tags are a producer bug.
    pub fn add_section(&mut self, tag: &str, body: Vec<u8>) {
        assert!(
            self.sections.iter().all(|(t, _)| t != tag),
            "duplicate checkpoint section {tag:?}"
        );
        self.sections.push((tag.to_string(), body));
    }

    /// Serializes a component straight into a section.
    pub fn put(&mut self, tag: &str, c: &impl Snapshot) {
        self.add_section(tag, c.snapshot_bytes());
    }

    pub fn section(&self, tag: &str) -> Result<&[u8]> {
        self.sections
            .iter()
            .find(|(t, _)| t == tag)
            .map(|(_, b)| b.as_slice())
            .ok_or_else(|| SnapError::MissingSection(tag.to_string()))
    }

    pub fn has_section(&self, tag: &str) -> bool {
        self.sections.iter().any(|(t, _)| t == tag)
    }

    /// A reader over one section's body.
    pub fn reader(&self, tag: &str) -> Result<SnapReader<'_>> {
        Ok(SnapReader::new(tag, self.section(tag)?))
    }

    pub fn section_tags(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(t, _)| t.as_str())
    }

    pub fn section_count(&self) -> usize {
        self.sections.len()
    }

    /// Full binary encoding: magic, manifest, then each section as
    /// `tag, body, fnv1a(body)`.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.buf.extend_from_slice(MAGIC);
        self.manifest.encode(&mut w);
        w.put_len(self.sections.len());
        for (tag, body) in &self.sections {
            w.put_str(tag);
            w.put_bytes(body);
            w.put_u64(fnv1a(body));
        }
        w.into_bytes()
    }

    /// Decodes and *fully verifies* a checkpoint: magic, schema version, and
    /// every section checksum — before any component state is handed out.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint> {
        let mut r = SnapReader::new("checkpoint", bytes);
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(r.corrupt("bad magic: not a lastcpu checkpoint"));
        }
        let manifest = Manifest::decode(&mut r)?;
        if manifest.schema_version != SCHEMA_VERSION {
            return Err(SnapError::VersionMismatch {
                want: SCHEMA_VERSION,
                got: manifest.schema_version,
            });
        }
        let n = r.len()?;
        let mut ck = Checkpoint::new(manifest);
        for _ in 0..n {
            let tag = r.str()?;
            let body = r.bytes()?;
            let want = r.u64()?;
            let got = fnv1a(&body);
            if want != got {
                return Err(SnapError::ChecksumMismatch {
                    section: tag,
                    want,
                    got,
                });
            }
            ck.sections.push((tag, body));
        }
        r.finish()?;
        Ok(ck)
    }

    pub fn write_file(&self, path: &str) -> Result<()> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    pub fn read_file(path: &str) -> Result<Checkpoint> {
        Checkpoint::decode(&std::fs::read(path)?)
    }

    /// First divergence between two checkpoints, as a human-readable report
    /// (`None` when identical). Drives the loud restore-verification error.
    pub fn diff(&self, other: &Checkpoint) -> Option<String> {
        if self.manifest != other.manifest {
            return Some(format!(
                "manifest differs: {:?} vs {:?}",
                self.manifest, other.manifest
            ));
        }
        for (i, ((ta, ba), (tb, bb))) in self.sections.iter().zip(&other.sections).enumerate() {
            if ta != tb {
                return Some(format!("section {i} tag differs: {ta:?} vs {tb:?}"));
            }
            if ba != bb {
                let off = ba.iter().zip(bb.iter()).position(|(x, y)| x != y);
                return Some(format!(
                    "section {ta:?} differs: {} vs {} bytes, first divergence at {}",
                    ba.len(),
                    bb.len(),
                    off.map_or_else(|| "end".to_string(), |o| format!("offset {o}")),
                ));
            }
        }
        if self.sections.len() != other.sections.len() {
            return Some(format!(
                "section count differs: {} vs {}",
                self.sections.len(),
                other.sections.len()
            ));
        }
        None
    }

    /// One digest over the entire encoded checkpoint.
    pub fn digest(&self) -> u64 {
        fnv1a(&self.encode())
    }
}

// ---------------------------------------------------------------------------
// Blanket impls for common shapes
// ---------------------------------------------------------------------------

impl Snapshot for u64 {
    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_u64(*self);
    }
}

impl Restore for u64 {
    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<()> {
        *self = r.u64()?;
        Ok(())
    }
}

impl Snapshot for Vec<u8> {
    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_bytes(self);
    }
}

impl Restore for Vec<u8> {
    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<()> {
        *self = r.bytes()?;
        Ok(())
    }
}

impl Snapshot for BTreeMap<String, u64> {
    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_len(self.len());
        for (k, v) in self {
            w.put_str(k);
            w.put_u64(*v);
        }
    }
}

impl Restore for BTreeMap<String, u64> {
    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<()> {
        self.clear();
        let n = r.len()?;
        for _ in 0..n {
            let k = r.str()?;
            let v = r.u64()?;
            self.insert(k, v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut ck = Checkpoint::new(Manifest {
            schema_version: SCHEMA_VERSION,
            seed: 0xBEEF,
            virtual_ns: 123_456_789,
            events: 42,
            config_fp: 7,
            label: "test".into(),
        });
        let mut w = SnapWriter::new();
        w.put_u64(99);
        w.put_str("hello");
        w.put_f64(-0.0);
        ck.add_section("alpha", w.into_bytes());
        ck.add_section("beta", vec![1, 2, 3]);
        ck
    }

    #[test]
    fn encode_decode_round_trip_is_byte_identical() {
        let ck = sample();
        let bytes = ck.encode();
        let back = Checkpoint::decode(&bytes).expect("decodes");
        assert_eq!(ck, back);
        assert_eq!(bytes, back.encode());
        assert_eq!(back.diff(&ck), None);
    }

    #[test]
    fn corrupted_section_fails_loudly() {
        let ck = sample();
        let mut bytes = ck.encode();
        // Flip one byte inside section "beta"'s body (the [1,2,3] run near
        // the end, before its checksum).
        let idx = bytes
            .windows(3)
            .rposition(|w| w == [1, 2, 3])
            .expect("body present");
        bytes[idx] ^= 0xFF;
        match Checkpoint::decode(&bytes) {
            Err(SnapError::ChecksumMismatch { section, .. }) => assert_eq!(section, "beta"),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_fails_loudly() {
        let bytes = sample().encode();
        for cut in [0, 4, MAGIC.len(), bytes.len() - 1] {
            assert!(Checkpoint::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn version_mismatch_is_detected() {
        let mut ck = sample();
        ck.manifest.schema_version = SCHEMA_VERSION + 1;
        match Checkpoint::decode(&ck.encode()) {
            Err(SnapError::VersionMismatch { got, .. }) => {
                assert_eq!(got, SCHEMA_VERSION + 1)
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn rle_round_trip() {
        let mut img = vec![0u8; 4096];
        img[100] = 7;
        img[2000..2100].fill(0xAB);
        let mut w = SnapWriter::new();
        w.put_bytes_rle(&img);
        let enc = w.into_bytes();
        assert!(enc.len() < img.len() / 4, "rle should compress sparse data");
        let mut r = SnapReader::new("rle", &enc);
        assert_eq!(r.bytes_rle().unwrap(), img);
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_trailing_bytes() {
        let mut w = SnapWriter::new();
        w.put_u64(1);
        w.put_u64(2);
        let b = w.into_bytes();
        let mut r = SnapReader::new("t", &b);
        assert_eq!(r.u64().unwrap(), 1);
        assert!(r.finish().is_err());
        assert_eq!(r.u64().unwrap(), 2);
        r.finish().unwrap();
    }
}
