//! Physical-memory substrate for the `lastcpu` emulator.
//!
//! The paper's CPU-less machine still has ordinary DRAM behind a discrete
//! memory controller (§2.2 "Memory management"; §2.4 notes Intel's Memory
//! Controller Hub as the extinct hardware analogue). This crate models the
//! memory side of that machine:
//!
//! - [`addr`]: physical/virtual address newtypes, PASIDs, 4 KiB page math.
//! - [`frame`]: a buddy allocator over physical frames — the allocation
//!   *mechanism* the memory-controller device builds its policy on.
//! - [`dram`]: byte-addressable simulated DRAM (sparse, frame-granular
//!   backing) with an explicit bandwidth/latency cost model so DMA can be
//!   charged to virtual time.
//! - [`pagetable`]: a 4-level radix page table, the structure the system bus
//!   programs into each device's IOMMU.

pub mod addr;
pub mod dram;
pub mod frame;
pub mod pagetable;

pub use addr::{Pasid, PhysAddr, VirtAddr, PAGE_SHIFT, PAGE_SIZE};
pub use dram::{Dram, DramCostModel, DramError};
pub use frame::{FrameAllocError, FrameAllocator};
pub use pagetable::{MapError, PageTable, Perms, TranslateError};
