//! Four-level radix page tables.
//!
//! This is the structure the system bus programs into a device's IOMMU on
//! behalf of the memory controller (§2.2 "Address Translation"). The layout
//! mirrors x86-64/SMMU conventions: 48-bit virtual addresses, 9 translation
//! bits per level, 4 KiB leaf pages. Walks report how many node accesses
//! they performed so the IOMMU can charge an accurate virtual-time cost for
//! IOTLB misses.

use std::collections::HashMap;
use std::fmt;

use crate::addr::{PhysAddr, VirtAddr, PAGE_SHIFT};

/// Number of levels in the radix tree.
pub const LEVELS: usize = 4;
/// Translation bits per level.
pub const BITS_PER_LEVEL: u64 = 9;
/// Entries per node.
pub const ENTRIES: usize = 1 << BITS_PER_LEVEL;
/// Width of a translatable virtual address.
pub const VA_BITS: u64 = PAGE_SHIFT + BITS_PER_LEVEL * LEVELS as u64; // 48

/// Access permissions on a mapping.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms {
    bits: u8,
}

impl Perms {
    /// No access.
    pub const NONE: Perms = Perms { bits: 0 };
    /// Read-only.
    pub const R: Perms = Perms { bits: 1 };
    /// Write-only.
    pub const W: Perms = Perms { bits: 2 };
    /// Read-write.
    pub const RW: Perms = Perms { bits: 3 };
    /// Execute (device-side code fetch).
    pub const X: Perms = Perms { bits: 4 };
    /// Read-write-execute.
    pub const RWX: Perms = Perms { bits: 7 };

    /// Whether reads are allowed.
    pub const fn can_read(self) -> bool {
        self.bits & 1 != 0
    }

    /// Whether writes are allowed.
    pub const fn can_write(self) -> bool {
        self.bits & 2 != 0
    }

    /// Whether execution is allowed.
    pub const fn can_exec(self) -> bool {
        self.bits & 4 != 0
    }

    /// Whether every permission in `needed` is present in `self`.
    pub const fn allows(self, needed: Perms) -> bool {
        self.bits & needed.bits == needed.bits
    }

    /// Union of two permission sets.
    pub const fn union(self, other: Perms) -> Perms {
        Perms {
            bits: self.bits | other.bits,
        }
    }

    /// The raw permission bits (checkpoint wire form).
    pub const fn to_bits(self) -> u8 {
        self.bits
    }

    /// Rebuilds from [`Perms::to_bits`] output (extra bits are masked off).
    pub const fn from_bits(bits: u8) -> Perms {
        Perms { bits: bits & 7 }
    }
}

impl fmt::Debug for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.can_read() { "r" } else { "-" },
            if self.can_write() { "w" } else { "-" },
            if self.can_exec() { "x" } else { "-" },
        )
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Errors establishing a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The virtual page is already mapped (remapping requires an explicit
    /// unmap first — silent remaps hide grant-lifetime bugs).
    AlreadyMapped {
        /// The already-mapped virtual page base.
        va: VirtAddr,
    },
    /// Address is not page-aligned.
    Unaligned {
        /// The offending address.
        va: VirtAddr,
    },
    /// Virtual address exceeds the translatable range.
    OutOfRange {
        /// The offending address.
        va: VirtAddr,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::AlreadyMapped { va } => write!(f, "page {va} already mapped"),
            MapError::Unaligned { va } => write!(f, "address {va} is not page aligned"),
            MapError::OutOfRange { va } => write!(f, "address {va} outside {VA_BITS}-bit range"),
        }
    }
}

impl std::error::Error for MapError {}

/// Errors translating an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateError {
    /// No mapping exists for the page (a page fault).
    NotMapped {
        /// The faulting virtual address.
        va: VirtAddr,
    },
    /// A mapping exists but does not allow the requested access.
    PermissionDenied {
        /// The faulting virtual address.
        va: VirtAddr,
        /// Permissions present on the mapping.
        have: Perms,
        /// Permissions the access required.
        needed: Perms,
    },
    /// Virtual address exceeds the translatable range.
    OutOfRange {
        /// The faulting virtual address.
        va: VirtAddr,
    },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::NotMapped { va } => write!(f, "page fault: {va} not mapped"),
            TranslateError::PermissionDenied { va, have, needed } => {
                write!(f, "permission fault at {va}: have {have}, need {needed}")
            }
            TranslateError::OutOfRange { va } => {
                write!(f, "address {va} outside {VA_BITS}-bit range")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// A successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The translated physical address.
    pub pa: PhysAddr,
    /// Permissions on the containing page.
    pub perms: Perms,
    /// Page-table node accesses the walk performed (for cost accounting).
    pub walk_accesses: u32,
}

/// One leaf entry.
#[derive(Debug, Clone, Copy)]
struct Leaf {
    frame: u64,
    perms: Perms,
}

/// Interior node: children indexed 0..ENTRIES, stored sparsely.
#[derive(Default)]
struct Node {
    children: HashMap<u16, NodeRef>,
}

enum NodeRef {
    Interior(Box<Node>),
    Leaf(Leaf),
}

/// A 4-level radix page table for one address space.
///
/// # Examples
///
/// ```
/// use lastcpu_mem::{PageTable, Perms, PhysAddr, VirtAddr};
///
/// let mut pt = PageTable::new();
/// pt.map(VirtAddr::new(0x4000), PhysAddr::new(0x1000), Perms::RW).unwrap();
/// let t = pt.translate(VirtAddr::new(0x4010), Perms::R).unwrap();
/// assert_eq!(t.pa, PhysAddr::new(0x1010));
/// ```
pub struct PageTable {
    root: Node,
    mapped_pages: u64,
    node_count: u64,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable {
    /// An empty address space.
    pub fn new() -> Self {
        PageTable {
            root: Node::default(),
            mapped_pages: 0,
            node_count: 1,
        }
    }

    /// Number of 4 KiB pages currently mapped.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Number of table nodes allocated (root included); a memory-overhead
    /// metric for the E5 experiment.
    pub fn node_count(&self) -> u64 {
        self.node_count
    }

    fn indices(va: VirtAddr) -> [u16; LEVELS] {
        let page = va.page_number();
        let mut idx = [0u16; LEVELS];
        for (i, slot) in idx.iter_mut().enumerate() {
            let shift = BITS_PER_LEVEL * (LEVELS - 1 - i) as u64;
            *slot = ((page >> shift) & (ENTRIES as u64 - 1)) as u16;
        }
        idx
    }

    fn check_range(va: VirtAddr) -> bool {
        va.as_u64() < (1u64 << VA_BITS)
    }

    /// Maps the page containing `va` to the frame containing `pa`.
    ///
    /// Both addresses must be page-aligned. Fails if the page is already
    /// mapped: the paper's grant protocol never silently replaces a mapping.
    pub fn map(&mut self, va: VirtAddr, pa: PhysAddr, perms: Perms) -> Result<(), MapError> {
        if !va.is_page_aligned() || !pa.is_page_aligned() {
            return Err(MapError::Unaligned { va });
        }
        if !Self::check_range(va) {
            return Err(MapError::OutOfRange { va });
        }
        let idx = Self::indices(va);
        let mut node = &mut self.root;
        for &i in &idx[..LEVELS - 1] {
            let created = !node.children.contains_key(&i);
            if created {
                self.node_count += 1;
            }
            let child = node
                .children
                .entry(i)
                .or_insert_with(|| NodeRef::Interior(Box::default()));
            node = match child {
                NodeRef::Interior(n) => n,
                NodeRef::Leaf(_) => unreachable!("leaf at interior level"),
            };
        }
        let last = idx[LEVELS - 1];
        if node.children.contains_key(&last) {
            return Err(MapError::AlreadyMapped { va });
        }
        node.children.insert(
            last,
            NodeRef::Leaf(Leaf {
                frame: pa.page_number(),
                perms,
            }),
        );
        self.mapped_pages += 1;
        Ok(())
    }

    /// Removes the mapping for the page containing `va`.
    ///
    /// Returns the physical frame base that was mapped there.
    pub fn unmap(&mut self, va: VirtAddr) -> Result<PhysAddr, TranslateError> {
        if !Self::check_range(va) {
            return Err(TranslateError::OutOfRange { va });
        }
        let idx = Self::indices(va);
        let mut node = &mut self.root;
        for &i in &idx[..LEVELS - 1] {
            node = match node.children.get_mut(&i) {
                Some(NodeRef::Interior(n)) => n,
                _ => return Err(TranslateError::NotMapped { va: va.page_base() }),
            };
        }
        match node.children.remove(&idx[LEVELS - 1]) {
            Some(NodeRef::Leaf(leaf)) => {
                self.mapped_pages -= 1;
                Ok(PhysAddr::new(leaf.frame << PAGE_SHIFT))
            }
            Some(other) => {
                // Put it back; this cannot happen with the current invariants.
                node.children.insert(idx[LEVELS - 1], other);
                Err(TranslateError::NotMapped { va: va.page_base() })
            }
            None => Err(TranslateError::NotMapped { va: va.page_base() }),
        }
    }

    /// Translates `va` for an access requiring `needed` permissions.
    pub fn translate(&self, va: VirtAddr, needed: Perms) -> Result<Translation, TranslateError> {
        if !Self::check_range(va) {
            return Err(TranslateError::OutOfRange { va });
        }
        let idx = Self::indices(va);
        let mut node = &self.root;
        let mut accesses = 0u32;
        for &i in &idx[..LEVELS - 1] {
            accesses += 1;
            node = match node.children.get(&i) {
                Some(NodeRef::Interior(n)) => n,
                _ => return Err(TranslateError::NotMapped { va: va.page_base() }),
            };
        }
        accesses += 1;
        match node.children.get(&idx[LEVELS - 1]) {
            Some(NodeRef::Leaf(leaf)) => {
                if !leaf.perms.allows(needed) {
                    return Err(TranslateError::PermissionDenied {
                        va,
                        have: leaf.perms,
                        needed,
                    });
                }
                Ok(Translation {
                    pa: PhysAddr::new((leaf.frame << PAGE_SHIFT) | va.page_offset()),
                    perms: leaf.perms,
                    walk_accesses: accesses,
                })
            }
            _ => Err(TranslateError::NotMapped { va: va.page_base() }),
        }
    }

    /// Changes the permissions of an existing mapping.
    pub fn protect(&mut self, va: VirtAddr, perms: Perms) -> Result<(), TranslateError> {
        if !Self::check_range(va) {
            return Err(TranslateError::OutOfRange { va });
        }
        let idx = Self::indices(va);
        let mut node = &mut self.root;
        for &i in &idx[..LEVELS - 1] {
            node = match node.children.get_mut(&i) {
                Some(NodeRef::Interior(n)) => n,
                _ => return Err(TranslateError::NotMapped { va: va.page_base() }),
            };
        }
        match node.children.get_mut(&idx[LEVELS - 1]) {
            Some(NodeRef::Leaf(leaf)) => {
                leaf.perms = perms;
                Ok(())
            }
            _ => Err(TranslateError::NotMapped { va: va.page_base() }),
        }
    }

    /// Iterates all mappings as `(va_page_base, pa_page_base, perms)`.
    pub fn iter(&self) -> Vec<(VirtAddr, PhysAddr, Perms)> {
        let mut out = Vec::with_capacity(self.mapped_pages as usize);
        fn walk(node: &Node, prefix: u64, out: &mut Vec<(VirtAddr, PhysAddr, Perms)>) {
            for (&i, child) in &node.children {
                let page = (prefix << BITS_PER_LEVEL) | i as u64;
                match child {
                    NodeRef::Interior(n) => walk(n, page, out),
                    NodeRef::Leaf(leaf) => out.push((
                        VirtAddr::new(page << PAGE_SHIFT),
                        PhysAddr::new(leaf.frame << PAGE_SHIFT),
                        leaf.perms,
                    )),
                }
            }
        }
        walk(&self.root, 0, &mut out);
        out.sort_by_key(|(va, _, _)| va.as_u64());
        out
    }
}

impl lastcpu_snap::Snapshot for PageTable {
    /// Serializes the sorted leaf mappings plus the node counter. The
    /// counter is explicit because it is *history*, not structure: unmap
    /// leaves interior nodes in place, so the same mapping set can have
    /// different node counts depending on how it was reached.
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u64(self.node_count);
        let maps = self.iter();
        w.put_len(maps.len());
        for (va, pa, perms) in maps {
            w.put_u64(va.as_u64());
            w.put_u64(pa.as_u64());
            w.put_u8(perms.to_bits());
        }
    }
}

impl lastcpu_snap::Restore for PageTable {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        let node_count = r.u64()?;
        *self = PageTable::new();
        let n = r.len()?;
        for _ in 0..n {
            let va = VirtAddr::new(r.u64()?);
            let pa = PhysAddr::new(r.u64()?);
            let perms = Perms::from_bits(r.u8()?);
            self.map(va, pa, perms)
                .map_err(|e| lastcpu_snap::SnapError::Corrupt {
                    section: "pagetable".into(),
                    detail: format!("replaying mapping {va}: {e}"),
                })?;
        }
        self.node_count = node_count;
        Ok(())
    }
}

impl fmt::Debug for PageTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PageTable(pages={}, nodes={})",
            self.mapped_pages, self.node_count
        )
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// Random map/unmap/protect sequences agree with a model HashMap.
    #[derive(Debug, Clone)]
    enum Op {
        Map(u64, u64, u8),
        Unmap(u64),
        Translate(u64),
        Protect(u64, u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..64, 0u64..64, 1u8..8).prop_map(|(v, p, perms)| Op::Map(v, p, perms)),
            (0u64..64).prop_map(Op::Unmap),
            (0u64..64).prop_map(Op::Translate),
            (0u64..64, 1u8..8).prop_map(|(v, perms)| Op::Protect(v, perms)),
        ]
    }

    fn perms_from(bits: u8) -> Perms {
        let mut p = Perms::NONE;
        if bits & 1 != 0 {
            p = p.union(Perms::R);
        }
        if bits & 2 != 0 {
            p = p.union(Perms::W);
        }
        if bits & 4 != 0 {
            p = p.union(Perms::X);
        }
        p
    }

    proptest! {
        #[test]
        fn prop_pagetable_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            let mut pt = PageTable::new();
            let mut model: HashMap<u64, (u64, Perms)> = HashMap::new();
            for op in ops {
                match op {
                    Op::Map(vp, pp, bits) => {
                        let va = VirtAddr::new(vp << PAGE_SHIFT);
                        let pa = PhysAddr::new(pp << PAGE_SHIFT);
                        let perms = perms_from(bits);
                        let r = pt.map(va, pa, perms);
                        if let std::collections::hash_map::Entry::Vacant(e) = model.entry(vp) {
                            prop_assert!(r.is_ok());
                            e.insert((pp, perms));
                        } else {
                            prop_assert!(r.is_err(), "double map must fail");
                        }
                    }
                    Op::Unmap(vp) => {
                        let va = VirtAddr::new(vp << PAGE_SHIFT);
                        let r = pt.unmap(va);
                        match model.remove(&vp) {
                            Some((pp, _)) => {
                                prop_assert_eq!(r.unwrap(), PhysAddr::new(pp << PAGE_SHIFT));
                            }
                            None => prop_assert!(r.is_err()),
                        }
                    }
                    Op::Translate(vp) => {
                        let va = VirtAddr::new((vp << PAGE_SHIFT) | 0x123);
                        let r = pt.translate(va, Perms::NONE);
                        match model.get(&vp) {
                            Some((pp, _)) => {
                                let t = r.unwrap();
                                prop_assert_eq!(t.pa.as_u64(), (pp << PAGE_SHIFT) | 0x123);
                            }
                            None => prop_assert!(r.is_err()),
                        }
                    }
                    Op::Protect(vp, bits) => {
                        let va = VirtAddr::new(vp << PAGE_SHIFT);
                        let r = pt.protect(va, perms_from(bits));
                        match model.get_mut(&vp) {
                            Some(entry) => {
                                prop_assert!(r.is_ok());
                                entry.1 = perms_from(bits);
                            }
                            None => prop_assert!(r.is_err()),
                        }
                    }
                }
                prop_assert_eq!(pt.mapped_pages(), model.len() as u64);
            }
            // Final sweep: every model entry translates with its perms.
            for (vp, (pp, perms)) in &model {
                let t = pt.translate(VirtAddr::new(vp << PAGE_SHIFT), Perms::NONE).unwrap();
                prop_assert_eq!(t.pa.page_number(), *pp);
                prop_assert_eq!(t.perms, *perms);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_round_trip() {
        let mut pt = PageTable::new();
        pt.map(VirtAddr::new(0x7000), PhysAddr::new(0x3000), Perms::RW)
            .unwrap();
        let t = pt.translate(VirtAddr::new(0x7123), Perms::RW).unwrap();
        assert_eq!(t.pa, PhysAddr::new(0x3123));
        assert_eq!(t.walk_accesses, LEVELS as u32);
    }

    #[test]
    fn unmapped_page_faults() {
        let pt = PageTable::new();
        assert_eq!(
            pt.translate(VirtAddr::new(0x5000), Perms::R),
            Err(TranslateError::NotMapped {
                va: VirtAddr::new(0x5000)
            })
        );
    }

    #[test]
    fn permissions_enforced() {
        let mut pt = PageTable::new();
        pt.map(VirtAddr::new(0x1000), PhysAddr::new(0x2000), Perms::R)
            .unwrap();
        assert!(pt.translate(VirtAddr::new(0x1000), Perms::R).is_ok());
        match pt.translate(VirtAddr::new(0x1000), Perms::W) {
            Err(TranslateError::PermissionDenied { have, needed, .. }) => {
                assert_eq!(have, Perms::R);
                assert_eq!(needed, Perms::W);
            }
            other => panic!("expected permission fault, got {other:?}"),
        }
    }

    #[test]
    fn double_map_rejected() {
        let mut pt = PageTable::new();
        pt.map(VirtAddr::new(0x1000), PhysAddr::new(0x2000), Perms::R)
            .unwrap();
        assert_eq!(
            pt.map(VirtAddr::new(0x1000), PhysAddr::new(0x9000), Perms::R),
            Err(MapError::AlreadyMapped {
                va: VirtAddr::new(0x1000)
            })
        );
    }

    #[test]
    fn unaligned_map_rejected() {
        let mut pt = PageTable::new();
        assert_eq!(
            pt.map(VirtAddr::new(0x1001), PhysAddr::new(0x2000), Perms::R),
            Err(MapError::Unaligned {
                va: VirtAddr::new(0x1001)
            })
        );
        assert_eq!(
            pt.map(VirtAddr::new(0x1000), PhysAddr::new(0x2001), Perms::R),
            Err(MapError::Unaligned {
                va: VirtAddr::new(0x1000)
            })
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut pt = PageTable::new();
        let big = VirtAddr::new(1u64 << VA_BITS);
        assert_eq!(
            pt.map(big, PhysAddr::new(0), Perms::R),
            Err(MapError::OutOfRange { va: big })
        );
        assert_eq!(
            pt.translate(big, Perms::R),
            Err(TranslateError::OutOfRange { va: big })
        );
    }

    #[test]
    fn unmap_returns_frame_and_faults_after() {
        let mut pt = PageTable::new();
        pt.map(VirtAddr::new(0x1000), PhysAddr::new(0x8000), Perms::RW)
            .unwrap();
        assert_eq!(
            pt.unmap(VirtAddr::new(0x1fff)).unwrap(),
            PhysAddr::new(0x8000)
        );
        assert!(pt.translate(VirtAddr::new(0x1000), Perms::R).is_err());
        assert!(pt.unmap(VirtAddr::new(0x1000)).is_err());
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn protect_changes_perms() {
        let mut pt = PageTable::new();
        pt.map(VirtAddr::new(0x1000), PhysAddr::new(0x2000), Perms::RW)
            .unwrap();
        pt.protect(VirtAddr::new(0x1000), Perms::R).unwrap();
        assert!(pt.translate(VirtAddr::new(0x1000), Perms::W).is_err());
        assert!(pt.protect(VirtAddr::new(0x9000), Perms::R).is_err());
    }

    #[test]
    fn distant_addresses_use_separate_subtrees() {
        let mut pt = PageTable::new();
        pt.map(VirtAddr::new(0x1000), PhysAddr::new(0x1000), Perms::R)
            .unwrap();
        let nodes_one = pt.node_count();
        pt.map(VirtAddr::new(1u64 << 40), PhysAddr::new(0x2000), Perms::R)
            .unwrap();
        assert!(pt.node_count() > nodes_one);
        assert_eq!(pt.mapped_pages(), 2);
    }

    #[test]
    fn iter_lists_all_mappings_sorted() {
        let mut pt = PageTable::new();
        pt.map(VirtAddr::new(0x3000), PhysAddr::new(0x30000), Perms::R)
            .unwrap();
        pt.map(VirtAddr::new(0x1000), PhysAddr::new(0x10000), Perms::RW)
            .unwrap();
        let all = pt.iter();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, VirtAddr::new(0x1000));
        assert_eq!(all[1].0, VirtAddr::new(0x3000));
        assert_eq!(all[0].2, Perms::RW);
    }

    #[test]
    fn perms_algebra() {
        assert!(Perms::RW.allows(Perms::R));
        assert!(Perms::RW.allows(Perms::W));
        assert!(!Perms::R.allows(Perms::W));
        assert!(Perms::R.union(Perms::W) == Perms::RW);
        assert!(Perms::RWX.allows(Perms::X));
        assert_eq!(format!("{}", Perms::RW), "rw-");
        assert_eq!(format!("{}", Perms::RWX), "rwx");
        assert_eq!(format!("{}", Perms::NONE), "---");
    }
}
