//! Buddy allocator for physical page frames.
//!
//! This is the *mechanism* half of physical memory management. The policy —
//! which application gets how much, and who may share what — lives in the
//! memory-controller device (`lastcpu-memctl`), per the paper's strict
//! mechanism/policy split (§2.2).
//!
//! The allocator manages frame numbers (not bytes) in power-of-two blocks up
//! to `2^MAX_ORDER` frames, with O(log n) alloc/free and eager coalescing.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use crate::addr::{PhysAddr, PAGE_SHIFT};

/// Largest block order: `2^10` frames = 4 MiB.
pub const MAX_ORDER: u8 = 10;

/// Errors returned by the frame allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameAllocError {
    /// No contiguous block of the requested order is free.
    OutOfMemory {
        /// The order that could not be satisfied.
        order: u8,
    },
    /// The requested order exceeds [`MAX_ORDER`].
    OrderTooLarge {
        /// The requested order.
        order: u8,
    },
    /// Free of a block that is not currently allocated (double free or
    /// corrupted bookkeeping).
    NotAllocated {
        /// First frame of the offending block.
        frame: u64,
    },
}

impl fmt::Display for FrameAllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameAllocError::OutOfMemory { order } => {
                write!(f, "out of physical memory (order {order})")
            }
            FrameAllocError::OrderTooLarge { order } => {
                write!(f, "allocation order {order} exceeds max {MAX_ORDER}")
            }
            FrameAllocError::NotAllocated { frame } => {
                write!(f, "free of unallocated block at frame {frame}")
            }
        }
    }
}

impl std::error::Error for FrameAllocError {}

/// A buddy allocator over a contiguous physical frame range `[0, total)`.
///
/// # Examples
///
/// ```
/// use lastcpu_mem::FrameAllocator;
///
/// let mut fa = FrameAllocator::new(1024); // 4 MiB of frames
/// let a = fa.alloc_frames(3).unwrap();    // rounds up to order 2 (4 frames)
/// assert_eq!(fa.allocated_frames(), 4);
/// fa.free(a).unwrap();
/// assert_eq!(fa.allocated_frames(), 0);
/// ```
pub struct FrameAllocator {
    /// Free blocks per order, as ordered sets of first-frame numbers.
    /// Ordered so allocation is address-deterministic (lowest first).
    free: Vec<BTreeSet<u64>>,
    /// Allocated block -> order, for validated frees.
    allocated: HashMap<u64, u8>,
    total: u64,
    in_use: u64,
}

impl FrameAllocator {
    /// Creates an allocator over `total_frames` frames (rounded down to a
    /// multiple of the largest block so the buddy invariant holds).
    ///
    /// # Panics
    ///
    /// Panics if `total_frames` is smaller than one max-order block.
    pub fn new(total_frames: u64) -> Self {
        let block = 1u64 << MAX_ORDER;
        let total = (total_frames / block) * block;
        assert!(total > 0, "FrameAllocator needs at least {block} frames");
        let mut free: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); MAX_ORDER as usize + 1];
        let mut f = 0;
        while f < total {
            free[MAX_ORDER as usize].insert(f);
            f += block;
        }
        FrameAllocator {
            free,
            allocated: HashMap::new(),
            total,
            in_use: 0,
        }
    }

    /// Total managed frames.
    pub fn total_frames(&self) -> u64 {
        self.total
    }

    /// Frames currently allocated (including round-up padding).
    pub fn allocated_frames(&self) -> u64 {
        self.in_use
    }

    /// Frames currently free.
    pub fn free_frames(&self) -> u64 {
        self.total - self.in_use
    }

    /// Smallest order whose block covers `frames` frames.
    pub fn order_for(frames: u64) -> u8 {
        let frames = frames.max(1);
        (64 - (frames - 1).leading_zeros()) as u8
    }

    /// Allocates a block of `2^order` contiguous frames, returning the first
    /// frame number.
    pub fn alloc_order(&mut self, order: u8) -> Result<u64, FrameAllocError> {
        if order > MAX_ORDER {
            return Err(FrameAllocError::OrderTooLarge { order });
        }
        // Find the smallest free block that fits.
        let mut have = None;
        for o in order..=MAX_ORDER {
            if !self.free[o as usize].is_empty() {
                have = Some(o);
                break;
            }
        }
        let mut o = have.ok_or(FrameAllocError::OutOfMemory { order })?;
        let first = *self.free[o as usize].iter().next().expect("nonempty");
        self.free[o as usize].remove(&first);
        // Split down to the requested order, returning the upper buddies.
        while o > order {
            o -= 1;
            let buddy = first + (1u64 << o);
            self.free[o as usize].insert(buddy);
        }
        self.allocated.insert(first, order);
        self.in_use += 1u64 << order;
        Ok(first)
    }

    /// Allocates at least `frames` contiguous frames (rounding up to the
    /// next power of two), returning the first frame number.
    pub fn alloc_frames(&mut self, frames: u64) -> Result<u64, FrameAllocError> {
        self.alloc_order(Self::order_for(frames))
    }

    /// Frees a previously allocated block by its first frame number,
    /// coalescing with free buddies eagerly.
    pub fn free(&mut self, first_frame: u64) -> Result<(), FrameAllocError> {
        let order = self
            .allocated
            .remove(&first_frame)
            .ok_or(FrameAllocError::NotAllocated { frame: first_frame })?;
        self.in_use -= 1u64 << order;
        let mut frame = first_frame;
        let mut o = order;
        while o < MAX_ORDER {
            let buddy = frame ^ (1u64 << o);
            if self.free[o as usize].remove(&buddy) {
                frame = frame.min(buddy);
                o += 1;
            } else {
                break;
            }
        }
        self.free[o as usize].insert(frame);
        Ok(())
    }

    /// The number of frames in the block allocated at `first_frame`, if any.
    pub fn block_len(&self, first_frame: u64) -> Option<u64> {
        self.allocated.get(&first_frame).map(|&o| 1u64 << o)
    }

    /// External-fragmentation proxy: the largest allocation order that can
    /// currently be satisfied.
    pub fn largest_free_order(&self) -> Option<u8> {
        (0..=MAX_ORDER)
            .rev()
            .find(|&o| !self.free[o as usize].is_empty())
    }

    /// Number of distinct free blocks (more blocks at equal free space =
    /// more fragmentation).
    pub fn free_block_count(&self) -> usize {
        self.free.iter().map(|s| s.len()).sum()
    }

    /// Converts a frame number to its physical byte address.
    pub fn frame_to_phys(frame: u64) -> PhysAddr {
        PhysAddr::new(frame << PAGE_SHIFT)
    }

    /// Converts a physical byte address to its containing frame number.
    pub fn phys_to_frame(pa: PhysAddr) -> u64 {
        pa.as_u64() >> PAGE_SHIFT
    }
}

impl lastcpu_snap::Snapshot for FrameAllocator {
    /// Serializes the free lists (already ordered sets) and the allocated
    /// map in frame order.
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u64(self.total);
        w.put_u64(self.in_use);
        w.put_len(self.free.len());
        for set in &self.free {
            w.put_len(set.len());
            for &f in set {
                w.put_u64(f);
            }
        }
        let mut blocks: Vec<(u64, u8)> = self.allocated.iter().map(|(&f, &o)| (f, o)).collect();
        blocks.sort_unstable();
        w.put_len(blocks.len());
        for (f, o) in blocks {
            w.put_u64(f);
            w.put_u8(o);
        }
    }
}

impl lastcpu_snap::Restore for FrameAllocator {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.total = r.u64()?;
        self.in_use = r.u64()?;
        let orders = r.len()?;
        if orders != MAX_ORDER as usize + 1 {
            return Err(lastcpu_snap::SnapError::Corrupt {
                section: "frame-allocator".into(),
                detail: format!("{orders} order lists, want {}", MAX_ORDER + 1),
            });
        }
        self.free = vec![BTreeSet::new(); orders];
        for set in &mut self.free {
            let n = r.len()?;
            for _ in 0..n {
                set.insert(r.u64()?);
            }
        }
        self.allocated.clear();
        let n = r.len()?;
        for _ in 0..n {
            let f = r.u64()?;
            let o = r.u8()?;
            self.allocated.insert(f, o);
        }
        Ok(())
    }
}

impl fmt::Debug for FrameAllocator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FrameAllocator(total={}, in_use={}, free_blocks={})",
            self.total,
            self.in_use,
            self.free_block_count()
        )
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any alloc/free interleaving: live blocks never overlap, free
        /// accounting balances, and freeing everything coalesces fully.
        #[test]
        fn prop_buddy_invariants(ops in proptest::collection::vec((0u8..3, 0u8..6), 1..200)) {
            let mut fa = FrameAllocator::new(2 << MAX_ORDER);
            let total = fa.total_frames();
            let mut live: Vec<(u64, u64)> = Vec::new();
            for (kind, order) in ops {
                match kind {
                    0 | 1 => {
                        if let Ok(first) = fa.alloc_order(order) {
                            let len = 1u64 << order;
                            for &(b, blen) in &live {
                                prop_assert!(
                                    first + len <= b || b + blen <= first,
                                    "overlap: [{first},{}) vs [{b},{})", first + len, b + blen
                                );
                            }
                            prop_assert!(first + len <= total);
                            live.push((first, len));
                        }
                    }
                    _ => {
                        if !live.is_empty() {
                            let (b, _) = live.swap_remove(order as usize % live.len());
                            fa.free(b).unwrap();
                        }
                    }
                }
                let used: u64 = live.iter().map(|&(_, l)| l).sum();
                prop_assert_eq!(fa.allocated_frames(), used);
            }
            for (b, _) in live.drain(..) {
                fa.free(b).unwrap();
            }
            prop_assert_eq!(fa.free_frames(), total);
            prop_assert_eq!(fa.largest_free_order(), Some(MAX_ORDER));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_for_rounds_up() {
        assert_eq!(FrameAllocator::order_for(1), 0);
        assert_eq!(FrameAllocator::order_for(2), 1);
        assert_eq!(FrameAllocator::order_for(3), 2);
        assert_eq!(FrameAllocator::order_for(4), 2);
        assert_eq!(FrameAllocator::order_for(5), 3);
        assert_eq!(FrameAllocator::order_for(1024), 10);
    }

    #[test]
    fn alloc_free_round_trip() {
        let mut fa = FrameAllocator::new(1 << MAX_ORDER);
        let a = fa.alloc_frames(1).unwrap();
        let b = fa.alloc_frames(1).unwrap();
        assert_ne!(a, b);
        assert_eq!(fa.allocated_frames(), 2);
        fa.free(a).unwrap();
        fa.free(b).unwrap();
        assert_eq!(fa.allocated_frames(), 0);
        // Everything coalesced back to one max-order block.
        assert_eq!(fa.free_block_count(), 1);
        assert_eq!(fa.largest_free_order(), Some(MAX_ORDER));
    }

    #[test]
    fn splits_produce_disjoint_blocks() {
        let mut fa = FrameAllocator::new(1 << MAX_ORDER);
        let mut blocks = vec![];
        for _ in 0..16 {
            let first = fa.alloc_frames(4).unwrap();
            blocks.push((first, 4u64));
        }
        for (i, &(a, alen)) in blocks.iter().enumerate() {
            for &(b, blen) in &blocks[i + 1..] {
                assert!(a + alen <= b || b + blen <= a, "overlap {a} {b}");
            }
        }
    }

    #[test]
    fn double_free_is_detected() {
        let mut fa = FrameAllocator::new(1 << MAX_ORDER);
        let a = fa.alloc_frames(1).unwrap();
        fa.free(a).unwrap();
        assert_eq!(fa.free(a), Err(FrameAllocError::NotAllocated { frame: a }));
    }

    #[test]
    fn out_of_memory_reported() {
        let mut fa = FrameAllocator::new(1 << MAX_ORDER);
        assert!(fa.alloc_order(MAX_ORDER).is_ok());
        assert_eq!(
            fa.alloc_order(0),
            Err(FrameAllocError::OutOfMemory { order: 0 })
        );
    }

    #[test]
    fn order_too_large_rejected() {
        let mut fa = FrameAllocator::new(1 << MAX_ORDER);
        assert_eq!(
            fa.alloc_order(MAX_ORDER + 1),
            Err(FrameAllocError::OrderTooLarge {
                order: MAX_ORDER + 1
            })
        );
    }

    #[test]
    fn coalescing_restores_large_blocks() {
        let mut fa = FrameAllocator::new(1 << MAX_ORDER);
        let blocks: Vec<u64> = (0..(1 << MAX_ORDER))
            .map(|_| fa.alloc_frames(1).unwrap())
            .collect();
        assert_eq!(fa.free_frames(), 0);
        assert_eq!(fa.largest_free_order(), None);
        for b in blocks {
            fa.free(b).unwrap();
        }
        assert_eq!(fa.largest_free_order(), Some(MAX_ORDER));
        assert_eq!(fa.free_block_count(), 1);
    }

    #[test]
    fn deterministic_allocation_order() {
        let run = || {
            let mut fa = FrameAllocator::new(2 << MAX_ORDER);
            (0..32)
                .map(|_| fa.alloc_frames(2).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn phys_frame_conversions() {
        assert_eq!(FrameAllocator::frame_to_phys(2).as_u64(), 0x2000);
        assert_eq!(FrameAllocator::phys_to_frame(PhysAddr::new(0x2fff)), 2);
    }

    #[test]
    fn block_len_reports_rounded_size() {
        let mut fa = FrameAllocator::new(1 << MAX_ORDER);
        let a = fa.alloc_frames(3).unwrap();
        assert_eq!(fa.block_len(a), Some(4));
        assert_eq!(fa.block_len(a + 1), None);
    }
}
