//! Simulated DRAM.
//!
//! DRAM content is stored sparsely, one 4 KiB backing block per touched
//! frame, so a simulated machine can declare gigabytes of physical memory
//! while the host only pays for pages actually written.
//!
//! The cost model answers "how long does this access take" separately from
//! "what bytes move": data-plane code performs the byte transfer immediately
//! (state must be visible to the next event) and schedules completion after
//! the modelled latency.

use std::collections::HashMap;
use std::fmt;

use lastcpu_sim::SimDuration;

use crate::addr::{PhysAddr, PAGE_SIZE};

/// Errors from DRAM accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramError {
    /// Access extended past the end of physical memory.
    OutOfRange {
        /// Start of the offending access.
        addr: PhysAddr,
        /// Length of the offending access.
        len: u64,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::OutOfRange { addr, len } => {
                write!(f, "DRAM access out of range: {addr} + {len} bytes")
            }
        }
    }
}

impl std::error::Error for DramError {}

/// Latency/bandwidth model for DRAM accesses.
///
/// Defaults approximate DDR4 behind an on-device memory controller:
/// ~60 ns access setup (row activation + controller queue) and ~20 GB/s of
/// streaming bandwidth (0.05 ns/byte), which the experiments sweep anyway.
#[derive(Debug, Clone, Copy)]
pub struct DramCostModel {
    /// Fixed per-access setup latency.
    pub access_latency: SimDuration,
    /// Per-byte transfer time in picoseconds (1000 ps/B = 1 GB/s).
    pub per_byte_ps: u64,
}

impl Default for DramCostModel {
    fn default() -> Self {
        DramCostModel {
            access_latency: SimDuration::from_nanos(60),
            per_byte_ps: 50,
        }
    }
}

impl DramCostModel {
    /// Time for one access of `len` bytes.
    pub fn access_time(&self, len: u64) -> SimDuration {
        let transfer_ns = len.saturating_mul(self.per_byte_ps) / 1000;
        self.access_latency + SimDuration::from_nanos(transfer_ns)
    }
}

/// Byte-addressable simulated physical memory.
///
/// # Examples
///
/// ```
/// use lastcpu_mem::{Dram, PhysAddr};
///
/// let mut dram = Dram::new(64 * 1024 * 1024);
/// dram.write(PhysAddr::new(0x1000), b"hello").unwrap();
/// let mut buf = [0u8; 5];
/// dram.read(PhysAddr::new(0x1000), &mut buf).unwrap();
/// assert_eq!(&buf, b"hello");
/// ```
pub struct Dram {
    frames: HashMap<u64, Box<[u8]>>,
    size: u64,
    cost: DramCostModel,
    bytes_read: u64,
    bytes_written: u64,
}

impl Dram {
    /// Creates `size` bytes of zeroed physical memory (rounded up to a whole
    /// number of pages).
    pub fn new(size: u64) -> Self {
        let size = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        Dram {
            frames: HashMap::new(),
            size,
            cost: DramCostModel::default(),
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    /// Replaces the cost model.
    pub fn with_cost_model(mut self, cost: DramCostModel) -> Self {
        self.cost = cost;
        self
    }

    /// The configured cost model.
    pub fn cost_model(&self) -> &DramCostModel {
        &self.cost
    }

    /// Physical memory size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Total bytes read since construction.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes written since construction.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Host memory currently backing touched frames, in bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.frames.len() as u64 * PAGE_SIZE
    }

    fn check(&self, addr: PhysAddr, len: u64) -> Result<(), DramError> {
        let end = addr.as_u64().checked_add(len);
        match end {
            Some(e) if e <= self.size => Ok(()),
            _ => Err(DramError::OutOfRange { addr, len }),
        }
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read(&mut self, addr: PhysAddr, buf: &mut [u8]) -> Result<(), DramError> {
        self.check(addr, buf.len() as u64)?;
        let mut off = 0usize;
        let mut pa = addr;
        while off < buf.len() {
            let in_page = (PAGE_SIZE - pa.page_offset()) as usize;
            let chunk = in_page.min(buf.len() - off);
            let frame = pa.page_number();
            let start = pa.page_offset() as usize;
            match self.frames.get(&frame) {
                Some(data) => buf[off..off + chunk].copy_from_slice(&data[start..start + chunk]),
                None => buf[off..off + chunk].fill(0),
            }
            off += chunk;
            pa = pa + chunk as u64;
        }
        self.bytes_read += buf.len() as u64;
        Ok(())
    }

    /// Writes `buf` starting at `addr`.
    pub fn write(&mut self, addr: PhysAddr, buf: &[u8]) -> Result<(), DramError> {
        self.check(addr, buf.len() as u64)?;
        let mut off = 0usize;
        let mut pa = addr;
        while off < buf.len() {
            let in_page = (PAGE_SIZE - pa.page_offset()) as usize;
            let chunk = in_page.min(buf.len() - off);
            let frame = pa.page_number();
            let start = pa.page_offset() as usize;
            let data = self
                .frames
                .entry(frame)
                .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
            data[start..start + chunk].copy_from_slice(&buf[off..off + chunk]);
            off += chunk;
            pa = pa + chunk as u64;
        }
        self.bytes_written += buf.len() as u64;
        Ok(())
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&mut self, addr: PhysAddr) -> Result<u64, DramError> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: PhysAddr, v: u64) -> Result<(), DramError> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Reads a little-endian `u32` at `addr`.
    pub fn read_u32(&mut self, addr: PhysAddr) -> Result<u32, DramError> {
        let mut b = [0u8; 4];
        self.read(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Writes a little-endian `u32` at `addr`.
    pub fn write_u32(&mut self, addr: PhysAddr, v: u32) -> Result<(), DramError> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Reads a little-endian `u16` at `addr`.
    pub fn read_u16(&mut self, addr: PhysAddr) -> Result<u16, DramError> {
        let mut b = [0u8; 2];
        self.read(addr, &mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Writes a little-endian `u16` at `addr`.
    pub fn write_u16(&mut self, addr: PhysAddr, v: u16) -> Result<(), DramError> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Zeroes `len` bytes starting at `addr`, releasing whole backing frames
    /// where possible.
    pub fn zero(&mut self, addr: PhysAddr, len: u64) -> Result<(), DramError> {
        self.check(addr, len)?;
        let mut pa = addr;
        let mut remaining = len;
        while remaining > 0 {
            let in_page = PAGE_SIZE - pa.page_offset();
            let chunk = in_page.min(remaining);
            let frame = pa.page_number();
            if chunk == PAGE_SIZE {
                self.frames.remove(&frame);
            } else if let Some(data) = self.frames.get_mut(&frame) {
                let start = pa.page_offset() as usize;
                data[start..start + chunk as usize].fill(0);
            }
            pa = pa + chunk;
            remaining -= chunk;
        }
        Ok(())
    }

    /// Modelled duration of an access of `len` bytes.
    pub fn access_time(&self, len: u64) -> SimDuration {
        self.cost.access_time(len)
    }
}

impl lastcpu_snap::Snapshot for Dram {
    /// Serializes size, cost model, traffic counters, and every resident
    /// frame (sorted by frame number, page bodies RLE-compressed — DRAM
    /// images are overwhelmingly zero). Frame *residency* is part of the
    /// state: a frame that was written and later zeroed in place stays
    /// resident, and restore reproduces that exactly.
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u64(self.size);
        w.put_u64(self.cost.access_latency.as_nanos());
        w.put_u64(self.cost.per_byte_ps);
        w.put_u64(self.bytes_read);
        w.put_u64(self.bytes_written);
        let mut frames: Vec<u64> = self.frames.keys().copied().collect();
        frames.sort_unstable();
        w.put_len(frames.len());
        for f in frames {
            w.put_u64(f);
            w.put_bytes_rle(&self.frames[&f]);
        }
    }
}

impl lastcpu_snap::Restore for Dram {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.size = r.u64()?;
        self.cost.access_latency = SimDuration::from_nanos(r.u64()?);
        self.cost.per_byte_ps = r.u64()?;
        self.bytes_read = r.u64()?;
        self.bytes_written = r.u64()?;
        self.frames.clear();
        let n = r.len()?;
        for _ in 0..n {
            let f = r.u64()?;
            let body = r.bytes_rle()?;
            if body.len() != PAGE_SIZE as usize {
                return Err(lastcpu_snap::SnapError::Corrupt {
                    section: "dram".into(),
                    detail: format!("frame {f} body is {} bytes, want {PAGE_SIZE}", body.len()),
                });
            }
            self.frames.insert(f, body.into_boxed_slice());
        }
        Ok(())
    }
}

impl fmt::Debug for Dram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dram(size={}MiB, resident={}KiB)",
            self.size / (1024 * 1024),
            self.resident_bytes() / 1024
        )
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Random scattered writes against a model byte map: reads always
        /// agree, including across page boundaries and zeroed holes.
        #[test]
        fn prop_dram_matches_model(
            writes in proptest::collection::vec(
                (0u64..3 * PAGE_SIZE, proptest::collection::vec(any::<u8>(), 1..200)),
                1..40,
            )
        ) {
            let mut dram = Dram::new(4 * PAGE_SIZE);
            let mut model = vec![0u8; (4 * PAGE_SIZE) as usize];
            for (addr, data) in &writes {
                let addr = *addr;
                dram.write(PhysAddr::new(addr), data).unwrap();
                model[addr as usize..addr as usize + data.len()].copy_from_slice(data);
            }
            let mut back = vec![0u8; model.len()];
            dram.read(PhysAddr::new(0), &mut back).unwrap();
            prop_assert_eq!(back, model);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mut d = Dram::new(PAGE_SIZE * 4);
        let mut buf = [0xffu8; 16];
        d.read(PhysAddr::new(100), &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn write_read_round_trip_across_pages() {
        let mut d = Dram::new(PAGE_SIZE * 4);
        let data: Vec<u8> = (0..=255).collect();
        let addr = PhysAddr::new(PAGE_SIZE - 100); // straddles a boundary
        d.write(addr, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        d.read(addr, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = Dram::new(PAGE_SIZE);
        let mut buf = [0u8; 8];
        assert!(d.read(PhysAddr::new(PAGE_SIZE - 4), &mut buf).is_err());
        assert!(d.write(PhysAddr::new(PAGE_SIZE), &buf[..1]).is_err());
        // Wrap-around is caught, not panicking.
        assert!(d.read(PhysAddr::new(u64::MAX), &mut buf).is_err());
    }

    #[test]
    fn scalar_helpers_round_trip() {
        let mut d = Dram::new(PAGE_SIZE);
        d.write_u64(PhysAddr::new(8), 0xDEAD_BEEF_CAFE_F00D)
            .unwrap();
        assert_eq!(d.read_u64(PhysAddr::new(8)).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
        d.write_u32(PhysAddr::new(16), 0x1234_5678).unwrap();
        assert_eq!(d.read_u32(PhysAddr::new(16)).unwrap(), 0x1234_5678);
        d.write_u16(PhysAddr::new(20), 0xABCD).unwrap();
        assert_eq!(d.read_u16(PhysAddr::new(20)).unwrap(), 0xABCD);
    }

    #[test]
    fn sparse_backing_grows_only_when_written() {
        let mut d = Dram::new(1 << 30); // 1 GiB declared
        assert_eq!(d.resident_bytes(), 0);
        d.write(PhysAddr::new(0x10_0000), &[1]).unwrap();
        assert_eq!(d.resident_bytes(), PAGE_SIZE);
    }

    #[test]
    fn zero_releases_whole_frames() {
        let mut d = Dram::new(PAGE_SIZE * 4);
        d.write(PhysAddr::new(0), &vec![7u8; (PAGE_SIZE * 2) as usize])
            .unwrap();
        assert_eq!(d.resident_bytes(), PAGE_SIZE * 2);
        d.zero(PhysAddr::new(0), PAGE_SIZE).unwrap();
        assert_eq!(d.resident_bytes(), PAGE_SIZE);
        let mut b = [9u8; 4];
        d.read(PhysAddr::new(0), &mut b).unwrap();
        assert_eq!(b, [0; 4]);
    }

    #[test]
    fn partial_zero_keeps_other_bytes() {
        let mut d = Dram::new(PAGE_SIZE);
        d.write(PhysAddr::new(0), &[1, 2, 3, 4]).unwrap();
        d.zero(PhysAddr::new(1), 2).unwrap();
        let mut b = [0u8; 4];
        d.read(PhysAddr::new(0), &mut b).unwrap();
        assert_eq!(b, [1, 0, 0, 4]);
    }

    #[test]
    fn traffic_counters_accumulate() {
        let mut d = Dram::new(PAGE_SIZE);
        d.write(PhysAddr::new(0), &[0u8; 100]).unwrap();
        let mut b = [0u8; 40];
        d.read(PhysAddr::new(0), &mut b).unwrap();
        assert_eq!(d.bytes_written(), 100);
        assert_eq!(d.bytes_read(), 40);
    }

    #[test]
    fn cost_model_scales_with_length() {
        let m = DramCostModel::default();
        let small = m.access_time(64);
        let large = m.access_time(64 * 1024);
        assert!(large > small);
        assert_eq!(small.as_nanos(), 60 + 64 * 50 / 1000);
    }

    #[test]
    fn size_rounds_to_pages() {
        let d = Dram::new(1);
        assert_eq!(d.size(), PAGE_SIZE);
    }
}
