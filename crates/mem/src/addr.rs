//! Address and address-space identifiers.
//!
//! Virtual addresses name locations inside one application's address space;
//! the application is identified system-wide by a PASID ("Process Address
//! Space ID", PCIe terminology the paper adopts in §2.3). Physical addresses
//! name DRAM bytes and are only ever handled by the memory controller and
//! the bus — devices never see them.

use std::fmt;
use std::ops::{Add, Sub};

/// Log2 of the page size. The emulator uses 4 KiB pages throughout.
pub const PAGE_SHIFT: u64 = 12;
/// Page size in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// A physical DRAM address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

/// A virtual address within some PASID's address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

/// A process (application) address-space identifier.
///
/// The paper identifies a distributed application by its virtual address
/// space (§2.2 "Address Translation"); the PASID is the hardware name for
/// that address space, carried on every DMA.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Pasid(pub u32);

macro_rules! addr_impl {
    ($t:ident, $prefix:expr) => {
        impl $t {
            /// The null address.
            pub const NULL: $t = $t(0);

            /// Constructs from a raw value.
            pub const fn new(v: u64) -> Self {
                $t(v)
            }

            /// The raw address value.
            pub const fn as_u64(self) -> u64 {
                self.0
            }

            /// Byte offset within the containing page.
            pub const fn page_offset(self) -> u64 {
                self.0 & (PAGE_SIZE - 1)
            }

            /// The page number containing this address.
            pub const fn page_number(self) -> u64 {
                self.0 >> PAGE_SHIFT
            }

            /// Rounds down to the page base.
            pub const fn page_base(self) -> $t {
                $t(self.0 & !(PAGE_SIZE - 1))
            }

            /// Rounds up to the next page boundary (saturating).
            pub const fn page_align_up(self) -> $t {
                let rounded = (self.0 & !(PAGE_SIZE - 1));
                if rounded == self.0 {
                    $t(self.0)
                } else {
                    $t(rounded.saturating_add(PAGE_SIZE))
                }
            }

            /// Whether the address is page-aligned.
            pub const fn is_page_aligned(self) -> bool {
                self.0 & (PAGE_SIZE - 1) == 0
            }

            /// Checked addition of a byte offset.
            pub fn checked_add(self, off: u64) -> Option<$t> {
                self.0.checked_add(off).map($t)
            }
        }

        impl Add<u64> for $t {
            type Output = $t;

            fn add(self, rhs: u64) -> $t {
                $t(self.0 + rhs)
            }
        }

        impl Sub<$t> for $t {
            type Output = u64;

            fn sub(self, rhs: $t) -> u64 {
                self.0 - rhs.0
            }
        }

        impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{:#x}"), self.0)
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }
    };
}

addr_impl!(PhysAddr, "pa:");
addr_impl!(VirtAddr, "va:");

impl Pasid {
    /// The kernel/none address space, never assigned to an application.
    pub const NONE: Pasid = Pasid(0);

    /// Raw value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Pasid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pasid:{}", self.0)
    }
}

/// Splits a byte range `[addr, addr+len)` into per-page subranges.
///
/// Yields `(page_base_va, offset_in_range, chunk_len)` tuples. Used by DMA
/// paths, which must translate each page separately.
pub fn page_chunks(addr: VirtAddr, len: u64) -> impl Iterator<Item = (VirtAddr, u64, u64)> {
    let mut remaining = len;
    let mut va = addr;
    let mut done = 0u64;
    std::iter::from_fn(move || {
        if remaining == 0 {
            return None;
        }
        let in_page = PAGE_SIZE - va.page_offset();
        let chunk = in_page.min(remaining);
        let item = (va, done, chunk);
        va = va + chunk;
        done += chunk;
        remaining -= chunk;
        Some(item)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_math() {
        let a = VirtAddr::new(0x1234);
        assert_eq!(a.page_offset(), 0x234);
        assert_eq!(a.page_number(), 1);
        assert_eq!(a.page_base(), VirtAddr::new(0x1000));
        assert_eq!(a.page_align_up(), VirtAddr::new(0x2000));
        assert!(!a.is_page_aligned());
        assert!(a.page_base().is_page_aligned());
        assert_eq!(VirtAddr::new(0x2000).page_align_up(), VirtAddr::new(0x2000));
    }

    #[test]
    fn arithmetic() {
        let a = PhysAddr::new(0x1000);
        assert_eq!((a + 0x10).as_u64(), 0x1010);
        assert_eq!((a + 0x10) - a, 0x10);
        assert_eq!(PhysAddr::new(u64::MAX).checked_add(1), None);
    }

    #[test]
    fn chunking_splits_on_page_boundaries() {
        let chunks: Vec<_> = page_chunks(VirtAddr::new(0xff0), 0x30).collect();
        assert_eq!(
            chunks,
            vec![
                (VirtAddr::new(0xff0), 0, 0x10),
                (VirtAddr::new(0x1000), 0x10, 0x20),
            ]
        );
    }

    #[test]
    fn chunking_empty_range() {
        assert_eq!(page_chunks(VirtAddr::new(0x10), 0).count(), 0);
    }

    #[test]
    fn chunking_covers_exactly() {
        let total: u64 = page_chunks(VirtAddr::new(0x123), 3 * PAGE_SIZE + 7)
            .map(|(_, _, l)| l)
            .sum();
        assert_eq!(total, 3 * PAGE_SIZE + 7);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{:?}", PhysAddr::new(0x42)), "pa:0x42");
        assert_eq!(format!("{:?}", VirtAddr::new(0x42)), "va:0x42");
        assert_eq!(Pasid(7).to_string(), "pasid:7");
    }
}
