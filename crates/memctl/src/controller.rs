//! The memory-controller state machine.

use std::collections::HashMap;
use std::fmt;

use lastcpu_bus::{
    CorrId, DeviceId, Dst, Envelope, MapOp, Payload, RequestId, ResourceKind, Status,
};
use lastcpu_mem::{FrameAllocator, PAGE_SHIFT, PAGE_SIZE};

/// One share of a region into another device's address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShareEntry {
    /// Device that received the mapping.
    pub device: DeviceId,
    /// Address space on that device.
    pub pasid: u32,
    /// Virtual base of the mapping.
    pub va: u64,
    /// Permission bits granted.
    pub perms: u8,
}

/// One allocated region in the controller's tables.
#[derive(Debug, Clone)]
pub struct Region {
    /// Region handle.
    pub id: u64,
    /// Owning device.
    pub owner: DeviceId,
    /// Owning address space.
    pub pasid: u32,
    /// Virtual base in the owner's address space.
    pub va: u64,
    /// Length in pages.
    pub pages: u64,
    /// First physical frame backing the region.
    pub first_frame: u64,
    /// Permission bits on the owner's mapping.
    pub perms: u8,
    /// Grants to other devices.
    pub shares: Vec<ShareEntry>,
}

impl Region {
    /// Region length in bytes.
    pub fn bytes(&self) -> u64 {
        self.pages * PAGE_SIZE
    }
}

/// Controller configuration.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemCtlConfig {
    /// Per-device byte quota (`None` = unlimited).
    pub per_device_quota: Option<u64>,
}

/// Controller counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemCtlStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Successful frees.
    pub frees: u64,
    /// Successful shares.
    pub shares: u64,
    /// Requests denied (ownership, quota).
    pub denials: u64,
    /// Allocations failed for lack of memory.
    pub oom: u64,
    /// Bytes currently allocated.
    pub bytes_in_use: u64,
    /// High-water mark of `bytes_in_use`.
    pub peak_bytes: u64,
    /// Regions reclaimed from failed devices.
    pub reclaimed: u64,
}

/// The memory-controller device logic.
///
/// # Examples
///
/// ```
/// use lastcpu_bus::{DeviceId, Dst, Envelope, Payload, RequestId};
/// use lastcpu_memctl::MemoryController;
///
/// let mut mc = MemoryController::new(DeviceId(3), 64 * 1024 * 1024);
/// let mut out = Vec::new();
/// // Startup: the controller claims the Memory resource class.
/// mc.on_start(&mut out);
/// assert!(matches!(out[0].payload, Payload::RegisterController { .. }));
/// ```
pub struct MemoryController {
    id: DeviceId,
    frames: FrameAllocator,
    regions: HashMap<u64, Region>,
    next_region: u64,
    usage: HashMap<DeviceId, u64>,
    config: MemCtlConfig,
    stats: MemCtlStats,
    next_req: u64,
}

impl MemoryController {
    /// Creates a controller with bus address `id` managing `dram_bytes` of
    /// physical memory.
    pub fn new(id: DeviceId, dram_bytes: u64) -> Self {
        Self::with_config(id, dram_bytes, MemCtlConfig::default())
    }

    /// Creates a controller with an explicit configuration.
    pub fn with_config(id: DeviceId, dram_bytes: u64, config: MemCtlConfig) -> Self {
        MemoryController {
            id,
            frames: FrameAllocator::new(dram_bytes >> PAGE_SHIFT),
            regions: HashMap::new(),
            next_region: 1,
            usage: HashMap::new(),
            config,
            stats: MemCtlStats::default(),
            next_req: 1,
        }
    }

    /// The controller's bus address.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Counters.
    pub fn stats(&self) -> MemCtlStats {
        self.stats
    }

    /// Bytes of physical memory still free.
    pub fn free_bytes(&self) -> u64 {
        self.frames.free_frames() * PAGE_SIZE
    }

    /// Number of live regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Looks up a region by handle.
    pub fn region(&self, id: u64) -> Option<&Region> {
        self.regions.get(&id)
    }

    /// Fragmentation proxy: number of free blocks in the frame allocator.
    pub fn free_block_count(&self) -> usize {
        self.frames.free_block_count()
    }

    fn req(&mut self) -> RequestId {
        let r = RequestId(self.next_req);
        self.next_req += 1;
        r
    }

    /// Messages the controller sends at startup: claiming the Memory
    /// resource class with the bus (§2.2 "Address Translation").
    pub fn on_start(&mut self, out: &mut Vec<Envelope>) {
        let req = self.req();
        out.push(Envelope {
            src: self.id,
            dst: Dst::Bus,
            req,
            corr: CorrId::NONE,
            payload: Payload::RegisterController {
                resource: ResourceKind::Memory,
            },
        });
    }

    /// Handles one incoming envelope, appending outgoing envelopes to `out`.
    pub fn handle(&mut self, env: &Envelope, out: &mut Vec<Envelope>) {
        match &env.payload {
            Payload::MemAlloc {
                pasid,
                va,
                bytes,
                perms,
            } => self.handle_alloc(env.src, env.req, *pasid, *va, *bytes, *perms, out),
            Payload::MemFree { region } => self.handle_free(env.src, env.req, *region, out),
            Payload::Share {
                region,
                target,
                pasid,
                va,
                perms,
            } => self.handle_share(env.src, env.req, *region, *target, *pasid, *va, *perms, out),
            Payload::DeviceFailed { device } => self.reclaim_device(*device, out),
            // BusAck / MapComplete acknowledgements need no action: the
            // latency model guarantees mappings are installed before any
            // requester can observe the response (see crate docs).
            Payload::BusAck { .. } | Payload::MapComplete { .. } => {}
            _ => {
                // Not for us; respond with a protocol error if it was a
                // request (has a response-expecting shape).
                out.push(Envelope {
                    src: self.id,
                    dst: Dst::Device(env.src),
                    req: env.req,
                    corr: env.corr,
                    payload: Payload::ErrorNotify {
                        code: lastcpu_bus::ErrorCode::Protocol,
                        conn: lastcpu_bus::ConnId(0),
                        detail: format!("memctl cannot handle {}", env.payload.kind_name()),
                    },
                });
            }
        }
    }

    fn respond(&self, to: DeviceId, req: RequestId, payload: Payload, out: &mut Vec<Envelope>) {
        out.push(Envelope {
            src: self.id,
            dst: Dst::Device(to),
            req,
            corr: CorrId::NONE,
            payload,
        });
    }

    #[allow(clippy::too_many_arguments)] // Mirrors the wire message's fields.
    fn map_instruction(
        &mut self,
        op: MapOp,
        device: DeviceId,
        pasid: u32,
        va: u64,
        pa: u64,
        pages: u64,
        perms: u8,
        out: &mut Vec<Envelope>,
    ) {
        let req = self.req();
        out.push(Envelope {
            src: self.id,
            dst: Dst::Bus,
            req,
            corr: CorrId::NONE,
            payload: Payload::MapInstruction {
                resource: ResourceKind::Memory,
                op,
                device,
                pasid,
                va,
                pa,
                pages,
                perms,
            },
        });
    }

    #[allow(clippy::too_many_arguments)] // Mirrors the wire message fields.
    fn handle_alloc(
        &mut self,
        from: DeviceId,
        req: RequestId,
        pasid: u32,
        va: u64,
        bytes: u64,
        perms: u8,
        out: &mut Vec<Envelope>,
    ) {
        if bytes == 0 || va % PAGE_SIZE != 0 {
            self.stats.denials += 1;
            self.respond(
                from,
                req,
                Payload::MemAllocResponse {
                    status: Status::BadRequest,
                    region: 0,
                },
                out,
            );
            return;
        }
        let pages = bytes.div_ceil(PAGE_SIZE);
        let rounded = pages * PAGE_SIZE;
        if let Some(quota) = self.config.per_device_quota {
            let used = self.usage.get(&from).copied().unwrap_or(0);
            if used + rounded > quota {
                self.stats.denials += 1;
                self.respond(
                    from,
                    req,
                    Payload::MemAllocResponse {
                        status: Status::NoResources,
                        region: 0,
                    },
                    out,
                );
                return;
            }
        }
        let first_frame = match self.frames.alloc_frames(pages) {
            Ok(f) => f,
            Err(_) => {
                self.stats.oom += 1;
                self.respond(
                    from,
                    req,
                    Payload::MemAllocResponse {
                        status: Status::NoResources,
                        region: 0,
                    },
                    out,
                );
                return;
            }
        };
        let id = self.next_region;
        self.next_region += 1;
        self.regions.insert(
            id,
            Region {
                id,
                owner: from,
                pasid,
                va,
                pages,
                first_frame,
                perms,
                shares: Vec::new(),
            },
        );
        *self.usage.entry(from).or_insert(0) += rounded;
        self.stats.allocs += 1;
        self.stats.bytes_in_use += rounded;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.bytes_in_use);

        // Instruct the bus to install the owner's mapping, then answer the
        // requester. The bus programs the IOMMU one hop earlier than the
        // response lands (§3 step 6), so the requester may DMA immediately.
        let pa = first_frame << PAGE_SHIFT;
        self.map_instruction(MapOp::Map, from, pasid, va, pa, pages, perms, out);
        self.respond(
            from,
            req,
            Payload::MemAllocResponse {
                status: Status::Ok,
                region: id,
            },
            out,
        );
    }

    fn handle_free(
        &mut self,
        from: DeviceId,
        req: RequestId,
        region: u64,
        out: &mut Vec<Envelope>,
    ) {
        let r = match self.regions.get(&region) {
            Some(r) if r.owner == from => r.clone(),
            Some(_) => {
                self.stats.denials += 1;
                self.respond(
                    from,
                    req,
                    Payload::MemFreeResponse {
                        status: Status::Denied,
                    },
                    out,
                );
                return;
            }
            None => {
                self.respond(
                    from,
                    req,
                    Payload::MemFreeResponse {
                        status: Status::NotFound,
                    },
                    out,
                );
                return;
            }
        };
        self.release_region(&r, out);
        self.regions.remove(&region);
        self.stats.frees += 1;
        self.respond(
            from,
            req,
            Payload::MemFreeResponse { status: Status::Ok },
            out,
        );
    }

    /// Emits unmaps for the owner and every share, then frees the frames.
    fn release_region(&mut self, r: &Region, out: &mut Vec<Envelope>) {
        self.map_instruction(MapOp::Unmap, r.owner, r.pasid, r.va, 0, r.pages, 0, out);
        for s in &r.shares {
            self.map_instruction(MapOp::Unmap, s.device, s.pasid, s.va, 0, r.pages, 0, out);
        }
        // Cannot fail: the frame came from this allocator.
        let _ = self.frames.free(r.first_frame);
        let rounded = r.bytes();
        if let Some(u) = self.usage.get_mut(&r.owner) {
            *u = u.saturating_sub(rounded);
        }
        self.stats.bytes_in_use = self.stats.bytes_in_use.saturating_sub(rounded);
    }

    #[allow(clippy::too_many_arguments)] // Mirrors the wire message fields.
    fn handle_share(
        &mut self,
        from: DeviceId,
        req: RequestId,
        region: u64,
        target: DeviceId,
        pasid: u32,
        va: u64,
        perms: u8,
        out: &mut Vec<Envelope>,
    ) {
        let (first_frame, pages, owner_perms) = match self.regions.get(&region) {
            Some(r) if r.owner == from => (r.first_frame, r.pages, r.perms),
            Some(_) => {
                self.stats.denials += 1;
                self.respond(
                    from,
                    req,
                    Payload::ShareResponse {
                        status: Status::Denied,
                    },
                    out,
                );
                return;
            }
            None => {
                self.respond(
                    from,
                    req,
                    Payload::ShareResponse {
                        status: Status::NotFound,
                    },
                    out,
                );
                return;
            }
        };
        if va % PAGE_SIZE != 0 {
            self.stats.denials += 1;
            self.respond(
                from,
                req,
                Payload::ShareResponse {
                    status: Status::BadRequest,
                },
                out,
            );
            return;
        }
        // An owner cannot grant more than it holds.
        if perms & !owner_perms != 0 {
            self.stats.denials += 1;
            self.respond(
                from,
                req,
                Payload::ShareResponse {
                    status: Status::Denied,
                },
                out,
            );
            return;
        }
        let r = self.regions.get_mut(&region).expect("checked above");
        let already = r
            .shares
            .iter()
            .any(|s| s.device == target && s.pasid == pasid && s.va == va);
        if !already {
            r.shares.push(ShareEntry {
                device: target,
                pasid,
                va,
                perms,
            });
        }
        self.stats.shares += 1;
        let pa = first_frame << PAGE_SHIFT;
        self.map_instruction(MapOp::Map, target, pasid, va, pa, pages, perms, out);
        self.respond(
            from,
            req,
            Payload::ShareResponse { status: Status::Ok },
            out,
        );
    }

    /// Reclaims everything owned by a failed device and revokes the
    /// mappings its regions induced in surviving devices (§4 "Error
    /// Handling": the failure of one device must not strand memory).
    fn reclaim_device(&mut self, device: DeviceId, out: &mut Vec<Envelope>) {
        let dead_regions: Vec<Region> = self
            .regions
            .values()
            .filter(|r| r.owner == device)
            .cloned()
            .collect();
        for r in &dead_regions {
            // Revoke shares into *surviving* devices; the dead device's own
            // IOMMU is being reset anyway, but the unmap is idempotent.
            self.release_region(r, out);
            self.regions.remove(&r.id);
            self.stats.reclaimed += 1;
        }
        // Shares *held by* the dead device on others' regions are revoked
        // too — its reset must not leave dangling reach into shared memory.
        let mut revokes: Vec<(DeviceId, u32, u64, u64)> = Vec::new();
        for r in self.regions.values_mut() {
            r.shares.retain(|s| {
                if s.device == device {
                    revokes.push((s.device, s.pasid, s.va, r.pages));
                    false
                } else {
                    true
                }
            });
        }
        for (dev, pasid, va, pages) in revokes {
            self.map_instruction(MapOp::Unmap, dev, pasid, va, 0, pages, 0, out);
        }
    }
}

impl fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MemoryController(id={:?}, regions={}, in_use={}KiB)",
            self.id,
            self.regions.len(),
            self.stats.bytes_in_use / 1024
        )
    }
}

impl lastcpu_snap::Snapshot for MemoryController {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u32(self.id.0);
        self.frames.snapshot(w);
        w.put_u64(self.next_region);
        w.put_u64(self.next_req);
        w.put_opt(self.config.per_device_quota.as_ref(), |w, q| w.put_u64(*q));
        w.put_u64(self.stats.allocs);
        w.put_u64(self.stats.frees);
        w.put_u64(self.stats.shares);
        w.put_u64(self.stats.denials);
        w.put_u64(self.stats.oom);
        w.put_u64(self.stats.bytes_in_use);
        w.put_u64(self.stats.peak_bytes);
        w.put_u64(self.stats.reclaimed);
        let mut ids: Vec<_> = self.regions.keys().copied().collect();
        ids.sort_unstable();
        w.put_len(ids.len());
        for id in ids {
            let rg = &self.regions[&id];
            w.put_u64(rg.id);
            w.put_u32(rg.owner.0);
            w.put_u32(rg.pasid);
            w.put_u64(rg.va);
            w.put_u64(rg.pages);
            w.put_u64(rg.first_frame);
            w.put_u8(rg.perms);
            w.put_len(rg.shares.len());
            for s in &rg.shares {
                w.put_u32(s.device.0);
                w.put_u32(s.pasid);
                w.put_u64(s.va);
                w.put_u8(s.perms);
            }
        }
        let mut usage: Vec<_> = self.usage.iter().map(|(d, b)| (d.0, *b)).collect();
        usage.sort_unstable();
        w.put_len(usage.len());
        for (d, b) in usage {
            w.put_u32(d);
            w.put_u64(b);
        }
    }
}

impl lastcpu_snap::Restore for MemoryController {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.id = DeviceId(r.u32()?);
        self.frames.restore(r)?;
        self.next_region = r.u64()?;
        self.next_req = r.u64()?;
        self.config.per_device_quota = r.opt(|r| r.u64())?;
        self.stats.allocs = r.u64()?;
        self.stats.frees = r.u64()?;
        self.stats.shares = r.u64()?;
        self.stats.denials = r.u64()?;
        self.stats.oom = r.u64()?;
        self.stats.bytes_in_use = r.u64()?;
        self.stats.peak_bytes = r.u64()?;
        self.stats.reclaimed = r.u64()?;
        let n = r.len()?;
        self.regions = HashMap::with_capacity(n);
        for _ in 0..n {
            let id = r.u64()?;
            let owner = DeviceId(r.u32()?);
            let pasid = r.u32()?;
            let va = r.u64()?;
            let pages = r.u64()?;
            let first_frame = r.u64()?;
            let perms = r.u8()?;
            let k = r.len()?;
            let mut shares = Vec::with_capacity(k);
            for _ in 0..k {
                shares.push(ShareEntry {
                    device: DeviceId(r.u32()?),
                    pasid: r.u32()?,
                    va: r.u64()?,
                    perms: r.u8()?,
                });
            }
            self.regions.insert(
                id,
                Region {
                    id,
                    owner,
                    pasid,
                    va,
                    pages,
                    first_frame,
                    perms,
                    shares,
                },
            );
        }
        let n = r.len()?;
        self.usage = HashMap::with_capacity(n);
        for _ in 0..n {
            let d = DeviceId(r.u32()?);
            let b = r.u64()?;
            self.usage.insert(d, b);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MC: DeviceId = DeviceId(3);
    const NIC: DeviceId = DeviceId(1);
    const SSD: DeviceId = DeviceId(2);

    fn mc() -> MemoryController {
        MemoryController::new(MC, 64 * 1024 * 1024)
    }

    fn alloc_env(bytes: u64) -> Envelope {
        Envelope {
            src: NIC,
            dst: Dst::Device(MC),
            req: RequestId(10),
            corr: CorrId::NONE,
            payload: Payload::MemAlloc {
                pasid: 1,
                va: 0x10000,
                bytes,
                perms: 3,
            },
        }
    }

    fn do_alloc(c: &mut MemoryController, bytes: u64) -> (u64, Vec<Envelope>) {
        let mut out = Vec::new();
        c.handle(&alloc_env(bytes), &mut out);
        let region = out
            .iter()
            .find_map(|e| match e.payload {
                Payload::MemAllocResponse {
                    status: Status::Ok,
                    region,
                } => Some(region),
                _ => None,
            })
            .expect("alloc should succeed");
        (region, out)
    }

    #[test]
    fn startup_registers_as_memory_controller() {
        let mut c = mc();
        let mut out = Vec::new();
        c.on_start(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, Dst::Bus);
        assert_eq!(
            out[0].payload,
            Payload::RegisterController {
                resource: ResourceKind::Memory
            }
        );
    }

    #[test]
    fn alloc_emits_map_then_response() {
        let mut c = mc();
        let (_region, out) = do_alloc(&mut c, 8192);
        // Order matters: MapInstruction first so the mapping is installed
        // before the requester sees the response.
        assert!(matches!(
            out[0].payload,
            Payload::MapInstruction {
                op: MapOp::Map,
                device: NIC,
                pasid: 1,
                va: 0x10000,
                pages: 2,
                perms: 3,
                ..
            }
        ));
        assert_eq!(out[0].dst, Dst::Bus);
        assert!(matches!(
            out[1].payload,
            Payload::MemAllocResponse {
                status: Status::Ok,
                ..
            }
        ));
        assert_eq!(out[1].dst, Dst::Device(NIC));
        assert_eq!(c.stats().allocs, 1);
        assert_eq!(c.stats().bytes_in_use, 8192);
    }

    #[test]
    fn alloc_rounds_to_pages() {
        let mut c = mc();
        let (region, _) = do_alloc(&mut c, 100);
        assert_eq!(c.region(region).unwrap().pages, 1);
        assert_eq!(c.stats().bytes_in_use, PAGE_SIZE);
    }

    #[test]
    fn zero_byte_and_unaligned_allocs_rejected() {
        let mut c = mc();
        let mut out = Vec::new();
        c.handle(&alloc_env(0), &mut out);
        assert!(matches!(
            out[0].payload,
            Payload::MemAllocResponse {
                status: Status::BadRequest,
                ..
            }
        ));
        out.clear();
        let mut env = alloc_env(4096);
        if let Payload::MemAlloc { ref mut va, .. } = env.payload {
            *va = 0x10001;
        }
        c.handle(&env, &mut out);
        assert!(matches!(
            out[0].payload,
            Payload::MemAllocResponse {
                status: Status::BadRequest,
                ..
            }
        ));
    }

    #[test]
    fn quota_enforced_per_device() {
        let mut c = MemoryController::with_config(
            MC,
            64 * 1024 * 1024,
            MemCtlConfig {
                per_device_quota: Some(8192),
            },
        );
        do_alloc(&mut c, 8192);
        let mut out = Vec::new();
        c.handle(&alloc_env(4096), &mut out);
        assert!(matches!(
            out[0].payload,
            Payload::MemAllocResponse {
                status: Status::NoResources,
                ..
            }
        ));
        assert_eq!(c.stats().denials, 1);
    }

    #[test]
    fn oom_reported_and_counted() {
        let mut c = MemoryController::new(MC, 4 * 1024 * 1024); // one max-order block
        do_alloc(&mut c, 4 * 1024 * 1024);
        let mut out = Vec::new();
        c.handle(&alloc_env(4096), &mut out);
        assert!(matches!(
            out[0].payload,
            Payload::MemAllocResponse {
                status: Status::NoResources,
                ..
            }
        ));
        assert_eq!(c.stats().oom, 1);
    }

    #[test]
    fn free_unmaps_owner_and_shares() {
        let mut c = mc();
        let (region, _) = do_alloc(&mut c, 4096);
        // Share to the SSD first.
        let mut out = Vec::new();
        c.handle(
            &Envelope {
                src: NIC,
                dst: Dst::Device(MC),
                req: RequestId(11),
                corr: CorrId::NONE,
                payload: Payload::Share {
                    region,
                    target: SSD,
                    pasid: 1,
                    va: 0x10000,
                    perms: 3,
                },
            },
            &mut out,
        );
        out.clear();
        c.handle(
            &Envelope {
                src: NIC,
                dst: Dst::Device(MC),
                req: RequestId(12),
                corr: CorrId::NONE,
                payload: Payload::MemFree { region },
            },
            &mut out,
        );
        let unmaps: Vec<DeviceId> = out
            .iter()
            .filter_map(|e| match e.payload {
                Payload::MapInstruction {
                    op: MapOp::Unmap,
                    device,
                    ..
                } => Some(device),
                _ => None,
            })
            .collect();
        assert!(unmaps.contains(&NIC));
        assert!(unmaps.contains(&SSD));
        assert!(matches!(
            out.last().unwrap().payload,
            Payload::MemFreeResponse { status: Status::Ok }
        ));
        assert_eq!(c.stats().bytes_in_use, 0);
        assert_eq!(c.region_count(), 0);
    }

    #[test]
    fn only_owner_can_free() {
        let mut c = mc();
        let (region, _) = do_alloc(&mut c, 4096);
        let mut out = Vec::new();
        c.handle(
            &Envelope {
                src: SSD,
                dst: Dst::Device(MC),
                req: RequestId(13),
                corr: CorrId::NONE,
                payload: Payload::MemFree { region },
            },
            &mut out,
        );
        assert!(matches!(
            out[0].payload,
            Payload::MemFreeResponse {
                status: Status::Denied
            }
        ));
        assert_eq!(c.region_count(), 1);
        assert_eq!(c.stats().denials, 1);
    }

    #[test]
    fn free_unknown_region_not_found() {
        let mut c = mc();
        let mut out = Vec::new();
        c.handle(
            &Envelope {
                src: NIC,
                dst: Dst::Device(MC),
                req: RequestId(14),
                corr: CorrId::NONE,
                payload: Payload::MemFree { region: 777 },
            },
            &mut out,
        );
        assert!(matches!(
            out[0].payload,
            Payload::MemFreeResponse {
                status: Status::NotFound
            }
        ));
    }

    #[test]
    fn share_maps_target_at_same_physical() {
        let mut c = mc();
        let (region, out0) = do_alloc(&mut c, 4096);
        let owner_pa = out0
            .iter()
            .find_map(|e| match e.payload {
                Payload::MapInstruction { pa, .. } => Some(pa),
                _ => None,
            })
            .unwrap();
        let mut out = Vec::new();
        c.handle(
            &Envelope {
                src: NIC,
                dst: Dst::Device(MC),
                req: RequestId(15),
                corr: CorrId::NONE,
                payload: Payload::Share {
                    region,
                    target: SSD,
                    pasid: 1,
                    va: 0x10000,
                    perms: 3,
                },
            },
            &mut out,
        );
        match out[0].payload {
            Payload::MapInstruction {
                op: MapOp::Map,
                device,
                pa,
                ..
            } => {
                assert_eq!(device, SSD);
                assert_eq!(pa, owner_pa, "shared memory = same physical frames");
            }
            ref other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            out[1].payload,
            Payload::ShareResponse { status: Status::Ok }
        ));
        assert_eq!(c.region(region).unwrap().shares.len(), 1);
    }

    #[test]
    fn share_by_non_owner_denied() {
        let mut c = mc();
        let (region, _) = do_alloc(&mut c, 4096);
        let mut out = Vec::new();
        c.handle(
            &Envelope {
                src: SSD, // not the owner
                dst: Dst::Device(MC),
                req: RequestId(16),
                corr: CorrId::NONE,
                payload: Payload::Share {
                    region,
                    target: SSD,
                    pasid: 1,
                    va: 0x10000,
                    perms: 3,
                },
            },
            &mut out,
        );
        assert!(matches!(
            out[0].payload,
            Payload::ShareResponse {
                status: Status::Denied
            }
        ));
        assert!(c.region(region).unwrap().shares.is_empty());
    }

    #[test]
    fn share_cannot_amplify_permissions() {
        let mut c = mc();
        let mut out = Vec::new();
        // Owner holds read-only.
        c.handle(
            &Envelope {
                src: NIC,
                dst: Dst::Device(MC),
                req: RequestId(17),
                corr: CorrId::NONE,
                payload: Payload::MemAlloc {
                    pasid: 1,
                    va: 0x10000,
                    bytes: 4096,
                    perms: 1,
                },
            },
            &mut out,
        );
        let region = out
            .iter()
            .find_map(|e| match e.payload {
                Payload::MemAllocResponse { region, .. } => Some(region),
                _ => None,
            })
            .unwrap();
        out.clear();
        c.handle(
            &Envelope {
                src: NIC,
                dst: Dst::Device(MC),
                req: RequestId(18),
                corr: CorrId::NONE,
                payload: Payload::Share {
                    region,
                    target: SSD,
                    pasid: 1,
                    va: 0x10000,
                    perms: 3, // tries to grant RW from an R-only region
                },
            },
            &mut out,
        );
        assert!(matches!(
            out[0].payload,
            Payload::ShareResponse {
                status: Status::Denied
            }
        ));
    }

    #[test]
    fn duplicate_share_is_idempotent() {
        let mut c = mc();
        let (region, _) = do_alloc(&mut c, 4096);
        let share = Envelope {
            src: NIC,
            dst: Dst::Device(MC),
            req: RequestId(19),
            corr: CorrId::NONE,
            payload: Payload::Share {
                region,
                target: SSD,
                pasid: 1,
                va: 0x10000,
                perms: 3,
            },
        };
        let mut out = Vec::new();
        c.handle(&share, &mut out);
        c.handle(&share, &mut out);
        assert_eq!(c.region(region).unwrap().shares.len(), 1);
    }

    #[test]
    fn device_failure_reclaims_owned_regions() {
        let mut c = mc();
        let (region, _) = do_alloc(&mut c, 8192);
        let mut out = Vec::new();
        c.handle(
            &Envelope {
                src: NIC,
                dst: Dst::Device(MC),
                req: RequestId(20),
                corr: CorrId::NONE,
                payload: Payload::Share {
                    region,
                    target: SSD,
                    pasid: 1,
                    va: 0x10000,
                    perms: 3,
                },
            },
            &mut out,
        );
        out.clear();
        let free_before = c.free_bytes();
        c.handle(
            &Envelope {
                src: DeviceId::BUS,
                dst: Dst::Broadcast,
                req: RequestId(0),
                corr: CorrId::NONE,
                payload: Payload::DeviceFailed { device: NIC },
            },
            &mut out,
        );
        assert_eq!(c.region_count(), 0);
        assert!(c.free_bytes() > free_before);
        assert_eq!(c.stats().reclaimed, 1);
        // The share into the surviving SSD is revoked.
        assert!(out.iter().any(|e| matches!(
            e.payload,
            Payload::MapInstruction {
                op: MapOp::Unmap,
                device: SSD,
                ..
            }
        )));
    }

    #[test]
    fn device_failure_revokes_shares_it_held() {
        let mut c = mc();
        let (region, _) = do_alloc(&mut c, 4096); // owned by NIC
        let mut out = Vec::new();
        c.handle(
            &Envelope {
                src: NIC,
                dst: Dst::Device(MC),
                req: RequestId(21),
                corr: CorrId::NONE,
                payload: Payload::Share {
                    region,
                    target: SSD,
                    pasid: 1,
                    va: 0x10000,
                    perms: 3,
                },
            },
            &mut out,
        );
        out.clear();
        // Now the SSD (share-holder, not owner) dies.
        c.handle(
            &Envelope {
                src: DeviceId::BUS,
                dst: Dst::Broadcast,
                req: RequestId(0),
                corr: CorrId::NONE,
                payload: Payload::DeviceFailed { device: SSD },
            },
            &mut out,
        );
        // Region survives (owner alive) but the share is gone.
        assert_eq!(c.region_count(), 1);
        assert!(c.region(region).unwrap().shares.is_empty());
        assert!(out.iter().any(|e| matches!(
            e.payload,
            Payload::MapInstruction {
                op: MapOp::Unmap,
                device: SSD,
                ..
            }
        )));
    }

    #[test]
    fn peak_bytes_tracks_high_water() {
        let mut c = mc();
        let (r1, _) = do_alloc(&mut c, 8192);
        do_alloc(&mut c, 8192);
        let mut out = Vec::new();
        c.handle(
            &Envelope {
                src: NIC,
                dst: Dst::Device(MC),
                req: RequestId(22),
                corr: CorrId::NONE,
                payload: Payload::MemFree { region: r1 },
            },
            &mut out,
        );
        assert_eq!(c.stats().peak_bytes, 16384);
        assert_eq!(c.stats().bytes_in_use, 8192);
    }

    #[test]
    fn unrelated_payload_gets_protocol_error() {
        let mut c = mc();
        let mut out = Vec::new();
        c.handle(
            &Envelope {
                src: NIC,
                dst: Dst::Device(MC),
                req: RequestId(23),
                corr: CorrId::NONE,
                payload: Payload::Heartbeat,
            },
            &mut out,
        );
        assert!(matches!(
            out[0].payload,
            Payload::ErrorNotify {
                code: lastcpu_bus::ErrorCode::Protocol,
                ..
            }
        ));
    }
}
