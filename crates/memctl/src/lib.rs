//! The memory-controller device: allocation *policy* for physical DRAM.
//!
//! §2.2 of the paper: *"the responsibilities are split between the memory
//! controller, which keeps track of physical memory allocations for each
//! device, and the privileged system bus that can update mappings ... The
//! mappings are set by the memory controller, which manages its own
//! allocation tables internally for each application, similarly to ... the
//! mComponent ... in the LegoOS system."*
//!
//! The controller is a pure message-driven state machine (like the bus): it
//! consumes [`lastcpu_bus::Envelope`]s addressed to it and produces envelopes to send —
//! `MapInstruction`s to the bus and responses to requesters. The host device
//! runtime (in `lastcpu-devices`) gives it a bus identity and a mailbox.
//!
//! Policy enforced here (and only here — the bus carries no policy):
//!
//! - physical frames come from a buddy allocator; nothing else in the
//!   system ever sees a physical address;
//! - each region has exactly one owning `(device, pasid)`;
//! - only the owner may share or free a region (§3: "Access to a memory
//!   region may be granted by the device that owns the region to another
//!   device, but must be first authorized by the memory controller");
//! - per-device byte quotas bound any one device's footprint;
//! - when a device fails, all its regions are reclaimed and every mapping
//!   they induced in surviving devices is revoked.

mod controller;

pub use controller::{MemCtlConfig, MemCtlStats, MemoryController, Region, ShareEntry};
