//! The IOTLB: a small LRU cache of recent translations.
//!
//! Real IOMMUs cache translations per (PASID, page) to avoid a four-access
//! table walk on every DMA. Capacity and hit rates are central to the E5
//! experiment: the paper's viability argument assumes translation overhead
//! is tolerable, which holds only while working sets fit the IOTLB.

use std::collections::HashMap;

use lastcpu_mem::{Pasid, Perms, PhysAddr, VirtAddr};

/// Hit/miss accounting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that found a valid entry with sufficient permissions.
    pub hits: u64,
    /// Lookups that found no entry and had to walk the page table.
    pub misses: u64,
    /// Lookups that found an entry whose cached permissions were
    /// insufficient for the access; the caller still walks, so these are
    /// misses for cost purposes (they used to be miscounted as hits,
    /// inflating `hit_rate()` in E5).
    pub perm_misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// Entries removed by explicit invalidation.
    pub invalidations: u64,
}

impl TlbStats {
    /// Hit fraction in `[0, 1]`; zero when no lookups happened.
    ///
    /// Permission-insufficient cached entries count toward the denominator
    /// like ordinary misses: the caller pays for a full walk either way.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.perm_misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cached translation.
#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    frame_pa: PhysAddr,
    perms: Perms,
    /// Logical timestamp of last use, for LRU.
    last_used: u64,
}

/// The one-entry front cache: the most recently hit translation, kept
/// outside the hash map so the streaming-DMA pattern (many touches to the
/// same page back to back) resolves with two integer compares instead of a
/// hash + probe per access.
#[derive(Debug, Clone, Copy)]
struct FrontEntry {
    pasid: Pasid,
    page: u64,
    frame_pa: PhysAddr,
    perms: Perms,
    /// Tick of the latest front hit. Folded into the backing entry's
    /// `last_used` before any eviction decision (see `sync_front`), so LRU
    /// order is exactly what it would be without the front cache.
    last_used: u64,
}

/// A set-less (fully associative) LRU IOTLB keyed by `(pasid, page)`.
///
/// Fully associative is a simplification, but capacity — not associativity —
/// dominates the hit-rate shapes the experiments care about.
///
/// A one-entry front cache short-circuits repeated lookups of the same
/// page. It is strictly a performance overlay: hit/miss accounting and LRU
/// eviction order are bit-identical to the plain hash-map implementation
/// (front hits record their tick and the backing entry is synced before
/// every eviction decision), and the front entry is dropped on any
/// invalidation or eviction that touches it — a stale translation is never
/// served after unmap.
pub struct Iotlb {
    entries: HashMap<(Pasid, u64), TlbEntry>,
    capacity: usize,
    tick: u64,
    stats: TlbStats,
    front: Option<FrontEntry>,
}

impl Iotlb {
    /// Creates a TLB holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Iotlb capacity must be positive");
        Iotlb {
            entries: HashMap::with_capacity(capacity),
            capacity,
            tick: 0,
            stats: TlbStats::default(),
            front: None,
        }
    }

    /// Folds the front cache's last-hit tick into the backing entry so an
    /// eviction decision sees the same `last_used` it would have seen
    /// without the front cache.
    fn sync_front(&mut self) {
        if let Some(f) = self.front {
            if let Some(e) = self.entries.get_mut(&(f.pasid, f.page)) {
                e.last_used = e.last_used.max(f.last_used);
            }
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Looks up the translation for the page containing `va`, for an access
    /// needing `needed` permissions.
    ///
    /// On a hit returns the physical *page base* and the page permissions;
    /// the caller re-applies the page offset. A cached entry whose
    /// permissions do not cover `needed` is **not** a hit: the caller must
    /// fall back to a full walk (for a precise fault), so it is counted in
    /// `perm_misses` and `None` is returned. Such an entry also keeps its
    /// LRU position — serving a walk is not a "use" of the cached entry.
    pub fn lookup(
        &mut self,
        pasid: Pasid,
        va: VirtAddr,
        needed: Perms,
    ) -> Option<(PhysAddr, Perms)> {
        self.tick += 1;
        let page = va.page_number();
        // Front cache: same page as the previous hit resolves without
        // touching the hash map. (A front entry whose perms are
        // insufficient falls through to the main path so `perm_misses`
        // accounting is unchanged.)
        if let Some(f) = self.front.as_mut() {
            if f.pasid == pasid && f.page == page && f.perms.allows(needed) {
                f.last_used = self.tick;
                self.stats.hits += 1;
                return Some((f.frame_pa, f.perms));
            }
        }
        let key = (pasid, page);
        match self.entries.get_mut(&key) {
            Some(e) if e.perms.allows(needed) => {
                e.last_used = self.tick;
                self.stats.hits += 1;
                self.front = Some(FrontEntry {
                    pasid,
                    page,
                    frame_pa: e.frame_pa,
                    perms: e.perms,
                    last_used: self.tick,
                });
                Some((e.frame_pa, e.perms))
            }
            Some(_) => {
                self.stats.perm_misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a translation for the page containing `va`, evicting the LRU
    /// entry when full.
    pub fn insert(&mut self, pasid: Pasid, va: VirtAddr, frame_pa: PhysAddr, perms: Perms) {
        self.tick += 1;
        let key = (pasid, va.page_number());
        // The inserted page may change this translation: drop a matching
        // front entry rather than serve the old frame/permissions.
        if self.front.is_some_and(|f| (f.pasid, f.page) == key) {
            self.front = None;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            self.sync_front();
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_used) {
                if self.front.is_some_and(|f| (f.pasid, f.page) == victim) {
                    self.front = None;
                }
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            TlbEntry {
                frame_pa: frame_pa.page_base(),
                perms,
                last_used: self.tick,
            },
        );
    }

    /// Invalidates the entry for one page, if present. Returns whether an
    /// entry was removed.
    pub fn invalidate_page(&mut self, pasid: Pasid, va: VirtAddr) -> bool {
        let key = (pasid, va.page_number());
        if self.front.is_some_and(|f| (f.pasid, f.page) == key) {
            self.front = None;
        }
        let removed = self.entries.remove(&key).is_some();
        if removed {
            self.stats.invalidations += 1;
        }
        removed
    }

    /// Invalidates every entry belonging to `pasid`. Returns how many were
    /// removed.
    pub fn invalidate_pasid(&mut self, pasid: Pasid) -> usize {
        if self.front.is_some_and(|f| f.pasid == pasid) {
            self.front = None;
        }
        let before = self.entries.len();
        self.entries.retain(|(p, _), _| *p != pasid);
        let removed = before - self.entries.len();
        self.stats.invalidations += removed as u64;
        removed
    }

    /// Invalidates everything.
    pub fn invalidate_all(&mut self) {
        self.front = None;
        self.stats.invalidations += self.entries.len() as u64;
        self.entries.clear();
    }
}

impl lastcpu_snap::Snapshot for Iotlb {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u64(self.capacity as u64);
        w.put_u64(self.tick);
        w.put_u64(self.stats.hits);
        w.put_u64(self.stats.misses);
        w.put_u64(self.stats.perm_misses);
        w.put_u64(self.stats.evictions);
        w.put_u64(self.stats.invalidations);
        let mut entries: Vec<_> = self.entries.iter().collect();
        entries.sort_by_key(|(&(pasid, page), _)| (pasid.0, page));
        w.put_len(entries.len());
        for (&(pasid, page), e) in entries {
            w.put_u32(pasid.0);
            w.put_u64(page);
            w.put_u64(e.frame_pa.as_u64());
            w.put_u8(e.perms.to_bits());
            w.put_u64(e.last_used);
        }
        w.put_opt(self.front.as_ref(), |w, f| {
            w.put_u32(f.pasid.0);
            w.put_u64(f.page);
            w.put_u64(f.frame_pa.as_u64());
            w.put_u8(f.perms.to_bits());
            w.put_u64(f.last_used);
        });
    }
}

impl lastcpu_snap::Restore for Iotlb {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        let capacity = r.u64()? as usize;
        if capacity == 0 {
            return Err(r.corrupt("Iotlb capacity must be positive"));
        }
        let tick = r.u64()?;
        let stats = TlbStats {
            hits: r.u64()?,
            misses: r.u64()?,
            perm_misses: r.u64()?,
            evictions: r.u64()?,
            invalidations: r.u64()?,
        };
        let n = r.len()?;
        if n > capacity {
            return Err(r.corrupt("Iotlb entry count exceeds capacity"));
        }
        let mut entries = HashMap::with_capacity(capacity);
        for _ in 0..n {
            let pasid = Pasid(r.u32()?);
            let page = r.u64()?;
            let entry = TlbEntry {
                frame_pa: PhysAddr::new(r.u64()?),
                perms: Perms::from_bits(r.u8()?),
                last_used: r.u64()?,
            };
            entries.insert((pasid, page), entry);
        }
        let front = r.opt(|r| {
            Ok(FrontEntry {
                pasid: Pasid(r.u32()?),
                page: r.u64()?,
                frame_pa: PhysAddr::new(r.u64()?),
                perms: Perms::from_bits(r.u8()?),
                last_used: r.u64()?,
            })
        })?;
        self.capacity = capacity;
        self.tick = tick;
        self.stats = stats;
        self.entries = entries;
        self.front = front;
        Ok(())
    }
}

impl std::fmt::Debug for Iotlb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Iotlb({}/{} entries, hit_rate={:.2})",
            self.entries.len(),
            self.capacity,
            self.stats.hit_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn va(page: u64) -> VirtAddr {
        VirtAddr::new(page << 12)
    }

    fn pa(page: u64) -> PhysAddr {
        PhysAddr::new(page << 12)
    }

    #[test]
    fn miss_then_hit() {
        let mut tlb = Iotlb::new(4);
        assert!(tlb.lookup(Pasid(1), va(5), Perms::R).is_none());
        tlb.insert(Pasid(1), va(5), pa(9), Perms::RW);
        let (p, perms) = tlb.lookup(Pasid(1), va(5), Perms::R).unwrap();
        assert_eq!(p, pa(9));
        assert_eq!(perms, Perms::RW);
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn pasids_are_isolated() {
        let mut tlb = Iotlb::new(4);
        tlb.insert(Pasid(1), va(5), pa(9), Perms::RW);
        assert!(tlb.lookup(Pasid(2), va(5), Perms::R).is_none());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut tlb = Iotlb::new(2);
        tlb.insert(Pasid(1), va(1), pa(1), Perms::R);
        tlb.insert(Pasid(1), va(2), pa(2), Perms::R);
        tlb.lookup(Pasid(1), va(1), Perms::R); // make page 1 recent
        tlb.insert(Pasid(1), va(3), pa(3), Perms::R); // evicts page 2
        assert!(tlb.lookup(Pasid(1), va(1), Perms::R).is_some());
        assert!(tlb.lookup(Pasid(1), va(2), Perms::R).is_none());
        assert!(tlb.lookup(Pasid(1), va(3), Perms::R).is_some());
        assert_eq!(tlb.stats().evictions, 1);
    }

    #[test]
    fn reinserting_same_page_does_not_evict() {
        let mut tlb = Iotlb::new(1);
        tlb.insert(Pasid(1), va(1), pa(1), Perms::R);
        tlb.insert(Pasid(1), va(1), pa(2), Perms::RW);
        assert_eq!(tlb.stats().evictions, 0);
        let (p, perms) = tlb.lookup(Pasid(1), va(1), Perms::R).unwrap();
        assert_eq!(p, pa(2));
        assert_eq!(perms, Perms::RW);
    }

    #[test]
    fn invalidate_page_and_pasid() {
        let mut tlb = Iotlb::new(8);
        tlb.insert(Pasid(1), va(1), pa(1), Perms::R);
        tlb.insert(Pasid(1), va(2), pa(2), Perms::R);
        tlb.insert(Pasid(2), va(1), pa(3), Perms::R);
        assert!(tlb.invalidate_page(Pasid(1), va(1)));
        assert!(!tlb.invalidate_page(Pasid(1), va(1)));
        assert_eq!(tlb.invalidate_pasid(Pasid(1)), 1);
        assert_eq!(tlb.len(), 1);
        tlb.invalidate_all();
        assert!(tlb.is_empty());
        assert_eq!(tlb.stats().invalidations, 3);
    }

    #[test]
    fn hit_rate_computation() {
        let mut tlb = Iotlb::new(4);
        tlb.insert(Pasid(1), va(1), pa(1), Perms::R);
        tlb.lookup(Pasid(1), va(1), Perms::R);
        tlb.lookup(Pasid(1), va(2), Perms::R);
        assert!((tlb.stats().hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(TlbStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn insufficient_permissions_count_as_perm_miss_not_hit() {
        // Regression: a cached read-only entry probed for a write used to
        // count as a *hit* even though the caller must fall back to a full
        // walk, inflating hit_rate().
        let mut tlb = Iotlb::new(4);
        tlb.insert(Pasid(1), va(1), pa(1), Perms::R);
        assert!(tlb.lookup(Pasid(1), va(1), Perms::W).is_none());
        let s = tlb.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 0);
        assert_eq!(s.perm_misses, 1);
        assert_eq!(s.hit_rate(), 0.0, "perm miss must depress the hit rate");
        // A permitted probe of the same entry is still a hit.
        assert!(tlb.lookup(Pasid(1), va(1), Perms::R).is_some());
        let s = tlb.stats();
        assert_eq!(s.hits, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        Iotlb::new(0);
    }

    #[test]
    fn front_cache_repeated_hits_are_counted_like_plain_hits() {
        let mut tlb = Iotlb::new(4);
        tlb.insert(Pasid(1), va(7), pa(3), Perms::RW);
        for _ in 0..10 {
            let (p, perms) = tlb.lookup(Pasid(1), va(7), Perms::R).unwrap();
            assert_eq!(p, pa(3));
            assert_eq!(perms, Perms::RW);
        }
        let s = tlb.stats();
        assert_eq!(s.hits, 10);
        assert_eq!(s.misses, 0);
        assert_eq!(s.perm_misses, 0);
    }

    #[test]
    fn front_cache_never_serves_stale_translation() {
        // After any event that removes or changes a translation, the front
        // cache must not short-circuit with the old mapping.
        let mut tlb = Iotlb::new(4);
        tlb.insert(Pasid(1), va(1), pa(1), Perms::RW);
        tlb.lookup(Pasid(1), va(1), Perms::R); // populate front
        assert!(tlb.invalidate_page(Pasid(1), va(1)));
        assert!(tlb.lookup(Pasid(1), va(1), Perms::R).is_none());

        tlb.insert(Pasid(2), va(2), pa(2), Perms::RW);
        tlb.lookup(Pasid(2), va(2), Perms::R);
        tlb.invalidate_pasid(Pasid(2));
        assert!(tlb.lookup(Pasid(2), va(2), Perms::R).is_none());

        tlb.insert(Pasid(3), va(3), pa(3), Perms::RW);
        tlb.lookup(Pasid(3), va(3), Perms::R);
        tlb.invalidate_all();
        assert!(tlb.lookup(Pasid(3), va(3), Perms::R).is_none());

        // Re-insert with a different frame: the front entry for the old
        // frame must not win.
        tlb.insert(Pasid(4), va(4), pa(4), Perms::RW);
        tlb.lookup(Pasid(4), va(4), Perms::R);
        tlb.insert(Pasid(4), va(4), pa(9), Perms::R);
        let (p, perms) = tlb.lookup(Pasid(4), va(4), Perms::R).unwrap();
        assert_eq!(p, pa(9));
        assert_eq!(perms, Perms::R);
    }

    #[test]
    fn front_cache_hits_keep_lru_order_exact() {
        // Repeated front-cache hits must still count as "uses" for LRU:
        // the backing entry is synced before the eviction decision.
        let mut tlb = Iotlb::new(2);
        tlb.insert(Pasid(1), va(1), pa(1), Perms::R);
        tlb.insert(Pasid(1), va(2), pa(2), Perms::R);
        // First lookup installs the front entry; the rest hit only the
        // front cache, so without sync the map would still think page 1
        // was last used long ago.
        for _ in 0..5 {
            tlb.lookup(Pasid(1), va(1), Perms::R);
        }
        tlb.insert(Pasid(1), va(3), pa(3), Perms::R); // must evict page 2
        assert!(tlb.lookup(Pasid(1), va(1), Perms::R).is_some());
        assert!(tlb.lookup(Pasid(1), va(2), Perms::R).is_none());
        assert!(tlb.lookup(Pasid(1), va(3), Perms::R).is_some());
    }

    #[test]
    fn evicting_the_front_entrys_page_clears_the_front() {
        let mut tlb = Iotlb::new(2);
        tlb.insert(Pasid(1), va(1), pa(1), Perms::R);
        tlb.lookup(Pasid(1), va(1), Perms::R); // front = page 1
        tlb.insert(Pasid(1), va(2), pa(2), Perms::R);
        // Page 1 (last used at the lookup) is older than page 2 (just
        // inserted), so this evicts page 1 — which is still the front
        // entry. The front must be dropped along with it.
        tlb.insert(Pasid(1), va(3), pa(3), Perms::R);
        assert_eq!(tlb.stats().evictions, 1);
        assert!(tlb.lookup(Pasid(1), va(1), Perms::R).is_none());
        assert!(tlb.lookup(Pasid(1), va(2), Perms::R).is_some());
        assert!(tlb.lookup(Pasid(1), va(3), Perms::R).is_some());
    }
}
