//! DMA audit layer: a security-grade record of every translation verdict.
//!
//! The E11 security evaluation needs denials to be *provably* denied, not
//! just unobserved: when a malicious device issues a DMA outside its mapped
//! windows, the experiment must be able to show a matching denial record at
//! the IOMMU choke point, produced by the same code path that refused the
//! access. This module adds that record.
//!
//! The audit is **opt-in** ([`crate::Iommu::enable_audit`]) so the hot translation
//! path of performance experiments (E2, E5, E9) is unchanged, and it is
//! deterministic: entries are appended in translation order, which under the
//! single-threaded event core is a pure function of the seed.
//!
//! Two facilities live here:
//!
//! - [`DmaAudit`], the per-unit verdict recorder: counts allowed/denied
//!   accesses and keeps a bounded log of denial records
//!   ([`DmaDenialRecord`]) for the `sec.*` metrics and trace events.
//! - [`crate::Iommu::probe`], a *read-only* translation oracle that answers "would
//!   this access be allowed right now?" without touching the IOTLB, the
//!   statistics, the audit, or the fault register. Tests and the E11 bench
//!   use it to double-check that a denied access truly has no mapping, and
//!   that an allowed control access still does.
//!
//! # Examples
//!
//! ```
//! use lastcpu_iommu::{AccessKind, AccessVerdict, Iommu};
//! use lastcpu_mem::{Pasid, Perms, PhysAddr, VirtAddr};
//!
//! let mut mmu = Iommu::new(16);
//! mmu.enable_audit(64);
//! mmu.bind_pasid(Pasid(1));
//! mmu.map(Pasid(1), VirtAddr::new(0x1000), PhysAddr::new(0x8000), Perms::R).unwrap();
//!
//! // An in-window read is allowed; a wild write is denied.
//! assert!(mmu.translate(Pasid(1), VirtAddr::new(0x1000), AccessKind::Read).is_ok());
//! assert!(mmu.translate(Pasid(1), VirtAddr::new(0xdead_f000), AccessKind::Write).is_err());
//!
//! let audit = mmu.audit().expect("audit enabled");
//! assert_eq!(audit.allowed(), 1);
//! assert_eq!(audit.denied(), 1);
//! let rec = &audit.denials()[0];
//! assert_eq!(rec.va, VirtAddr::new(0xdead_f000));
//! assert_eq!(rec.verdict(), AccessVerdict::Denied);
//!
//! // The read-only oracle agrees, without perturbing any state.
//! assert!(mmu.probe(Pasid(1), VirtAddr::new(0xdead_f000), AccessKind::Write).is_none());
//! assert!(mmu.probe(Pasid(1), VirtAddr::new(0x1000), AccessKind::Read).is_some());
//! ```

use lastcpu_mem::{Pasid, VirtAddr};

use crate::fault::{AccessKind, IommuFaultKind};

/// The audit verdict on one translated access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessVerdict {
    /// The access translated successfully under its PASID.
    Allowed,
    /// The access faulted; the device saw an [`crate::IommuFault`], not data.
    Denied,
}

/// One denied DMA, as recorded at the translation choke point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaDenialRecord {
    /// PASID the access was attempted under.
    pub pasid: Pasid,
    /// Faulting virtual address.
    pub va: VirtAddr,
    /// Read or write.
    pub access: AccessKind,
    /// Why the IOMMU refused it.
    pub kind: IommuFaultKind,
}

impl DmaDenialRecord {
    /// Always [`AccessVerdict::Denied`]; present so audit consumers can
    /// treat allowed and denied records uniformly.
    pub fn verdict(&self) -> AccessVerdict {
        AccessVerdict::Denied
    }
}

/// Per-IOMMU audit state: verdict counters plus a bounded denial log.
///
/// The log is bounded (`cap` entries) so a control-flood attacker cannot
/// turn the audit itself into a memory-exhaustion vector; overflowed
/// denials are still *counted* (`denied()` is exact), only their detail
/// records are dropped, and `dropped_records()` says how many.
#[derive(Debug, Clone, Default)]
pub struct DmaAudit {
    allowed: u64,
    denied: u64,
    pending_allowed: u64,
    pending_denied: u64,
    dropped: u64,
    cap: usize,
    log: Vec<DmaDenialRecord>,
}

/// Verdicts accumulated since the previous [`DmaAudit::drain`].
#[derive(Debug, Clone, Default)]
pub struct DmaAuditDelta {
    /// Allowed translations since the last drain (exact).
    pub allowed: u64,
    /// Denied translations since the last drain (exact).
    pub denied: u64,
    /// Retained denial records (bounded; see
    /// [`DmaAudit::dropped_records`]).
    pub records: Vec<DmaDenialRecord>,
}

impl DmaAudit {
    /// Creates an audit keeping at most `cap` denial records.
    pub fn new(cap: usize) -> Self {
        DmaAudit {
            cap,
            ..DmaAudit::default()
        }
    }

    /// Records an allowed translation.
    pub(crate) fn record_allowed(&mut self) {
        self.allowed += 1;
        self.pending_allowed += 1;
    }

    /// Records a denied translation.
    pub(crate) fn record_denied(&mut self, rec: DmaDenialRecord) {
        self.denied += 1;
        self.pending_denied += 1;
        if self.log.len() < self.cap {
            self.log.push(rec);
        } else {
            self.dropped += 1;
        }
    }

    /// Exact count of allowed translations since the audit was enabled.
    pub fn allowed(&self) -> u64 {
        self.allowed
    }

    /// Exact count of denied translations since the audit was enabled.
    pub fn denied(&self) -> u64 {
        self.denied
    }

    /// Denial records retained (at most the configured capacity).
    pub fn denials(&self) -> &[DmaDenialRecord] {
        &self.log
    }

    /// Denial records dropped because the bounded log was full.
    pub fn dropped_records(&self) -> u64 {
        self.dropped
    }

    /// Drains verdicts accumulated since the previous drain.
    ///
    /// The event core calls this after each device dispatch to convert
    /// fresh verdicts into `sec.*` metrics and trace events exactly once.
    /// Cumulative counters ([`DmaAudit::allowed`] / [`DmaAudit::denied`])
    /// are unaffected.
    pub fn drain(&mut self) -> DmaAuditDelta {
        DmaAuditDelta {
            allowed: std::mem::take(&mut self.pending_allowed),
            denied: std::mem::take(&mut self.pending_denied),
            records: std::mem::take(&mut self.log),
        }
    }
}

impl DmaDenialRecord {
    /// Serializes into a snapshot section.
    pub fn encode(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u32(self.pasid.0);
        w.put_u64(self.va.as_u64());
        self.access.encode(w);
        self.kind.encode(w);
    }

    /// Inverse of [`DmaDenialRecord::encode`].
    pub fn decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<Self> {
        Ok(DmaDenialRecord {
            pasid: Pasid(r.u32()?),
            va: VirtAddr::new(r.u64()?),
            access: AccessKind::decode(r)?,
            kind: IommuFaultKind::decode(r)?,
        })
    }
}

impl lastcpu_snap::Snapshot for DmaAudit {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u64(self.allowed);
        w.put_u64(self.denied);
        w.put_u64(self.pending_allowed);
        w.put_u64(self.pending_denied);
        w.put_u64(self.dropped);
        w.put_u64(self.cap as u64);
        w.put_len(self.log.len());
        for rec in &self.log {
            rec.encode(w);
        }
    }
}

impl lastcpu_snap::Restore for DmaAudit {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.allowed = r.u64()?;
        self.denied = r.u64()?;
        self.pending_allowed = r.u64()?;
        self.pending_denied = r.u64()?;
        self.dropped = r.u64()?;
        self.cap = r.u64()? as usize;
        let n = r.len()?;
        if n > self.cap {
            return Err(r.corrupt("audit log exceeds its capacity"));
        }
        self.log = Vec::with_capacity(n);
        for _ in 0..n {
            self.log.push(DmaDenialRecord::decode(r)?);
        }
        Ok(())
    }
}
