//! The IOMMU unit attached to one device.

use std::collections::HashMap;
use std::fmt;

use lastcpu_mem::{MapError, PageTable, Pasid, Perms, PhysAddr, TranslateError, VirtAddr};
use lastcpu_sim::SimDuration;

use crate::audit::{DmaAudit, DmaDenialRecord};
use crate::fault::{AccessKind, IommuFault, IommuFaultKind};
use crate::tlb::{Iotlb, TlbStats};

/// Latency model for the translation path.
///
/// Defaults approximate published IOTLB numbers: ~2 ns for a TLB hit, ~30 ns
/// per table-node access on a walk (an uncached memory read), ~100 ns to
/// process an invalidation command.
#[derive(Debug, Clone, Copy)]
pub struct IommuCostModel {
    /// IOTLB lookup time (paid on every translation).
    pub tlb_lookup: SimDuration,
    /// Cost per page-table node access during a walk.
    pub walk_per_access: SimDuration,
    /// Cost of one invalidation command.
    pub invalidate: SimDuration,
}

impl Default for IommuCostModel {
    fn default() -> Self {
        IommuCostModel {
            tlb_lookup: SimDuration::from_nanos(2),
            walk_per_access: SimDuration::from_nanos(30),
            invalidate: SimDuration::from_nanos(100),
        }
    }
}

/// Aggregate IOMMU statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct IommuStats {
    /// Successful translations.
    pub translations: u64,
    /// Faults raised.
    pub faults: u64,
    /// Pages mapped over the unit's lifetime.
    pub maps: u64,
    /// Pages unmapped over the unit's lifetime.
    pub unmaps: u64,
}

/// The outcome of a translation attempt: where it landed and what it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslationOutcome {
    /// Translated physical address.
    pub pa: PhysAddr,
    /// Virtual time the translation consumed.
    pub cost: SimDuration,
    /// Whether the IOTLB satisfied the lookup.
    pub tlb_hit: bool,
}

/// An IOMMU: a set of per-PASID page tables plus an IOTLB.
///
/// One unit is attached to each device. Ownership discipline enforces the
/// paper's security argument: device implementations receive translation
/// service through their DMA context, never a `&mut Iommu`, so a buggy or
/// malicious device cannot extend its own mappings. Only the system-bus glue
/// (in `lastcpu-core`) holds the units and performs [`Iommu::map`] /
/// [`Iommu::unmap`], and it does so only on instruction from the controller
/// of the mapped resource.
///
/// # Examples
///
/// ```
/// use lastcpu_iommu::{AccessKind, Iommu};
/// use lastcpu_mem::{Pasid, Perms, PhysAddr, VirtAddr};
///
/// let mut mmu = Iommu::new(64);
/// mmu.bind_pasid(Pasid(1));
/// mmu.map(Pasid(1), VirtAddr::new(0x4000), PhysAddr::new(0x1000), Perms::RW).unwrap();
/// let out = mmu.translate(Pasid(1), VirtAddr::new(0x4008), AccessKind::Read).unwrap();
/// assert_eq!(out.pa, PhysAddr::new(0x1008));
/// assert!(!out.tlb_hit); // first touch walks the table
/// ```
pub struct Iommu {
    tables: HashMap<Pasid, PageTable>,
    tlb: Iotlb,
    cost: IommuCostModel,
    stats: IommuStats,
    last_fault: Option<IommuFault>,
    audit: Option<DmaAudit>,
}

impl Iommu {
    /// Creates an IOMMU with an IOTLB of `tlb_entries` entries.
    pub fn new(tlb_entries: usize) -> Self {
        Iommu {
            tables: HashMap::new(),
            tlb: Iotlb::new(tlb_entries),
            cost: IommuCostModel::default(),
            stats: IommuStats::default(),
            last_fault: None,
            audit: None,
        }
    }

    /// Enables the security audit ([`DmaAudit`]), keeping at most `cap`
    /// denial records. Idempotent; existing audit state is kept.
    pub fn enable_audit(&mut self, cap: usize) {
        if self.audit.is_none() {
            self.audit = Some(DmaAudit::new(cap));
        }
    }

    /// The audit record, if [`Iommu::enable_audit`] was called.
    pub fn audit(&self) -> Option<&DmaAudit> {
        self.audit.as_ref()
    }

    /// Mutable audit access (the event core drains denial records here).
    pub fn audit_mut(&mut self) -> Option<&mut DmaAudit> {
        self.audit.as_mut()
    }

    /// Replaces the cost model.
    pub fn with_cost_model(mut self, cost: IommuCostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Binds a PASID, creating its (empty) address space.
    ///
    /// Idempotent: rebinding an existing PASID keeps its table.
    pub fn bind_pasid(&mut self, pasid: Pasid) {
        self.tables.entry(pasid).or_default();
    }

    /// Unbinds a PASID, dropping its table and invalidating its TLB entries.
    ///
    /// Returns the physical page bases that were mapped (so the caller can
    /// release grants).
    pub fn unbind_pasid(&mut self, pasid: Pasid) -> Vec<PhysAddr> {
        self.tlb.invalidate_pasid(pasid);
        match self.tables.remove(&pasid) {
            Some(table) => table.iter().into_iter().map(|(_, pa, _)| pa).collect(),
            None => Vec::new(),
        }
    }

    /// Whether `pasid` has a bound address space.
    pub fn has_pasid(&self, pasid: Pasid) -> bool {
        self.tables.contains_key(&pasid)
    }

    /// Bound PASIDs, in unspecified order.
    pub fn pasids(&self) -> impl Iterator<Item = Pasid> + '_ {
        self.tables.keys().copied()
    }

    /// Maps one page. Privileged: called only by the system bus.
    pub fn map(
        &mut self,
        pasid: Pasid,
        va: VirtAddr,
        pa: PhysAddr,
        perms: Perms,
    ) -> Result<(), MapError> {
        let table = self.tables.entry(pasid).or_default();
        table.map(va, pa, perms)?;
        self.stats.maps += 1;
        Ok(())
    }

    /// Unmaps one page and invalidates its IOTLB entry. Privileged.
    ///
    /// Returns the physical page base that was mapped.
    pub fn unmap(&mut self, pasid: Pasid, va: VirtAddr) -> Result<PhysAddr, TranslateError> {
        let table = self
            .tables
            .get_mut(&pasid)
            .ok_or(TranslateError::NotMapped { va: va.page_base() })?;
        let pa = table.unmap(va)?;
        self.tlb.invalidate_page(pasid, va);
        self.stats.unmaps += 1;
        Ok(pa)
    }

    /// Changes permissions on an existing mapping and invalidates its IOTLB
    /// entry. Privileged.
    pub fn protect(
        &mut self,
        pasid: Pasid,
        va: VirtAddr,
        perms: Perms,
    ) -> Result<(), TranslateError> {
        let table = self
            .tables
            .get_mut(&pasid)
            .ok_or(TranslateError::NotMapped { va: va.page_base() })?;
        table.protect(va, perms)?;
        self.tlb.invalidate_page(pasid, va);
        Ok(())
    }

    /// Translates a device access, going through the IOTLB.
    ///
    /// On failure, records and returns the fault that must be delivered to
    /// the attached device.
    pub fn translate(
        &mut self,
        pasid: Pasid,
        va: VirtAddr,
        access: AccessKind,
    ) -> Result<TranslationOutcome, IommuFault> {
        let _prof = lastcpu_sim::profile::span("iommu.translate");
        let needed = access.required_perms();
        let mut cost = self.cost.tlb_lookup;
        // The TLB only reports a hit when the cached permissions cover the
        // access; a permission-insufficient entry is accounted as a
        // `perm_miss` and we fall through to a walk so the fault is precise
        // (matches real hardware re-walk behaviour).
        if let Some((frame_pa, _perms)) = self.tlb.lookup(pasid, va, needed) {
            self.stats.translations += 1;
            if let Some(a) = self.audit.as_mut() {
                a.record_allowed();
            }
            return Ok(TranslationOutcome {
                pa: PhysAddr::new(frame_pa.as_u64() | va.page_offset()),
                cost,
                tlb_hit: true,
            });
        }
        let table = match self.tables.get(&pasid) {
            Some(t) => t,
            None => {
                return Err(self.fault(pasid, va, access, IommuFaultKind::UnknownPasid));
            }
        };
        match table.translate(va, needed) {
            Ok(tr) => {
                cost += self
                    .cost
                    .walk_per_access
                    .saturating_mul(tr.walk_accesses as u64);
                self.tlb.insert(pasid, va, tr.pa.page_base(), tr.perms);
                self.stats.translations += 1;
                if let Some(a) = self.audit.as_mut() {
                    a.record_allowed();
                }
                Ok(TranslationOutcome {
                    pa: tr.pa,
                    cost,
                    tlb_hit: false,
                })
            }
            Err(TranslateError::NotMapped { .. }) => {
                Err(self.fault(pasid, va, access, IommuFaultKind::NotMapped))
            }
            Err(TranslateError::PermissionDenied { have, .. }) => {
                Err(self.fault(pasid, va, access, IommuFaultKind::PermissionDenied { have }))
            }
            Err(TranslateError::OutOfRange { .. }) => {
                Err(self.fault(pasid, va, access, IommuFaultKind::OutOfRange))
            }
        }
    }

    fn fault(
        &mut self,
        pasid: Pasid,
        va: VirtAddr,
        access: AccessKind,
        kind: IommuFaultKind,
    ) -> IommuFault {
        let f = IommuFault {
            pasid,
            va,
            access,
            kind,
        };
        self.stats.faults += 1;
        self.last_fault = Some(f);
        if let Some(a) = self.audit.as_mut() {
            a.record_denied(DmaDenialRecord {
                pasid,
                va,
                access,
                kind,
            });
        }
        f
    }

    /// Read-only translation oracle: would `access` be allowed *right now*?
    ///
    /// Returns the physical address the access would reach, or `None` if it
    /// would fault. Unlike [`Iommu::translate`] this touches **nothing** —
    /// no IOTLB fill or LRU update, no statistics, no fault register, no
    /// audit record — so tests and the E11 security bench can use it to
    /// prove an access is denied (or still allowed) without perturbing the
    /// deterministic simulation state.
    pub fn probe(&self, pasid: Pasid, va: VirtAddr, access: AccessKind) -> Option<PhysAddr> {
        let table = self.tables.get(&pasid)?;
        table
            .translate(va, access.required_perms())
            .ok()
            .map(|tr| tr.pa)
    }

    /// The most recent fault, if any (a debug register, as on real units).
    pub fn last_fault(&self) -> Option<IommuFault> {
        self.last_fault
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> IommuStats {
        self.stats
    }

    /// IOTLB statistics.
    pub fn tlb_stats(&self) -> TlbStats {
        self.tlb.stats()
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &IommuCostModel {
        &self.cost
    }

    /// Modelled cost of one invalidation command.
    pub fn invalidate_cost(&self) -> SimDuration {
        self.cost.invalidate
    }

    /// Total pages mapped across all PASIDs.
    pub fn mapped_pages(&self) -> u64 {
        self.tables.values().map(|t| t.mapped_pages()).sum()
    }

    /// Total page-table nodes across all PASIDs (memory overhead metric).
    pub fn table_nodes(&self) -> u64 {
        self.tables.values().map(|t| t.node_count()).sum()
    }
}

impl fmt::Debug for Iommu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Iommu(pasids={}, pages={}, tlb={:?})",
            self.tables.len(),
            self.mapped_pages(),
            self.tlb
        )
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        /// Random map/unmap/translate across multiple PASIDs against a
        /// model: the IOTLB must never serve a stale or cross-PASID
        /// translation.
        #[test]
        fn prop_iommu_never_serves_stale_translations(
            ops in proptest::collection::vec((0u8..3, 0u32..3, 0u64..24, 0u64..24), 1..200)
        ) {
            let mut mmu = Iommu::new(4); // tiny TLB: maximal churn
            let mut model: HashMap<(u32, u64), u64> = HashMap::new();
            for pasid in 0..3u32 {
                mmu.bind_pasid(Pasid(pasid));
            }
            for (kind, pasid, vp, pp) in ops {
                let va = VirtAddr::new(vp << 12);
                let pa = PhysAddr::new((pp + 32) << 12);
                match kind {
                    0 => {
                        let r = mmu.map(Pasid(pasid), va, pa, Perms::RW);
                        if let std::collections::hash_map::Entry::Vacant(e) =
                            model.entry((pasid, vp))
                        {
                            prop_assert!(r.is_ok());
                            e.insert(pp + 32);
                        } else {
                            prop_assert!(r.is_err());
                        }
                    }
                    1 => {
                        let r = mmu.unmap(Pasid(pasid), va);
                        match model.remove(&(pasid, vp)) {
                            Some(frame) => {
                                prop_assert_eq!(r.unwrap(), PhysAddr::new(frame << 12));
                            }
                            None => prop_assert!(r.is_err()),
                        }
                    }
                    _ => {
                        let r = mmu.translate(Pasid(pasid), va, AccessKind::Read);
                        match model.get(&(pasid, vp)) {
                            Some(frame) => {
                                prop_assert_eq!(r.unwrap().pa, PhysAddr::new(frame << 12));
                            }
                            None => prop_assert!(r.is_err()),
                        }
                    }
                }
            }
        }
    }
}

impl lastcpu_snap::Snapshot for Iommu {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u64(self.cost.tlb_lookup.as_nanos());
        w.put_u64(self.cost.walk_per_access.as_nanos());
        w.put_u64(self.cost.invalidate.as_nanos());
        w.put_u64(self.stats.translations);
        w.put_u64(self.stats.faults);
        w.put_u64(self.stats.maps);
        w.put_u64(self.stats.unmaps);
        let mut pasids: Vec<_> = self.tables.keys().copied().collect();
        pasids.sort_by_key(|p| p.0);
        w.put_len(pasids.len());
        for p in pasids {
            w.put_u32(p.0);
            self.tables[&p].snapshot(w);
        }
        self.tlb.snapshot(w);
        w.put_opt(self.last_fault.as_ref(), |w, f| f.encode(w));
        w.put_opt(self.audit.as_ref(), |w, a| a.snapshot(w));
    }
}

impl lastcpu_snap::Restore for Iommu {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.cost.tlb_lookup = SimDuration::from_nanos(r.u64()?);
        self.cost.walk_per_access = SimDuration::from_nanos(r.u64()?);
        self.cost.invalidate = SimDuration::from_nanos(r.u64()?);
        self.stats.translations = r.u64()?;
        self.stats.faults = r.u64()?;
        self.stats.maps = r.u64()?;
        self.stats.unmaps = r.u64()?;
        let n = r.len()?;
        self.tables = HashMap::with_capacity(n);
        for _ in 0..n {
            let pasid = Pasid(r.u32()?);
            let mut table = PageTable::new();
            table.restore(r)?;
            self.tables.insert(pasid, table);
        }
        self.tlb.restore(r)?;
        self.last_fault = r.opt(IommuFault::decode)?;
        self.audit = r.opt(|r| {
            let mut a = DmaAudit::default();
            a.restore(r)?;
            Ok(a)
        })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Iommu {
        let mut mmu = Iommu::new(16);
        mmu.bind_pasid(Pasid(1));
        mmu.map(
            Pasid(1),
            VirtAddr::new(0x1000),
            PhysAddr::new(0x8000),
            Perms::RW,
        )
        .unwrap();
        mmu
    }

    #[test]
    fn translation_walks_then_hits() {
        let mut mmu = unit();
        let first = mmu
            .translate(Pasid(1), VirtAddr::new(0x1004), AccessKind::Read)
            .unwrap();
        assert!(!first.tlb_hit);
        assert_eq!(first.pa, PhysAddr::new(0x8004));
        let second = mmu
            .translate(Pasid(1), VirtAddr::new(0x1008), AccessKind::Read)
            .unwrap();
        assert!(second.tlb_hit);
        assert!(second.cost < first.cost);
    }

    #[test]
    fn unknown_pasid_faults() {
        let mut mmu = unit();
        let err = mmu
            .translate(Pasid(9), VirtAddr::new(0x1000), AccessKind::Read)
            .unwrap_err();
        assert_eq!(err.kind, IommuFaultKind::UnknownPasid);
        assert_eq!(mmu.last_fault(), Some(err));
    }

    #[test]
    fn unmapped_page_faults_and_is_recorded() {
        let mut mmu = unit();
        let err = mmu
            .translate(Pasid(1), VirtAddr::new(0x9000), AccessKind::Read)
            .unwrap_err();
        assert_eq!(err.kind, IommuFaultKind::NotMapped);
        assert_eq!(err.va, VirtAddr::new(0x9000));
        assert_eq!(mmu.stats().faults, 1);
    }

    #[test]
    fn write_to_readonly_faults() {
        let mut mmu = Iommu::new(16);
        mmu.bind_pasid(Pasid(1));
        mmu.map(
            Pasid(1),
            VirtAddr::new(0x1000),
            PhysAddr::new(0x8000),
            Perms::R,
        )
        .unwrap();
        let err = mmu
            .translate(Pasid(1), VirtAddr::new(0x1000), AccessKind::Write)
            .unwrap_err();
        assert_eq!(
            err.kind,
            IommuFaultKind::PermissionDenied { have: Perms::R }
        );
    }

    #[test]
    fn stale_tlb_entry_does_not_grant_revoked_permission() {
        let mut mmu = unit();
        // Warm the TLB with RW.
        mmu.translate(Pasid(1), VirtAddr::new(0x1000), AccessKind::Write)
            .unwrap();
        // Downgrade to read-only; protect must invalidate the cached entry.
        mmu.protect(Pasid(1), VirtAddr::new(0x1000), Perms::R)
            .unwrap();
        assert!(mmu
            .translate(Pasid(1), VirtAddr::new(0x1000), AccessKind::Write)
            .is_err());
        assert!(mmu
            .translate(Pasid(1), VirtAddr::new(0x1000), AccessKind::Read)
            .is_ok());
    }

    #[test]
    fn unmap_invalidates_tlb() {
        let mut mmu = unit();
        mmu.translate(Pasid(1), VirtAddr::new(0x1000), AccessKind::Read)
            .unwrap();
        let pa = mmu.unmap(Pasid(1), VirtAddr::new(0x1000)).unwrap();
        assert_eq!(pa, PhysAddr::new(0x8000));
        assert!(mmu
            .translate(Pasid(1), VirtAddr::new(0x1000), AccessKind::Read)
            .is_err());
    }

    #[test]
    fn unbind_returns_mapped_frames() {
        let mut mmu = unit();
        mmu.map(
            Pasid(1),
            VirtAddr::new(0x2000),
            PhysAddr::new(0x9000),
            Perms::R,
        )
        .unwrap();
        let mut frames = mmu.unbind_pasid(Pasid(1));
        frames.sort();
        assert_eq!(frames, vec![PhysAddr::new(0x8000), PhysAddr::new(0x9000)]);
        assert!(!mmu.has_pasid(Pasid(1)));
        assert!(mmu.unbind_pasid(Pasid(1)).is_empty());
    }

    #[test]
    fn pasid_spaces_are_disjoint() {
        let mut mmu = Iommu::new(16);
        mmu.bind_pasid(Pasid(1));
        mmu.bind_pasid(Pasid(2));
        mmu.map(
            Pasid(1),
            VirtAddr::new(0x1000),
            PhysAddr::new(0x8000),
            Perms::RW,
        )
        .unwrap();
        assert!(mmu
            .translate(Pasid(2), VirtAddr::new(0x1000), AccessKind::Read)
            .is_err());
        // Same VA can map to different PAs per PASID.
        mmu.map(
            Pasid(2),
            VirtAddr::new(0x1000),
            PhysAddr::new(0xA000),
            Perms::R,
        )
        .unwrap();
        let t1 = mmu
            .translate(Pasid(1), VirtAddr::new(0x1000), AccessKind::Read)
            .unwrap();
        let t2 = mmu
            .translate(Pasid(2), VirtAddr::new(0x1000), AccessKind::Read)
            .unwrap();
        assert_ne!(t1.pa, t2.pa);
    }

    #[test]
    fn stats_accumulate() {
        let mut mmu = unit();
        mmu.translate(Pasid(1), VirtAddr::new(0x1000), AccessKind::Read)
            .unwrap();
        mmu.translate(Pasid(1), VirtAddr::new(0x1000), AccessKind::Read)
            .unwrap();
        let _ = mmu.translate(Pasid(1), VirtAddr::new(0x9000), AccessKind::Read);
        let s = mmu.stats();
        assert_eq!(s.translations, 2);
        assert_eq!(s.faults, 1);
        assert_eq!(s.maps, 1);
        assert_eq!(mmu.tlb_stats().hits, 1);
        assert_eq!(mmu.mapped_pages(), 1);
        assert!(mmu.table_nodes() >= 4);
    }

    #[test]
    fn bind_is_idempotent() {
        let mut mmu = unit();
        mmu.bind_pasid(Pasid(1));
        // Mapping from before the rebind is still there.
        assert!(mmu
            .translate(Pasid(1), VirtAddr::new(0x1000), AccessKind::Read)
            .is_ok());
    }
}
