//! IOMMU fault records.

use std::fmt;

use lastcpu_mem::{Pasid, Perms, VirtAddr};

/// What kind of access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A DMA read.
    Read,
    /// A DMA write.
    Write,
    /// A code/descriptor fetch.
    Execute,
}

impl AccessKind {
    /// Permissions this access requires.
    pub fn required_perms(self) -> Perms {
        match self {
            AccessKind::Read => Perms::R,
            AccessKind::Write => Perms::W,
            AccessKind::Execute => Perms::X,
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Execute => "execute",
        };
        f.write_str(s)
    }
}

/// Why the translation faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IommuFaultKind {
    /// No mapping for the page (classic page fault).
    NotMapped,
    /// Mapping exists but lacks the needed permission.
    PermissionDenied {
        /// Permissions present on the mapping.
        have: Perms,
    },
    /// Address outside the translatable range.
    OutOfRange,
    /// The PASID has no address space bound at all.
    UnknownPasid,
}

/// A fault record delivered to the device that issued the access.
///
/// The paper (§4): "the IOMMU would deliver any faults to its attached
/// device. Each device would be responsible to handle its own faults
/// appropriately (i.e. reset the service or stop the application)."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IommuFault {
    /// Address space of the faulting access.
    pub pasid: Pasid,
    /// Faulting virtual address.
    pub va: VirtAddr,
    /// Access type that faulted.
    pub access: AccessKind,
    /// Why it faulted.
    pub kind: IommuFaultKind,
}

impl fmt::Display for IommuFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            IommuFaultKind::NotMapped => {
                write!(
                    f,
                    "page fault: {} {} at {} (not mapped)",
                    self.pasid, self.access, self.va
                )
            }
            IommuFaultKind::PermissionDenied { have } => write!(
                f,
                "permission fault: {} {} at {} (mapping is {have})",
                self.pasid, self.access, self.va
            ),
            IommuFaultKind::OutOfRange => {
                write!(
                    f,
                    "range fault: {} {} at {}",
                    self.pasid, self.access, self.va
                )
            }
            IommuFaultKind::UnknownPasid => {
                write!(
                    f,
                    "unknown pasid {} on {} at {}",
                    self.pasid, self.access, self.va
                )
            }
        }
    }
}

impl AccessKind {
    /// Serializes into a snapshot section.
    pub fn encode(self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u8(match self {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
            AccessKind::Execute => 2,
        });
    }

    /// Inverse of [`AccessKind::encode`].
    pub fn decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<Self> {
        Ok(match r.u8()? {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            2 => AccessKind::Execute,
            t => return Err(r.corrupt(format!("bad AccessKind tag {t}"))),
        })
    }
}

impl IommuFaultKind {
    /// Serializes into a snapshot section.
    pub fn encode(self, w: &mut lastcpu_snap::SnapWriter) {
        match self {
            IommuFaultKind::NotMapped => w.put_u8(0),
            IommuFaultKind::PermissionDenied { have } => {
                w.put_u8(1);
                w.put_u8(have.to_bits());
            }
            IommuFaultKind::OutOfRange => w.put_u8(2),
            IommuFaultKind::UnknownPasid => w.put_u8(3),
        }
    }

    /// Inverse of [`IommuFaultKind::encode`].
    pub fn decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<Self> {
        Ok(match r.u8()? {
            0 => IommuFaultKind::NotMapped,
            1 => IommuFaultKind::PermissionDenied {
                have: Perms::from_bits(r.u8()?),
            },
            2 => IommuFaultKind::OutOfRange,
            3 => IommuFaultKind::UnknownPasid,
            t => return Err(r.corrupt(format!("bad IommuFaultKind tag {t}"))),
        })
    }
}

impl IommuFault {
    /// Serializes into a snapshot section.
    pub fn encode(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u32(self.pasid.0);
        w.put_u64(self.va.as_u64());
        self.access.encode(w);
        self.kind.encode(w);
    }

    /// Inverse of [`IommuFault::encode`].
    pub fn decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<Self> {
        Ok(IommuFault {
            pasid: Pasid(r.u32()?),
            va: VirtAddr::new(r.u64()?),
            access: AccessKind::decode(r)?,
            kind: IommuFaultKind::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_maps_to_perms() {
        assert_eq!(AccessKind::Read.required_perms(), Perms::R);
        assert_eq!(AccessKind::Write.required_perms(), Perms::W);
        assert_eq!(AccessKind::Execute.required_perms(), Perms::X);
    }

    #[test]
    fn fault_display_mentions_cause() {
        let f = IommuFault {
            pasid: Pasid(3),
            va: VirtAddr::new(0x1000),
            access: AccessKind::Write,
            kind: IommuFaultKind::NotMapped,
        };
        let s = f.to_string();
        assert!(s.contains("page fault"));
        assert!(s.contains("pasid:3"));
        assert!(s.contains("write"));
    }

    #[test]
    fn permission_fault_shows_mapping_perms() {
        let f = IommuFault {
            pasid: Pasid(1),
            va: VirtAddr::new(0x2000),
            access: AccessKind::Write,
            kind: IommuFaultKind::PermissionDenied { have: Perms::R },
        };
        assert!(f.to_string().contains("r--"));
    }
}
