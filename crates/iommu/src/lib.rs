//! Per-device IOMMU model.
//!
//! In the paper's design the IOMMU is "the cornerstone of data isolation in
//! shared memory" (§2.2): every DMA a device issues is translated through
//! the device's IOMMU under the PASID of the application the access belongs
//! to. Devices never program their own tables — a compromised device must
//! not be able to extend its own reach — so map/unmap is performed by the
//! privileged system bus, and only on instruction from the controller of the
//! resource being mapped.
//!
//! Faults (missing mapping, insufficient permission) are *delivered to the
//! attached device*, which must handle them itself (§4 "Error Handling");
//! there is no CPU to take an exception.
//!
//! The model includes an IOTLB with LRU replacement so the E5 experiment can
//! measure the translation-overhead claim, and a walk-cost model charging
//! one table-node access per level on a miss.

#![warn(missing_docs)]

pub mod audit;
pub mod fault;
pub mod tlb;
pub mod unit;

pub use audit::{AccessVerdict, DmaAudit, DmaAuditDelta, DmaDenialRecord};
pub use fault::{AccessKind, IommuFault, IommuFaultKind};
pub use tlb::{Iotlb, TlbStats};
pub use unit::{Iommu, IommuCostModel, IommuStats, TranslationOutcome};
