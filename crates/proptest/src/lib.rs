//! Minimal, dependency-free shim of the `proptest` API surface this
//! workspace uses.
//!
//! The build must work fully offline, so instead of the real crate we vendor
//! a small property-testing harness with the same spelling: the `proptest!`
//! macro (both `pat in strategy` and `name: Type` argument forms),
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `any::<T>()`, range and
//! tuple strategies, `prop_map`, and `proptest::collection::vec`.
//!
//! Differences from upstream: no shrinking (a failing case reports its seed
//! and input by panicking directly), and a fixed case count of
//! [`CASES`] deterministic cases per property seeded from the property name.

/// Number of cases each property runs.
pub const CASES: u32 = 64;

pub mod test_runner {
    /// Deterministic generator handed to strategies. SplitMix64 core.
    pub struct TestRng(u64);

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng(seed)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Widening multiply is unbiased enough for test-case generation.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runs `cases` deterministic cases of `f`, seeding each from `name`.
    pub fn run_cases(name: &str, cases: u32, mut f: impl FnMut(&mut TestRng)) {
        // FNV-1a over the property name makes per-property streams distinct.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        for case in 0..cases {
            let mut rng = TestRng::new(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            f(&mut rng);
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator. Unlike upstream there is no shrinking, so a
    /// strategy is just "produce a value from a deterministic RNG".
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// Type-erased strategy (a boxed generator closure).
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi - lo;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit()
        }
    }

    impl<T: Arbitrary> Arbitrary for Vec<T> {
        fn arbitrary(rng: &mut TestRng) -> Vec<T> {
            let len = rng.below(129) as usize;
            (0..len).map(|_| T::arbitrary(rng)).collect()
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> String {
            // Mix of ASCII and multi-byte codepoints to exercise UTF-8 paths.
            let len = rng.below(65) as usize;
            (0..len)
                .map(|_| match rng.below(8) {
                    0 => char::from_u32(0x00A1 + rng.below(0x500) as u32).unwrap_or('ß'),
                    1 => char::from_u32(0x4E00 + rng.below(0x100) as u32).unwrap_or('中'),
                    _ => (b' ' + rng.below(95) as u8) as char,
                })
                .collect()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for vectors with per-element strategy and length range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let len = self.len.start
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Explicit test-case failure, for bodies that `return Err(..)` instead of
/// asserting. In this shim an `Err` simply panics (no shrinking).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "test case failed: {}", self.0)
    }
}

/// Per-block configuration (`#![proptest_config(..)]` inside `proptest!`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Defines `#[test]` functions that run [`CASES`] deterministic cases.
///
/// Supports both upstream argument forms:
/// `fn p(x in 0u8..4, v in vec(any::<u8>(), 0..9)) { .. }` and
/// `fn p(data: Vec<u8>) { .. }` (sugar for `data in any::<Vec<u8>>()`),
/// plus an optional leading `#![proptest_config(ProptestConfig::..)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __pt_cases = ($config).cases;
                $crate::test_runner::run_cases(stringify!($name), __pt_cases, |__pt_rng| {
                    $crate::__proptest_bind!(__pt_rng, $($args)*);
                    #[allow(clippy::redundant_closure_call)]
                    let __pt_result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __pt_result {
                        panic!("{e}");
                    }
                });
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                $crate::test_runner::run_cases(stringify!($name), $crate::CASES, |__pt_rng| {
                    $crate::__proptest_bind!(__pt_rng, $($args)*);
                    #[allow(clippy::redundant_closure_call)]
                    let __pt_result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __pt_result {
                        panic!("{e}");
                    }
                });
            }
        )*
    };
}

/// Internal: binds one `proptest!` argument list entry per recursion step.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident: $ty:ty $(, $($rest:tt)*)?) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary($rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident, $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// Like `assert!` (no shrinking in this shim, so failure just panics).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        fn shim_ranges_and_tuples((a, b) in (0u8..4, 10u64..20), n in 1usize..5) {
            prop_assert!(a < 4);
            prop_assert!((10..20).contains(&b));
            prop_assert!((1..5).contains(&n));
        }

        fn shim_typed_args(data: Vec<u8>, s: String, v: u64) {
            prop_assert!(data.len() <= 128);
            let _ = (s.len(), v);
        }

        fn shim_collections_and_oneof(
            ops in crate::collection::vec(
                prop_oneof![
                    (0u8..3).prop_map(|x| x as u32),
                    any::<u8>().prop_map(|x| 100 + x as u32),
                ],
                1..50,
            )
        ) {
            prop_assert!(!ops.is_empty() && ops.len() < 50);
            for op in ops {
                prop_assert!(op < 3 || (100..356).contains(&op));
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = vec![];
        let mut b = vec![];
        crate::test_runner::run_cases("x", 4, |rng| a.push(rng.next_u64()));
        crate::test_runner::run_cases("x", 4, |rng| b.push(rng.next_u64()));
        assert_eq!(a, b);
    }
}
