//! Shared fixtures for the cross-crate integration tests.

use lastcpu_devices::flash::{NandChip, NandConfig};
use lastcpu_devices::fs::FlashFs;
use lastcpu_devices::ftl::Ftl;

/// A small, wear-proof flash filesystem for integration scenarios.
pub fn small_fs() -> FlashFs {
    FlashFs::format(Ftl::new(NandChip::new(NandConfig {
        blocks: 64,
        pages_per_block: 32,
        page_size: 4096,
        max_erase_cycles: u32::MAX,
        ..NandConfig::default()
    })))
}
