//! E11 negative-path tests: every attack class in the adversarial-device
//! matrix must be *provably* blocked (DESIGN.md §11).
//!
//! Each test embeds a [`MaliciousDevice`] running exactly one attack class
//! in an otherwise ordinary §3 CPU-less KVS machine, then checks three
//! things: the attacker's own tally shows the denial, the audit layer
//! recorded it (`sec.*` counters — denied means *audited as denied*, not
//! merely "nothing visibly broke"), and the post-hoc probe oracle confirms
//! no state leaked (no translation exists at any attacked VA). The closing
//! property test drives random attack interleavings and checks the two
//! run-level invariants: bit-identical same-seed replay, and no verdict
//! ever flipping from blocked to leaked.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use lastcpu_bus::SecurityPolicy;
use lastcpu_core::{DeviceHandle, System, SystemConfig};
use lastcpu_iommu::AccessKind;
use lastcpu_kvs::client::{KvsClientHost, WorkloadConfig};
use lastcpu_kvs::{build_cpuless_kvs, ServerConfig, VA_STRIDE};
use lastcpu_mem::{Pasid, VirtAddr};
use lastcpu_net::PortId;
use lastcpu_sec::{AttackKind, AttackPlan, AttackTargets, MaliciousDevice};
use lastcpu_sim::{SimDuration, SimTime};
use proptest::prelude::*;

use lastcpu_devices::ssd::SsdConfig;

/// Base VA of the KVS app's generation-0 window (`ServerConfig` default).
const VA_BASE: u64 = 0x2000_0000;

/// An attacked KVS machine: the §3 deployment plus `evil0` and a small
/// closed-loop client, powered on and ready to run.
struct Attacked {
    system: System,
    attacker: DeviceHandle,
    frontend: DeviceHandle,
    client: PortId,
    app_pasid: u32,
}

fn attacked_kvs(seed: u64, plan: AttackPlan, policy: SecurityPolicy) -> Attacked {
    let mut setup = build_cpuless_kvs(
        SystemConfig {
            seed,
            trace: true,
            security_audit: true,
            security_policy: policy,
            ..SystemConfig::default()
        },
        SsdConfig::default(),
        ServerConfig::default(),
    );
    let app_pasid = setup.ssd.id.0 + 2;
    let memctl = setup.system.memctl_id().expect("memctl present");
    let mut targets = AttackTargets::new(setup.frontend.id, memctl, app_pasid);
    targets.shadow_services = vec!["fs".into()];
    let attacker = setup
        .system
        .add_device(Box::new(MaliciousDevice::new("evil0", plan, targets)));
    let client = setup.system.add_host(Box::new(KvsClientHost::new(
        setup.kvs_port,
        WorkloadConfig {
            keys: 20,
            theta: 0.9,
            read_fraction: 0.8,
            value_size: 64,
            outstanding: 4,
            total_ops: 60,
            preload: true,
            stats_prefix: "c0".into(),
            ..WorkloadConfig::default()
        },
    )));
    setup.system.power_on();
    Attacked {
        system: setup.system,
        attacker,
        frontend: setup.frontend,
        client,
        app_pasid,
    }
}

/// A plan firing one attack class twice: once during setup, once at steady
/// state (the windows-mapped, cache-warm moment worth probing).
fn plan_of(seed: u64, kind: AttackKind) -> AttackPlan {
    let mut p = AttackPlan::new(seed);
    p.inject(SimTime::from_nanos(5_000_000), kind)
        .inject(SimTime::from_nanos(20_000_000), kind);
    p
}

fn run(a: &mut Attacked) {
    a.system.run_for(SimDuration::from_millis(80));
}

fn evil(a: &Attacked) -> &MaliciousDevice {
    a.system
        .device_as::<MaliciousDevice>(a.attacker)
        .expect("attacker present")
}

fn client(a: &Attacked) -> &KvsClientHost {
    a.system.host_as(a.client).expect("client present")
}

/// True iff the attacker's own IOMMU translates `va` under the app PASID.
fn attacker_translates(a: &Attacked, va: u64) -> bool {
    a.system
        .iommu(a.attacker)
        .probe(Pasid(a.app_pasid), VirtAddr::new(va), AccessKind::Read)
        .is_some()
}

#[test]
fn wild_dma_faults_at_the_attackers_own_iommu_and_is_audited() {
    let mut a = attacked_kvs(
        11,
        plan_of(11, AttackKind::WildDma),
        SecurityPolicy::default(),
    );
    run(&mut a);
    let s = evil(&a).stats(AttackKind::WildDma);
    assert!(s.attempts >= 8, "both rounds fired: {s:?}");
    assert_eq!(s.denied_local, s.attempts, "every probe faulted: {s:?}");
    assert_eq!(s.acked_ok, 0, "no wild DMA may succeed: {s:?}");
    // Provably denied: the audit counted each fault against the attacker.
    assert!(a.system.stats().counter("sec.dma_denied") >= s.attempts);
    assert!(a.system.stats().counter("sec.evil0.dma_denied") >= s.attempts);
    // And no translation leaked into the attacker's IOMMU.
    assert!(!attacker_translates(&a, VA_BASE));
    // The victim workload never noticed.
    assert!(client(&a).is_done() && client(&a).errors() == 0);
}

#[test]
fn stale_generation_windows_stay_revoked() {
    let mut a = attacked_kvs(
        12,
        plan_of(12, AttackKind::StaleGeneration),
        SecurityPolicy::default(),
    );
    run(&mut a);
    let s = evil(&a).stats(AttackKind::StaleGeneration);
    assert!(s.attempts >= 8);
    assert_eq!(
        s.denied_local, s.attempts,
        "every window probe faulted: {s:?}"
    );
    assert_eq!(s.acked_ok, 0);
    // Census on the *victim's* IOMMU: exactly one generation window is
    // live in a fault-free run — no rotated-away generation lingers.
    let mmu = a.system.iommu(a.frontend);
    let live = (0..8u64)
        .filter(|g| {
            mmu.probe(
                Pasid(a.app_pasid),
                VirtAddr::new(VA_BASE + g * VA_STRIDE),
                AccessKind::Read,
            )
            .is_some()
        })
        .count();
    assert_eq!(live, 1, "exactly the current generation translates");
}

#[test]
fn confused_deputy_requests_are_refused_by_the_bus() {
    let mut a = attacked_kvs(
        13,
        plan_of(13, AttackKind::ConfusedDeputy),
        SecurityPolicy::default(),
    );
    run(&mut a);
    let s = evil(&a).stats(AttackKind::ConfusedDeputy);
    // 2 rounds x (forged map + 2 guessed shares + the post-escalation
    // non-Memory map once Compute is owned) — all must resolve to denials.
    assert!(s.attempts >= 7, "{s:?}");
    assert_eq!(s.acked_ok, 0, "no deputy request may be honoured: {s:?}");
    assert_eq!(
        s.denied_remote, s.attempts,
        "all refused with a reply: {s:?}"
    );
    // Provably denied at the choke point: the bus audit holds the exact
    // denial count (counters are cumulative; the record log drains into
    // the trace each dispatch).
    let audit = a.system.bus().audit().expect("audit enabled");
    assert!(
        audit.denied() >= 4,
        "bus-side denials audited: {}",
        audit.denied()
    );
    assert!(a.system.stats().counter("sec.privops_denied") >= 4);
    // No mapping appeared at any VA the forged instructions named.
    assert!(!attacker_translates(&a, 0x7000_0000));
    assert!(!attacker_translates(&a, 0x7200_0000));
    for guess in 0..16u64 {
        assert!(!attacker_translates(&a, 0x7100_0000 + (guess << 16)));
    }
}

#[test]
fn ssdp_shadowing_is_denied_under_the_hardened_policy() {
    let mut a = attacked_kvs(
        14,
        plan_of(14, AttackKind::SsdpSpoof),
        SecurityPolicy::hardened(64),
    );
    run(&mut a);
    let s = evil(&a).stats(AttackKind::SsdpSpoof);
    assert!(s.attempts >= 1, "shadow announces fired");
    assert_eq!(s.acked_ok, 0, "no shadow announce accepted: {s:?}");
    assert_eq!(s.denied_remote, s.attempts, "{s:?}");
    // The directory holds no attacker service shadowing a live name.
    let bus = a.system.bus();
    let mine = &bus.device(a.attacker.id).expect("registered").services;
    let shadowed = mine.iter().any(|m| {
        bus.alive()
            .filter(|e| e.id != a.attacker.id)
            .any(|e| e.services.iter().any(|s| s.name == m.name))
    });
    assert!(!shadowed, "directory must hold no shadow entries");
}

#[test]
fn ssdp_shadowing_succeeds_without_the_policy_documenting_the_opt_in() {
    // The control for the previous test: the baseline protocol accepts
    // shadow announces (discovery is open by design), which is exactly why
    // `SecurityPolicy::deny_shadow_announce` exists and why E11 runs
    // hardened. If this starts failing, the default policy changed and
    // DESIGN.md §11 needs updating.
    let mut a = attacked_kvs(
        14,
        plan_of(14, AttackKind::SsdpSpoof),
        SecurityPolicy::default(),
    );
    run(&mut a);
    let s = evil(&a).stats(AttackKind::SsdpSpoof);
    assert!(
        s.attempts >= 1 && s.denied_remote == 0,
        "nothing refused: {s:?}"
    );
    // A successful Announce is rebroadcast without an ack, so the leak
    // evidence is the poisoned directory: the attacker now shadows a live
    // service name.
    let bus = a.system.bus();
    let mine = &bus.device(a.attacker.id).expect("registered").services;
    let shadowed = mine.iter().any(|m| {
        bus.alive()
            .filter(|e| e.id != a.attacker.id)
            .any(|e| e.services.iter().any(|s| s.name == m.name))
    });
    assert!(shadowed, "baseline lets the shadow into the directory");
}

#[test]
fn control_floods_are_shed_without_starving_the_workload() {
    let mut a = attacked_kvs(
        15,
        plan_of(15, AttackKind::ControlFlood),
        SecurityPolicy::hardened(16),
    );
    run(&mut a);
    let s = evil(&a).stats(AttackKind::ControlFlood);
    assert!(s.attempts >= 128, "two 64-message bursts: {s:?}");
    // Shedding is bus-side and silent (no NACK amplification).
    let shed = a.system.stats().counter("sec.flood_dropped");
    assert!(shed >= 64, "the limiter shed most of each burst: {shed}");
    let audit = a.system.bus().audit().expect("audit enabled");
    assert_eq!(audit.rate_limited(), shed);
    // The victim workload still completed, unharmed.
    assert!(client(&a).is_done(), "flood must not starve the KVS");
    assert_eq!(client(&a).errors(), 0);
}

/// Order-independent digest of everything observable about a finished run.
fn fingerprint(sys: &System) -> u64 {
    let mut h = DefaultHasher::new();
    sys.now().as_nanos().hash(&mut h);
    for e in sys.trace().events() {
        e.at.as_nanos().hash(&mut h);
        e.what().hash(&mut h);
    }
    let mut counters = sys.stats().counters();
    counters.sort();
    counters.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random attack interleavings (any classes, any order, attack times
    /// straddling setup and steady state) replay bit-identically from the
    /// same seed, and no blocked verdict ever flips: across both runs the
    /// DMA and deputy classes are fully denied under the *default* policy,
    /// and all five classes leak nothing under the hardened one.
    fn attack_interleavings_replay_and_stay_blocked(
        seed in 0u64..1_000_000_000,
        mix in proptest::collection::vec(
            (2_000_000u64..30_000_000, 0usize..AttackKind::ALL.len()),
            1..8,
        ),
    ) {
        let once = || {
            let mut plan = AttackPlan::new(seed);
            for &(at_ns, idx) in &mix {
                plan.inject(SimTime::from_nanos(at_ns), AttackKind::ALL[idx]);
            }
            let mut a = attacked_kvs(seed, plan, SecurityPolicy::hardened(16));
            run(&mut a);
            let stats = evil(&a).all_stats();
            for (kind, s) in stats {
                prop_assert_eq!(
                    s.acked_ok, 0,
                    "{} must never be acknowledged: {:?}", kind.tag(), s
                );
            }
            prop_assert!(!attacker_translates(&a, VA_BASE));
            prop_assert!(!attacker_translates(&a, 0x7000_0000));
            Ok((fingerprint(&a.system), stats))
        };
        let (f1, s1) = once()?;
        let (f2, s2) = once()?;
        prop_assert_eq!(f1, f2, "same-seed replay must be bit-identical");
        prop_assert_eq!(s1, s2, "verdict tallies must replay exactly");
    }
}
