//! Property tests for the deterministic fault-injection subsystem.
//!
//! Two invariants from the failure-model design (DESIGN.md §8):
//!
//! 1. **Replay**: a `FaultPlan` is pure data seeded from `DetRng`, and the
//!    system consumes it through the ordinary event loop — so the same seed
//!    must reproduce the same run bit-for-bit, no matter which faults the
//!    plan happens to contain.
//! 2. **No silent wedging**: every injected device crash either completes
//!    the Figure-2 re-init (device `Alive` again, with a recovery-latency
//!    sample recorded) or surfaces as a terminal, observable failure
//!    (device `Failed` on the bus with the failure counted). A crash must
//!    never leave a device in a live-looking state that does no work.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use lastcpu_bus::bus::DeviceState;
use lastcpu_bus::RetryConfig;
use lastcpu_core::{System, SystemConfig};
use lastcpu_devices::auth::AuthDevice;
use lastcpu_devices::console::ConsoleDevice;
use lastcpu_devices::monitor::AuthMode;
use lastcpu_devices::ssd::{SmartSsd, SsdConfig};
use lastcpu_sim::{FaultKind, FaultPlan, SimDuration, SimTime};
use lastcpu_tests::small_fs;
use proptest::prelude::*;

/// Devices a plan may target. `memctl0` is deliberately excluded: the
/// memory controller is the root of the Figure-2 discovery sequence and
/// has no independent supervisor to restart it.
const TARGETS: [&str; 3] = ["auth0", "console0", "ssd0"];

/// Builds the three-device machine used by the properties (auth + console
/// + SSD behind one memory controller), powers it on, and returns it.
fn faulty_system(seed: u64, plan: FaultPlan) -> System {
    let mut sys = System::new(SystemConfig {
        seed,
        trace: true,
        liveness_interval: Some(SimDuration::from_millis(2)),
        fault_plan: Some(plan),
        rpc_retry: Some(RetryConfig::default()),
        ..SystemConfig::default()
    });
    let memctl = sys.add_memctl("memctl0");
    sys.add_device(Box::new(AuthDevice::new("auth0", 0xFEED, &[("op", "pw")])));
    let mut fs = small_fs();
    fs.create("/l").unwrap();
    fs.write("/l", 0, &vec![7u8; 3000]).unwrap();
    sys.add_device(Box::new(SmartSsd::new(
        "ssd0",
        fs,
        SsdConfig {
            exports: vec!["/l".into()],
            file_auth: AuthMode::Sealed { secret: 0xFEED },
            ..SsdConfig::default()
        },
    )));
    sys.add_device(Box::new(ConsoleDevice::new(
        "console0", memctl.id, "op", "pw", "/l",
    )));
    sys.power_on();
    sys
}

/// Order-independent digest of everything observable about a finished run:
/// final clock, the retained trace (time + rendered text of every event),
/// and all stats counters.
fn fingerprint(sys: &System) -> u64 {
    let mut h = DefaultHasher::new();
    sys.now().as_nanos().hash(&mut h);
    for e in sys.trace().events() {
        e.at.as_nanos().hash(&mut h);
        e.what().hash(&mut h);
    }
    let mut counters = sys.stats().counters();
    counters.sort();
    counters.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Replay: the same fault seed yields a bit-identical run — same
    /// clock, same trace, same counters — across arbitrary plan shapes
    /// (drop/corrupt/delay/crash/hang/slow-down/IOMMU-storm mixes).
    fn fault_plan_seed_replays_bit_identically(
        seed in 0u64..1_000_000_000,
        count in 1u32..=12,
    ) {
        let run = || {
            let plan = FaultPlan::generate(
                seed,
                &TARGETS,
                SimTime::ZERO,
                SimDuration::from_millis(25),
                count,
            );
            let mut sys = faulty_system(seed, plan);
            sys.run_for(SimDuration::from_millis(35));
            fingerprint(&sys)
        };
        prop_assert_eq!(run(), run());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Recovery: every injected crash either brings the device back
    /// `Alive` through the Figure-2 re-init (recording a recovery-latency
    /// sample) or leaves it observably `Failed` on the bus — never a
    /// third, silent state.
    fn every_injected_crash_recovers_or_surfaces(
        seed in 0u64..1_000_000_000,
        crashes in proptest::collection::vec(
            (5_000_000u64..20_000_000, 0usize..TARGETS.len()),
            1..5,
        ),
    ) {
        let mut plan = FaultPlan::new(seed);
        for &(at_ns, idx) in &crashes {
            plan.inject(SimTime::from_nanos(at_ns), TARGETS[idx], FaultKind::Crash);
        }
        let mut sys = faulty_system(seed, plan);
        // Last crash lands before 20ms; 50ms leaves >30ms of slack, vs a
        // 100us reset latency plus one 2ms heartbeat round-trip.
        sys.run_for(SimDuration::from_millis(50));

        prop_assert!(
            sys.stats().counter("system.device_resets") >= 1,
            "a crash was injected but no reset was ever issued"
        );
        let mut hit: Vec<&str> = crashes.iter().map(|&(_, idx)| TARGETS[idx]).collect();
        hit.sort_unstable();
        hit.dedup();
        for target in hit {
            let info = sys
                .bus()
                .devices()
                .find(|d| d.name == target)
                .unwrap_or_else(|| panic!("{target} vanished from the bus roster"));
            match info.state {
                DeviceState::Alive => {
                    let rec = sys
                        .stats()
                        .histogram(&format!("bus.{target}.recovery_latency"));
                    prop_assert!(
                        rec.map(|r| r.count()).unwrap_or(0) >= 1,
                        "{target} is Alive after a crash but never recorded a recovery"
                    );
                }
                DeviceState::Failed => {
                    // Terminal error surfaced: the bus counted the failure
                    // and broadcast it.
                    prop_assert!(
                        sys.bus().stats().failures >= 1,
                        "{target} is Failed but the bus never counted a failure"
                    );
                }
                other => {
                    return Err(TestCaseError::fail(format!(
                        "{target} left in silent state {other:?} after crash"
                    )));
                }
            }
        }
    }
}
