//! Integration: the paper's Figure 2 initialization sequence happens, in
//! order, with the right actors — and nothing resembling a CPU exists in
//! the machine.

use lastcpu_core::devices::nic::SmartNic;
use lastcpu_core::SystemConfig;
use lastcpu_kvs::server::{ServerConfig, ServerState};
use lastcpu_kvs::{build_cpuless_kvs, KvsNicApp};
use lastcpu_sim::SimDuration;

#[test]
fn figure2_steps_occur_in_order() {
    let mut setup = build_cpuless_kvs(
        SystemConfig::default(),
        Default::default(),
        ServerConfig::default(),
    );
    setup.system.power_on();
    setup.system.run_for(SimDuration::from_millis(20));

    let nic: &SmartNic<KvsNicApp> = setup.system.device_as(setup.frontend).unwrap();
    assert_eq!(nic.app().state(), ServerState::Ready);

    // No device of kind "cpu" exists.
    assert!(
        setup.system.bus().devices().all(|d| d.kind != "cpu"),
        "a CPU sneaked into the CPU-less machine"
    );

    // The seven steps appear in causal order in the trace.
    let needles = [
        "sends Query(file:",         // 1: broadcast discovery
        "-> nic0: QueryHit",         // 2: the SSD answers
        "-> ssd0: OpenRequest",      // 3: open the file service
        "-> nic0: OpenResponse",     // 4: conn + shm requirement
        "-> memctl0: MemAlloc",      // 5: allocate shared memory
        "programmed IOMMU of dev:3", // 6: bus programs the NIC's IOMMU
        "-> memctl0: Share",         // 7: grant to the SSD
        "programmed IOMMU of dev:2", //    bus programs the SSD's IOMMU
        "queue attached",            //    VIRTIO queue established
    ];
    let events: Vec<String> = setup.system.trace().events().map(|e| e.what()).collect();
    let mut cursor = 0;
    for needle in needles {
        let pos = events[cursor..]
            .iter()
            .position(|w| w.contains(needle))
            .unwrap_or_else(|| panic!("step '{needle}' missing after index {cursor}"));
        cursor += pos + 1;
    }
}

#[test]
fn setup_is_fast_and_bounded() {
    let mut setup = build_cpuless_kvs(
        SystemConfig::default(),
        Default::default(),
        ServerConfig::default(),
    );
    setup.system.power_on();
    setup.system.run_for(SimDuration::from_millis(20));
    let ready_at = setup
        .system
        .trace()
        .events()
        .find(|e| e.what().contains("queue attached"))
        .map(|e| e.at)
        .expect("queue established");
    // Dominated by two 50us discovery windows; the whole handshake stays
    // well under a millisecond of virtual time.
    assert!(
        ready_at.as_nanos() < 1_000_000,
        "setup took {ready_at} — regression in the control plane"
    );
}
