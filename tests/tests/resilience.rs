//! Integration: failure handling, liveness detection, and determinism of
//! the full machine.

use lastcpu_bus::bus::DeviceState;
use lastcpu_bus::{Dst, Envelope, Payload};
use lastcpu_core::devices::device::{Device, DeviceCtx};
use lastcpu_core::devices::ssd::{SmartSsd, SsdConfig};
use lastcpu_core::{System, SystemConfig};
use lastcpu_kvs::build_cpuless_kvs;
use lastcpu_kvs::client::{KvsClientHost, WorkloadConfig};
use lastcpu_kvs::server::ServerConfig;
use lastcpu_sim::{SimDuration, SimTime};
use lastcpu_tests::small_fs;

/// A device that says Hello once and then goes silent — no heartbeats.
struct SilentDevice {
    name: String,
}

impl Device for SilentDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "silent"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.send_bus(
            Dst::Bus,
            Payload::Hello {
                name: self.name.clone(),
                kind: "silent".into(),
            },
        );
    }

    fn on_message(&mut self, _ctx: &mut DeviceCtx<'_>, _env: Envelope) {}

    fn on_timer(&mut self, _ctx: &mut DeviceCtx<'_>, _token: u64) {}
}

#[test]
fn heartbeat_timeout_declares_silent_device_failed() {
    let mut sys = System::new(SystemConfig {
        liveness_interval: Some(SimDuration::from_millis(5)),
        ..SystemConfig::default()
    });
    sys.add_memctl("memctl0");
    let silent = sys.add_device(Box::new(SilentDevice {
        name: "mute0".into(),
    }));
    sys.power_on();
    sys.run_for(SimDuration::from_millis(2));
    assert_eq!(
        sys.bus().device(silent.id).unwrap().state,
        DeviceState::Alive
    );
    // Default heartbeat timeout is 10ms; by 30ms the scan has fired.
    sys.run_for(SimDuration::from_millis(30));
    let state = sys.bus().device(silent.id).unwrap().state;
    // The bus reset it; the reset re-sends Hello; then it goes silent again
    // and will be declared failed again — either state is a correct
    // observation, but it must not be mistaken for a healthy device with
    // current heartbeats.
    assert!(
        state == DeviceState::Failed || state == DeviceState::Alive,
        "unexpected state {state:?}"
    );
    assert!(sys.bus().stats().failures >= 1, "liveness scan never fired");
    // The memory controller heartbeats and must never be declared failed.
    let mc_state = sys
        .bus()
        .devices()
        .find(|d| d.kind == "memory-controller")
        .unwrap()
        .state;
    assert_eq!(mc_state, DeviceState::Alive);
}

#[test]
fn ssd_failure_mid_workload_is_fenced_and_recovered() {
    let mut setup = build_cpuless_kvs(
        SystemConfig::default(),
        SsdConfig::default(),
        ServerConfig::default(),
    );
    let port = setup.system.add_host(Box::new(KvsClientHost::new(
        setup.kvs_port,
        WorkloadConfig {
            keys: 50,
            total_ops: 1_000_000,
            stats_prefix: "c".into(),
            ..WorkloadConfig::default()
        },
    )));
    setup.system.power_on();
    setup.system.run_for(SimDuration::from_millis(100));
    let before = {
        let c: &KvsClientHost = setup.system.host_as(port).unwrap();
        assert!(c.ops_done() > 0);
        c.ops_done()
    };
    setup.system.kill_device(setup.ssd, false);
    setup.system.run_for(SimDuration::from_millis(200));
    // The SSD is back (bus reset + re-hello).
    assert_eq!(
        setup.system.bus().device(setup.ssd.id).unwrap().state,
        DeviceState::Alive
    );
    // The client observed the outage as *explicit* degradation: the server
    // failed over its queued work with `Unavailable` instead of wedging
    // (pre-recovery behaviour was timeouts + an eternal `Busy` server).
    {
        let c: &KvsClientHost = setup.system.host_as(port).unwrap();
        assert!(
            c.unavailable_rejections() > 0,
            "failed-over requests must be answered Unavailable"
        );
        assert!(c.errors() == 0, "no corrupt responses");
    }
    // Shared memory was revoked.
    assert!(setup.system.stats().counter("bus.pages_unmapped") > 0);
    // And the server un-wedged: it re-discovered the revived SSD, replayed
    // the Figure-2 setup + log rebuild, and is serving again — the workload
    // makes progress past where the failure struck.
    let server_state = |sys: &lastcpu_core::System, frontend| {
        let app: &lastcpu_core::devices::nic::SmartNic<lastcpu_kvs::KvsNicApp> =
            sys.device_as(frontend).expect("nic");
        app.app().state()
    };
    // Give the log rebuild time to finish (bounded).
    for _ in 0..20 {
        if server_state(&setup.system, setup.frontend) == lastcpu_kvs::server::ServerState::Ready {
            break;
        }
        setup.system.run_for(SimDuration::from_millis(100));
    }
    assert_eq!(
        server_state(&setup.system, setup.frontend),
        lastcpu_kvs::server::ServerState::Ready,
        "server must recover to Ready after the SSD returns"
    );
    let c: &KvsClientHost = setup.system.host_as(port).unwrap();
    let after = c.ops_done();
    assert!(
        after > before,
        "workload must make progress after recovery ({before} -> {after})"
    );
    assert!(c.errors() == 0, "no corrupt responses across the recovery");
    assert!(
        setup.system.stats().counter("kvs.server.restarts") >= 1,
        "recovery must be counted"
    );
}

#[test]
fn dead_device_messages_are_fenced() {
    let mut sys = System::new(SystemConfig::default());
    sys.add_memctl("memctl0");
    let ssd = sys.add_device(Box::new(SmartSsd::new(
        "ssd0",
        small_fs(),
        SsdConfig::default(),
    )));
    sys.power_on();
    sys.run_for(SimDuration::from_millis(5));
    let msgs_before = sys.bus().stats().messages;
    sys.kill_device(ssd, true);
    sys.run_for(SimDuration::from_millis(20));
    // The dead SSD sends nothing (its heartbeat timers are dropped), and
    // permanent death means no reset revival.
    assert_eq!(sys.bus().device(ssd.id).unwrap().state, DeviceState::Failed);
    let ssd_msgs_after: u64 = sys.bus().stats().messages - msgs_before;
    // Only the memctl's heartbeats continue (~1 per 2ms).
    assert!(
        ssd_msgs_after <= 15,
        "suspiciously many messages after fencing: {ssd_msgs_after}"
    );
}

#[test]
fn full_kvs_run_is_deterministic() {
    let run = |seed: u64| -> (u64, u64, u64, SimTime) {
        let mut setup = build_cpuless_kvs(
            SystemConfig {
                seed,
                ..SystemConfig::default()
            },
            SsdConfig::default(),
            ServerConfig::default(),
        );
        let port = setup.system.add_host(Box::new(KvsClientHost::new(
            setup.kvs_port,
            WorkloadConfig {
                keys: 40,
                total_ops: 200,
                stats_prefix: "c".into(),
                ..WorkloadConfig::default()
            },
        )));
        setup.system.power_on();
        setup.system.run_for(SimDuration::from_secs(2));
        let c: &KvsClientHost = setup.system.host_as(port).unwrap();
        assert!(c.is_done());
        (
            setup.system.bus().stats().messages,
            setup.system.bus().stats().bytes,
            setup.system.stats().counter("system.doorbells"),
            setup.system.now(),
        )
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b, "same seed must reproduce the identical run");
    let c = run(8);
    assert_ne!(a.3, c.3, "different seeds should differ somewhere");
}

#[test]
fn memctl_quota_denies_over_budget_allocations() {
    use lastcpu_core::memctl::MemCtlConfig;
    // Each device may hold at most 256 KiB — exactly one file-conn region.
    let mut sys = System::new(SystemConfig::default());
    let memctl = sys.add_memctl_with_config(
        "memctl0",
        MemCtlConfig {
            per_device_quota: Some(256 * 1024),
        },
    );
    sys.add_device(Box::new(SmartSsd::new(
        "ssd0",
        lastcpu_tests::small_fs(),
        SsdConfig {
            exports: vec!["/q.db".into()],
            ..SsdConfig::default()
        },
    )));
    // The same device tries to hold two 256 KiB regions concurrently: the
    // second allocation must be denied by the quota.
    use lastcpu_core::devices::device::Device;
    use lastcpu_core::devices::monitor::{Monitor, MonitorEvent};

    struct DoubleAlloc {
        monitor: Monitor,
        memctl: lastcpu_bus::DeviceId,
        op: u64,
        pub results: Vec<bool>,
    }
    impl Device for DoubleAlloc {
        fn name(&self) -> &str {
            "dbl"
        }
        fn kind(&self) -> &str {
            "client"
        }
        fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
            self.monitor.start(ctx, "dbl", "client");
            self.monitor
                .enable_heartbeat(ctx, SimDuration::from_millis(2));
        }
        fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
            for ev in self.monitor.handle(ctx, &env) {
                match ev {
                    MonitorEvent::Registered => {
                        ctx.set_timer(SimDuration::from_micros(200), 2);
                    }
                    MonitorEvent::AllocDone { op, result } if op == self.op => {
                        self.results.push(result.is_ok());
                        if self.results.len() < 2 {
                            self.op = self.monitor.alloc_shared(
                                ctx,
                                self.memctl,
                                ctx.dev.0,
                                0x7000_0000 + 0x10_0000 * self.results.len() as u64,
                                256 * 1024,
                                3,
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
        fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
            if self.monitor.on_timer(ctx, token).is_some() {
                return;
            }
            if token == 2 && self.results.is_empty() {
                self.op = self.monitor.alloc_shared(
                    ctx,
                    self.memctl,
                    ctx.dev.0,
                    0x7000_0000,
                    256 * 1024,
                    3,
                );
            }
        }
    }

    let client = sys.add_device(Box::new(DoubleAlloc {
        monitor: Monitor::new(),
        memctl: memctl.id,
        op: 0,
        results: Vec::new(),
    }));
    sys.power_on();
    sys.run_for(SimDuration::from_millis(20));
    let c: &DoubleAlloc = sys.device_as(client).unwrap();
    assert_eq!(
        c.results,
        vec![true, false],
        "second region exceeds the quota"
    );
}

#[test]
fn kvs_survives_wear_driven_block_retirement() {
    use lastcpu_core::devices::flash::{NandChip, NandConfig};
    use lastcpu_core::devices::fs::FlashFs;
    use lastcpu_core::devices::ftl::Ftl;
    // Low-endurance flash: blocks wear out during the workload; the FTL
    // retires them and the KVS never notices.
    let mut fs = FlashFs::format(Ftl::new(NandChip::new(NandConfig {
        blocks: 128,
        pages_per_block: 32,
        page_size: 4096,
        max_erase_cycles: 40,
        ..NandConfig::default()
    })));
    fs.create("/data/kv.db").unwrap();
    let mut sys = System::new(SystemConfig {
        trace: false,
        ..SystemConfig::default()
    });
    sys.add_memctl("memctl0");
    let ssd = sys.add_device(Box::new(SmartSsd::new(
        "ssd0",
        fs,
        SsdConfig {
            exports: vec!["/data/kv.db".into()],
            ..SsdConfig::default()
        },
    )));
    let nic = sys.add_net_device(Box::new(lastcpu_core::devices::nic::SmartNic::new(
        "nic0",
        lastcpu_kvs::KvsNicApp::new(ServerConfig::default(), lastcpu_core::mem::Pasid(50)),
    )));
    let port = sys.device_port(nic).unwrap();
    let client = sys.add_host(Box::new(KvsClientHost::new(
        port,
        WorkloadConfig {
            keys: 60,
            read_fraction: 0.3, // write-heavy: maximum wear
            value_size: 512,
            total_ops: 1500,
            stats_prefix: "wear".into(),
            ..WorkloadConfig::default()
        },
    )));
    sys.power_on();
    sys.run_for(SimDuration::from_secs(10));
    let c: &KvsClientHost = sys.host_as(client).unwrap();
    assert!(c.is_done(), "workload incomplete: {}", c.ops_done());
    assert_eq!(c.errors(), 0, "wear must be invisible to the application");
    let ssd_dev: &SmartSsd = sys.device_as(ssd).unwrap();
    let _ = ssd_dev;
}
