//! Integration: plane separation and doorbell semantics at system level.

use lastcpu_bus::{ConnId, Dst, Envelope, Payload};
use lastcpu_core::devices::device::{Device, DeviceCtx};
use lastcpu_core::{System, SystemConfig};
use lastcpu_sim::{SimDuration, SimTime};

/// Rings a peer every `period`; records round trips.
struct Pinger {
    peer: lastcpu_bus::DeviceId,
    sent: Option<SimTime>,
    pub rtts: Vec<SimDuration>,
}

impl Device for Pinger {
    fn name(&self) -> &str {
        "pinger"
    }
    fn kind(&self) -> &str {
        "pinger"
    }
    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.send_bus(
            Dst::Bus,
            Payload::Hello {
                name: "pinger".into(),
                kind: "pinger".into(),
            },
        );
        ctx.set_timer(SimDuration::from_micros(20), 2);
        ctx.set_timer(SimDuration::from_millis(2), 1);
    }
    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        if let Payload::Doorbell { .. } = env.payload {
            if let Some(at) = self.sent.take() {
                self.rtts.push(ctx.now.since(at));
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        match token {
            1 => {
                ctx.send_bus(Dst::Bus, Payload::Heartbeat);
                ctx.set_timer(SimDuration::from_millis(2), 1);
            }
            2 => {
                if self.sent.is_none() {
                    self.sent = Some(ctx.now);
                    ctx.doorbell(self.peer, ConnId(1), 0);
                }
                ctx.set_timer(SimDuration::from_micros(20), 2);
            }
            _ => {}
        }
    }
}

/// Reflects doorbells; also the sink for bulk storms.
struct Reflector;

impl Device for Reflector {
    fn name(&self) -> &str {
        "reflector"
    }
    fn kind(&self) -> &str {
        "reflector"
    }
    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.send_bus(
            Dst::Bus,
            Payload::Hello {
                name: "reflector".into(),
                kind: "reflector".into(),
            },
        );
        ctx.set_timer(SimDuration::from_millis(2), 1);
    }
    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        if let Payload::Doorbell { conn, value } = env.payload {
            ctx.doorbell(env.src, conn, value);
        }
    }
    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        if token == 1 {
            ctx.send_bus(Dst::Bus, Payload::Heartbeat);
            ctx.set_timer(SimDuration::from_millis(2), 1);
        }
    }
}

/// Sends bulk AppData to a sink every 50us.
struct BulkStorm {
    sink: lastcpu_bus::DeviceId,
}

impl Device for BulkStorm {
    fn name(&self) -> &str {
        "storm"
    }
    fn kind(&self) -> &str {
        "storm"
    }
    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.send_bus(
            Dst::Bus,
            Payload::Hello {
                name: "storm".into(),
                kind: "storm".into(),
            },
        );
        ctx.set_timer(SimDuration::from_millis(2), 1);
        ctx.set_timer(SimDuration::from_micros(50), 2);
    }
    fn on_message(&mut self, _ctx: &mut DeviceCtx<'_>, _env: Envelope) {}
    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        match token {
            1 => {
                ctx.send_bus(Dst::Bus, Payload::Heartbeat);
                ctx.set_timer(SimDuration::from_millis(2), 1);
            }
            2 => {
                ctx.send_bus(
                    Dst::Device(self.sink),
                    Payload::AppData {
                        conn: ConnId(0),
                        data: vec![0u8; 32 * 1024],
                    },
                );
                ctx.set_timer(SimDuration::from_micros(50), 2);
            }
            _ => {}
        }
    }
}

fn mean_rtt(conflate: bool) -> SimDuration {
    let mut sys = System::new(SystemConfig {
        conflate_planes: conflate,
        trace: false,
        ..SystemConfig::default()
    });
    sys.add_memctl("memctl0");
    let reflector = sys.add_device(Box::new(Reflector));
    let sink = sys.add_device(Box::new(Reflector));
    let pinger = sys.add_device(Box::new(Pinger {
        peer: reflector.id,
        sent: None,
        rtts: Vec::new(),
    }));
    sys.add_device(Box::new(BulkStorm { sink: sink.id }));
    sys.power_on();
    sys.run_for(SimDuration::from_millis(20));
    let p: &Pinger = sys.device_as(pinger).unwrap();
    assert!(p.rtts.len() > 100, "too few pings: {}", p.rtts.len());
    SimDuration::from_nanos(p.rtts.iter().map(|d| d.as_nanos()).sum::<u64>() / p.rtts.len() as u64)
}

#[test]
fn conflated_planes_slow_the_data_path() {
    let split = mean_rtt(false);
    let conflated = mean_rtt(true);
    assert!(
        conflated.as_nanos() > split.as_nanos() * 2,
        "conflation must hurt: split {split}, conflated {conflated}"
    );
}

#[test]
fn doorbells_coalesce_under_load() {
    // A flood of identical doorbells at a busy device collapses to far
    // fewer deliveries (level-triggered semantics).
    struct Flooder {
        peer: lastcpu_bus::DeviceId,
    }
    impl Device for Flooder {
        fn name(&self) -> &str {
            "flooder"
        }
        fn kind(&self) -> &str {
            "flooder"
        }
        fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
            ctx.send_bus(
                Dst::Bus,
                Payload::Hello {
                    name: "flooder".into(),
                    kind: "flooder".into(),
                },
            );
            // 50 identical doorbells, burst.
            for _ in 0..50 {
                ctx.doorbell(self.peer, ConnId(9), 0);
            }
        }
        fn on_message(&mut self, _ctx: &mut DeviceCtx<'_>, _env: Envelope) {}
        fn on_timer(&mut self, _ctx: &mut DeviceCtx<'_>, _token: u64) {}
    }
    /// A device that is always busy when messages arrive.
    struct SlowDevice {
        pub doorbells_seen: u32,
    }
    impl Device for SlowDevice {
        fn name(&self) -> &str {
            "slow"
        }
        fn kind(&self) -> &str {
            "slow"
        }
        fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
            ctx.send_bus(
                Dst::Bus,
                Payload::Hello {
                    name: "slow".into(),
                    kind: "slow".into(),
                },
            );
        }
        fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
            if let Payload::Doorbell { .. } = env.payload {
                self.doorbells_seen += 1;
                ctx.busy(SimDuration::from_micros(100)); // slow handler
            }
        }
        fn on_timer(&mut self, _ctx: &mut DeviceCtx<'_>, _token: u64) {}
    }
    let mut sys = System::new(SystemConfig::default());
    sys.add_memctl("memctl0");
    let slow = sys.add_device(Box::new(SlowDevice { doorbells_seen: 0 }));
    sys.add_device(Box::new(Flooder { peer: slow.id }));
    sys.power_on();
    sys.run_for(SimDuration::from_millis(50));
    let s: &SlowDevice = sys.device_as(slow).unwrap();
    assert!(s.doorbells_seen >= 1);
    assert!(
        s.doorbells_seen < 50,
        "identical doorbells should coalesce, saw {}",
        s.doorbells_seen
    );
    assert!(sys.stats().counter("system.doorbells_coalesced") > 0);
}
