//! Rack-scale end-to-end tests: the fabric co-simulation driving a sharded,
//! replicated CPU-less KVS (the machinery behind experiment E10).
//!
//! Every machine in the rack is a full §3 deployment (smart NIC, smart SSD
//! and memory controller, no CPU) plus a [`ShardRouterHost`] that discovers
//! the rack through the fabric's in-band directory and shards client
//! requests over every `smart-nic` endpoint with R-way replication.
//!
//! [`ShardRouterHost`]: lastcpu_kvs::ShardRouterHost

use lastcpu_fabric::{FabricConfig, TopoKind, TopologyConfig};
use lastcpu_kvs::client::{KvsClientHost, WorkloadConfig};
use lastcpu_kvs::{build_rack_kvs_with_policy, RackSetup, RetryPolicy};
use lastcpu_net::PortId;
use lastcpu_sim::{export, FaultKind, FaultPlan, SimDuration, SimTime};

/// A [`RackSetup`] with one closed-loop client per machine aimed at the
/// *local* shard router.
struct Rack {
    setup: RackSetup,
    client_ports: Vec<PortId>,
}

fn build_rack(machines: usize, replication: usize, seed: u64, workload: &WorkloadConfig) -> Rack {
    build_rack_policy(
        machines,
        replication,
        seed,
        workload,
        RetryPolicy::default(),
    )
}

fn build_rack_policy(
    machines: usize,
    replication: usize,
    seed: u64,
    workload: &WorkloadConfig,
    policy: RetryPolicy,
) -> Rack {
    build_rack_cfg(
        FabricConfig::default(),
        machines,
        replication,
        seed,
        false,
        workload,
        policy,
    )
}

fn build_rack_cfg(
    cfg: FabricConfig,
    machines: usize,
    replication: usize,
    seed: u64,
    trace: bool,
    workload: &WorkloadConfig,
    policy: RetryPolicy,
) -> Rack {
    let mut setup = build_rack_kvs_with_policy(
        cfg,
        machines,
        replication,
        lastcpu_core::SystemConfig {
            seed,
            trace,
            ..lastcpu_core::SystemConfig::default()
        },
        policy,
    );
    let mut client_ports = Vec::new();
    for i in 0..machines {
        let m = setup.machines[i];
        let router_port = setup.router_ports[i];
        let client_port = setup
            .fabric
            .machine_mut(m)
            .add_host(Box::new(KvsClientHost::new(
                router_port,
                WorkloadConfig {
                    stats_prefix: format!("c{i}"),
                    ..workload.clone()
                },
            )));
        client_ports.push(client_port);
    }
    Rack {
        setup,
        client_ports,
    }
}

impl Rack {
    fn len(&self) -> usize {
        self.setup.machines.len()
    }

    fn client(&self, i: usize) -> &KvsClientHost {
        self.setup
            .fabric
            .machine(self.setup.machines[i])
            .host_as(self.client_ports[i])
            .expect("client present")
    }

    /// Runs in 10 ms slices until every client finishes or `cap` elapses.
    fn run_to_completion(&mut self, cap: SimDuration) {
        let deadline = self.setup.fabric.now() + cap;
        while self.setup.fabric.now() < deadline {
            self.setup.fabric.run_for(SimDuration::from_millis(10));
            if self.all_done() {
                break;
            }
        }
    }

    fn all_done(&self) -> bool {
        (0..self.len()).all(|i| self.client(i).is_done())
    }
}

fn small_workload() -> WorkloadConfig {
    WorkloadConfig {
        keys: 40,
        theta: 0.9,
        read_fraction: 0.8,
        value_size: 64,
        outstanding: 4,
        total_ops: 200,
        preload: true,
        ..WorkloadConfig::default()
    }
}

#[test]
fn rack_serves_a_sharded_replicated_workload() {
    let mut rack = build_rack(3, 2, 0xE10, &small_workload());
    rack.setup.fabric.power_on();
    rack.run_to_completion(SimDuration::from_secs(10));

    for i in 0..3 {
        let c = rack.client(i);
        assert!(c.is_done(), "client {i} incomplete: {} ops", c.ops_done());
        assert_eq!(c.errors(), 0, "client {i} saw errors");
        let r = rack.setup.router(i);
        assert_eq!(r.endpoint_names().len(), 3, "router {i} discovered rack");
        assert!(r.stats().requests > 0 && r.stats().hits > 0);
    }
    // R = 2 over a shared 40-key space: every key lives on exactly two
    // machines, so the rack holds 80 records (the probe key is never stored).
    let total: usize = (0..3).map(|i| rack.setup.nic(i).app().key_count()).sum();
    assert_eq!(total, 80, "each key replicated on exactly R=2 machines");
    // The shards are spread: no machine holds everything, none is empty.
    for i in 0..3 {
        let n = rack.setup.nic(i).app().key_count();
        assert!(n > 0 && n < 80, "machine {i} holds {n}/80 records");
    }
    // Cross-machine traffic actually crossed the fabric.
    let fab = &rack.setup.fabric;
    assert!(fab.metrics().counter("fabric.frames_forwarded") > 0);
    assert!(fab.metrics().counter("fabric.bytes") > 0);
    // Routers pre-registered their hub metrics on their machines.
    let hub = fab.machine(rack.setup.machines[0]).stats();
    assert!(hub.counter("fabric.router.requests") > 0);
    assert!(hub.gauge("fabric.router.endpoints") == 3);
}

#[test]
fn replicated_rack_survives_machine_crash_without_losing_acked_writes() {
    // Load everything (R = 2), then kill a machine and audit: every key any
    // router acknowledged must still be held by a surviving machine.
    let wl = WorkloadConfig {
        read_fraction: 1.0, // after preload, pure GETs
        ..small_workload()
    };
    let mut rack = build_rack(3, 2, 0x51, &wl);
    rack.setup.fabric.power_on();
    rack.run_to_completion(SimDuration::from_secs(10));
    assert!(rack.all_done(), "pre-crash workload incomplete");
    assert_eq!(rack.setup.lost_acked_keys(), 0);

    let victim = rack.setup.machines[1];
    rack.setup.fabric.kill_machine(victim);
    // Let the directory sweep withdraw the machine and the routers refresh.
    rack.setup.fabric.run_for(SimDuration::from_millis(5));

    assert_eq!(
        rack.setup.lost_acked_keys(),
        0,
        "R=2 must keep every acknowledged write despite one crash"
    );
    for i in [0usize, 2] {
        assert_eq!(
            rack.setup.router(i).endpoint_names().len(),
            2,
            "router {i} saw the withdrawal"
        );
    }
    assert!(rack.setup.fabric.metrics().counter("fabric.dir.removals") >= 1);
}

#[test]
fn unreplicated_rack_loses_acked_writes_on_crash() {
    // The control: R = 1 stores each key exactly once, so killing a machine
    // loses the acked writes whose only copy it held.
    let wl = WorkloadConfig {
        read_fraction: 1.0,
        ..small_workload()
    };
    let mut rack = build_rack(3, 1, 0x51, &wl);
    rack.setup.fabric.power_on();
    rack.run_to_completion(SimDuration::from_secs(10));
    assert!(rack.all_done(), "pre-crash workload incomplete");
    let held_by_victim = rack.setup.nic(1).app().key_count();
    assert!(held_by_victim > 0, "victim holds some shard");

    rack.setup.fabric.kill_machine(rack.setup.machines[1]);
    rack.setup.fabric.run_for(SimDuration::from_millis(5));

    let lost = rack.setup.lost_acked_keys();
    assert!(
        lost > 0,
        "R=1 must lose the victim's shard ({held_by_victim} keys on it)"
    );
}

/// Full-state fingerprint of a completed rack run: every fabric counter,
/// every router stat, every machine-hub counter, client progress, and
/// per-machine key counts. Two runs with equal fingerprints took the same
/// event path.
fn run_fingerprint(seed: u64, policy: RetryPolicy) -> String {
    let mut rack = build_rack_policy(2, 2, seed, &small_workload(), policy);
    rack.setup.fabric.power_on();
    rack.run_to_completion(SimDuration::from_secs(10));
    assert!(rack.all_done(), "workload incomplete under {policy}");
    let mut fp = String::new();
    for (k, v) in rack.setup.fabric.metrics().counters() {
        fp.push_str(&format!("{k}={v};"));
    }
    for i in 0..2 {
        let s = rack.setup.router(i).stats();
        fp.push_str(&format!(
            "r{i}:{}/{}/{}/{}/{}/{}/{}/{}/{};",
            s.requests,
            s.hits,
            s.failovers,
            s.give_ups,
            s.rebalance_moves,
            s.dir_replies,
            s.dir_installs,
            s.late_acks,
            s.busy_deferrals
        ));
        fp.push_str(&format!("c{i}:{};", rack.client(i).ops_done()));
        fp.push_str(&format!("k{i}:{};", rack.setup.nic(i).app().key_count()));
        for (k, v) in rack
            .setup
            .fabric
            .machine(rack.setup.machines[i])
            .stats()
            .counters()
        {
            fp.push_str(&format!("m{i}.{k}={v};"));
        }
    }
    fp
}

#[test]
fn rack_runs_are_bit_identical() {
    let run = |seed: u64| run_fingerprint(seed, RetryPolicy::default());
    assert_eq!(run(7), run(7), "same seed, same rack, same bytes");
    assert_ne!(run(7), run(8), "different seed perturbs the run");
}

/// FNV-1a, to fold the (large) merged trace and metrics exports into a
/// fingerprint without megabyte-long assert messages.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Deep fingerprint of a rack run under `threads` fabric workers: merged
/// trace, fabric + per-machine metrics exports, pool activity, per-machine
/// key counts, client progress, and the acked-write audit. Any divergence
/// between thread counts — event reordering, a racy counter, a pool buffer
/// taken in a different order — lands in this string.
fn threads_fingerprint(seed: u64, threads: usize, crash: bool) -> String {
    let mut cfg = FabricConfig {
        threads,
        ..FabricConfig::default()
    };
    if crash {
        let mut plan = FaultPlan::new(seed ^ 0xFAB);
        plan.inject(SimTime::from_nanos(2_000_000), "m1", FaultKind::Crash);
        cfg.fault_plan = Some(plan);
    }
    let mut rack = build_rack_cfg(
        cfg,
        2,
        2,
        seed,
        true,
        &small_workload(),
        RetryPolicy::default(),
    );
    rack.setup.fabric.power_on();
    if crash {
        // The crash arm never completes the workload; a fixed virtual-time
        // horizon keeps the runs comparable instead.
        rack.setup.fabric.run_for(SimDuration::from_secs(2));
    } else {
        rack.run_to_completion(SimDuration::from_secs(10));
        assert!(rack.all_done(), "workload incomplete at threads={threads}");
    }

    let fab = &rack.setup.fabric;
    let mut fp = String::new();
    fp.push_str(&format!(
        "trace={:016x};",
        fnv1a(&export::trace_jsonl(&fab.merged_trace()))
    ));
    fp.push_str(&format!(
        "fabmet={:016x};",
        fnv1a(&export::metrics_json(fab.metrics()))
    ));
    fp.push_str(&format!("now={};", fab.now().as_nanos()));
    for i in 0..2 {
        let m = rack.setup.machines[i];
        fp.push_str(&format!(
            "m{i}.met={:016x};",
            fnv1a(&export::metrics_json(fab.machine(m).stats()))
        ));
        fp.push_str(&format!("m{i}.pool={:?};", fab.machine(m).pool().stats()));
        fp.push_str(&format!("k{i}={};", rack.setup.nic(i).app().key_count()));
        fp.push_str(&format!("c{i}={};", rack.client(i).ops_done()));
    }
    fp.push_str(&format!("lost={};", rack.setup.lost_acked_keys()));
    fp
}

#[test]
fn thread_count_is_invisible_to_rack_results() {
    // The E13 determinism contract: one thread and N threads run the SAME
    // windowed schedule, so every observable — merged trace, metrics,
    // pool activity, final KVS state — is bit-identical from a seed.
    for seed in [7u64, 0xE13, 1984] {
        let base = threads_fingerprint(seed, 1, false);
        for threads in [2usize, 4] {
            assert_eq!(
                base,
                threads_fingerprint(seed, threads, false),
                "seed {seed:#x}: threads={threads} diverged from threads=1"
            );
        }
    }
    assert_ne!(
        threads_fingerprint(7, 1, false),
        threads_fingerprint(8, 1, false),
        "fingerprint insensitive to seed — it proves nothing"
    );
}

#[test]
fn thread_count_is_invisible_under_crash_faults() {
    // Faults are fabric control points: the window scheduler must fire them
    // at a globally consistent instant regardless of partitioning, so the
    // crash arm replays bit-identically across thread counts too.
    for seed in [7u64, 0xE13, 1984] {
        let base = threads_fingerprint(seed, 1, true);
        for threads in [2usize, 4] {
            assert_eq!(
                base,
                threads_fingerprint(seed, threads, true),
                "seed {seed:#x}: crash arm diverged at threads={threads}"
            );
        }
    }
}

#[test]
fn every_retry_policy_replays_bit_identically() {
    // Property sweep over the policy x seed grid: the congestion machinery
    // (EWMA timeouts, p2c selection, Busy deferral) must stay a pure
    // function of the event history — same seed, same arm, same bytes.
    // Different seeds must still perturb every arm (the fingerprint is not
    // trivially constant).
    for policy in RetryPolicy::ALL {
        for seed in [7u64, 0xE10, 1984] {
            assert_eq!(
                run_fingerprint(seed, policy),
                run_fingerprint(seed, policy),
                "policy {policy} seed {seed:#x} diverged on replay"
            );
        }
        assert_ne!(
            run_fingerprint(7, policy),
            run_fingerprint(8, policy),
            "policy {policy} fingerprint insensitive to seed"
        );
    }
}

/// Compact fingerprint of a 64-machine leaf-spine run (8 leaves of 8,
/// ECMP across 8 spines): fabric metrics, final clock, per-machine KVS
/// state, client progress, and the acked-write audit. Tracing stays off —
/// at this scale the merged trace would dominate the (debug-build) test.
fn leaf_spine_fingerprint(threads: usize) -> String {
    const MACHINES: usize = 64;
    let cfg = FabricConfig {
        threads,
        topology: TopologyConfig {
            kind: TopoKind::LeafSpine { leaf_size: 8 },
            oversub: 1,
        },
        ..FabricConfig::default()
    };
    // Tiny per-client workload: 64 clients already put 768 ops and their
    // R=2 replication traffic through every tier of the tree.
    let wl = WorkloadConfig {
        keys: 48,
        total_ops: 12,
        outstanding: 2,
        ..small_workload()
    };
    let mut rack = build_rack_cfg(cfg, MACHINES, 2, 0xE10, false, &wl, RetryPolicy::default());
    rack.setup.fabric.power_on();
    rack.run_to_completion(SimDuration::from_secs(30));
    assert!(
        rack.all_done(),
        "64-machine leaf-spine workload incomplete at threads={threads}"
    );
    let fab = &rack.setup.fabric;
    let mut fp = format!(
        "now={};fabmet={:016x};",
        fab.now().as_nanos(),
        fnv1a(&export::metrics_json(fab.metrics()))
    );
    for i in 0..MACHINES {
        fp.push_str(&format!(
            "k{i}={};c{i}={};",
            rack.setup.nic(i).app().key_count(),
            rack.client(i).ops_done()
        ));
    }
    fp.push_str(&format!("lost={};", rack.setup.lost_acked_keys()));
    fp
}

#[test]
fn leaf_spine_rack_replays_bit_identically_across_threads() {
    // The ISSUE-10 scale-out contract: a 64-machine rack on a real
    // leaf-spine tree — per-link queuing, ECMP path diversity and all —
    // must stay inside the windowed determinism envelope, so one worker
    // and four workers produce the same bytes.
    let base = leaf_spine_fingerprint(1);
    assert_eq!(
        base,
        leaf_spine_fingerprint(4),
        "threads=4 diverged from threads=1 on 64-machine leaf-spine"
    );
}
