//! Property tests for the fabric topology layer (docs/TOPOLOGY.md).
//!
//! The fabric's determinism and failover contracts lean on four topology
//! invariants:
//!
//! 1. **Connectivity**: every `(src, dst)` machine pair owns a precomputed
//!    path of 2–6 links whose transit delivers strictly after entry, and
//!    whose stage attribution sums exactly to the crossing time (the E12
//!    analyzer's accounting identity).
//! 2. **Seed stability**: ECMP path choice is a pure function of
//!    `(src, dst, seed)` — rebuilding the same topology from the same seed
//!    reproduces every path, which is what keeps replay bit-identical.
//! 3. **Balance**: the ECMP hash spreads pairs across the redundant
//!    middle stage (spines; cores) within a 3x band — no spine or core is
//!    starved or grossly overloaded by the deterministic choice.
//! 4. **Bisection**: a k-ary fat-tree exposes the analytic k^3/8
//!    agg-to-core links out of either half of the pods, so the full-rack
//!    bandwidth claims in BENCH_e10.json are structural, not incidental.

use std::collections::BTreeMap;

use lastcpu_fabric::{TopoKind, Topology, TopologyConfig};
use lastcpu_net::NetCostModel;
use lastcpu_sim::SimTime;
use proptest::prelude::*;

fn cost() -> NetCostModel {
    NetCostModel::default()
}

fn build(kind: TopoKind, oversub: u64, machines: usize, seed: u64) -> Topology {
    let cfg = TopologyConfig { kind, oversub };
    Topology::build(&cfg, &cost(), machines, seed)
}

/// All three kinds, weighted evenly; fat-tree auto-sizes (`k = 0`).
fn any_kind() -> impl Strategy<Value = TopoKind> {
    (0u8..3, 1u32..=8).prop_map(|(sel, leaf)| match sel {
        0 => TopoKind::Flat,
        1 => TopoKind::LeafSpine { leaf_size: leaf },
        _ => TopoKind::FatTree { k: 0 },
    })
}

/// Name of the middle-stage element a cross-traffic path rides: the spine
/// (`leaf{l}->spine{s}` hop) or the core (`a{p}.{j}->c{c}` hop).
fn middle_hop_name(topo: &Topology, src: usize, dst: usize) -> Option<String> {
    for &li in topo.path(src, dst) {
        let name = topo.link(li).name;
        if let Some(rest) = name.split("->").nth(1) {
            if rest.starts_with("spine") || rest.starts_with('c') {
                return Some(rest.to_string());
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every machine pair — including `(m, m)`, which the fabric never
    /// forwards but the path table still covers — has a 2–6 link path, and
    /// a transit over it delivers after entry with the three-stage split
    /// summing exactly to the crossing.
    fn every_pair_has_a_priced_path(
        kind in any_kind(),
        oversub in 1u64..=4,
        machines in 1usize..=66,
        seed in 0u64..1_000_000,
    ) {
        let mut topo = build(kind, oversub, machines, seed);
        for s in 0..machines {
            for d in 0..machines {
                let len = topo.path(s, d).len();
                prop_assert!(
                    (2..=6).contains(&len),
                    "{kind:?} pair ({s},{d}): path of {len} links"
                );
                let at = SimTime::from_nanos(1_000);
                let t = topo.transit(s, d, 128, at);
                prop_assert!(t.deliver > at, "transit must cost time");
                prop_assert_eq!(
                    t.uplink_ns + t.spine_ns + t.downlink_ns,
                    (t.deliver - at).as_nanos(),
                    "stage split must sum to the crossing"
                );
            }
        }
    }

    /// ECMP is seed-stable: the same `(kind, machines, seed)` rebuild picks
    /// the identical path for every pair.
    fn ecmp_paths_are_seed_stable(
        kind in any_kind(),
        machines in 2usize..=66,
        seed in 0u64..1_000_000,
    ) {
        let a = build(kind, 1, machines, seed);
        let b = build(kind, 1, machines, seed);
        for s in 0..machines {
            for d in 0..machines {
                prop_assert_eq!(
                    a.path(s, d),
                    b.path(s, d),
                    "pair ({s},{d}) chose different paths on rebuild"
                );
            }
        }
    }
}

/// Counts how many cross-traffic pairs ride each middle-stage element and
/// asserts every element is used and the spread stays within `band`x.
fn assert_balanced(topo: &Topology, expected_elems: usize, band: u64) {
    let machines = topo.num_machines();
    let mut per_elem: BTreeMap<String, u64> = BTreeMap::new();
    for s in 0..machines {
        for d in 0..machines {
            if let Some(elem) = middle_hop_name(topo, s, d) {
                *per_elem.entry(elem).or_insert(0) += 1;
            }
        }
    }
    assert_eq!(
        per_elem.len(),
        expected_elems,
        "every middle-stage element must carry traffic: {per_elem:?}"
    );
    let max = *per_elem.values().max().unwrap();
    let min = *per_elem.values().min().unwrap();
    assert!(
        max <= band * min,
        "ECMP imbalance beyond {band}x: min {min}, max {max} ({per_elem:?})"
    );
}

#[test]
fn leaf_spine_ecmp_balances_within_3x() {
    // 64 machines in 8 leaves of 8; oversub 1 keeps 8 spines. The 3584
    // cross-leaf pairs should land ~448 per spine; a 3x band is loose
    // enough for a hash yet tight enough to catch a degenerate mix.
    for seed in [7u64, 0xE10, 1984] {
        let topo = build(TopoKind::LeafSpine { leaf_size: 8 }, 1, 64, seed);
        assert_balanced(&topo, 8, 3);
    }
}

#[test]
fn fat_tree_ecmp_balances_within_3x() {
    // 128 machines auto-size to k = 8: 16 cores, 6912 cross-pod pairs,
    // ~432 per core.
    for seed in [7u64, 0xE10, 1984] {
        let topo = build(TopoKind::FatTree { k: 0 }, 1, 128, seed);
        assert_eq!(topo.fat_tree_k(), Some(8));
        assert_balanced(&topo, 16, 3);
    }
}

#[test]
fn different_seeds_perturb_ecmp_choices() {
    // Not a tautology check: with 3584 cross-leaf pairs over 8 spines, two
    // seeds agreeing on every pair would mean the seed never reaches the
    // hash. (Fixed seeds keep this deterministic.)
    let a = build(TopoKind::LeafSpine { leaf_size: 8 }, 1, 64, 7);
    let b = build(TopoKind::LeafSpine { leaf_size: 8 }, 1, 64, 8);
    let diverged = (0..64)
        .flat_map(|s| (0..64).map(move |d| (s, d)))
        .any(|(s, d)| a.path(s, d) != b.path(s, d));
    assert!(diverged, "seed is dead weight in the ECMP hash");
}

#[test]
fn fat_tree_bisection_matches_analytic_value() {
    // Cutting a k-ary fat-tree between pod halves severs exactly the
    // agg->core links rising from k/2 pods: (k/2 pods) x (k/2 aggs) x
    // (k/2 uplinks) = k^3/8. Count them off the built link list by name
    // ("a{p}.{j}->c{c}" with p < k/2).
    for k in [4u32, 6, 8] {
        let hosts = (k * k * k / 4) as usize;
        let topo = build(TopoKind::FatTree { k }, 1, hosts, 7);
        assert_eq!(topo.fat_tree_k(), Some(k));
        let cut = topo
            .links()
            .filter(|l| {
                let Some(rest) = l.name.strip_prefix('a') else {
                    return false;
                };
                let Some((pod, tail)) = rest.split_once('.') else {
                    return false;
                };
                tail.contains("->c") && pod.parse::<u32>().is_ok_and(|p| p < k / 2)
            })
            .count();
        assert_eq!(
            cut as u32,
            k * k * k / 8,
            "k={k}: bisection links off by {}",
            cut as i64 - (k * k * k / 8) as i64
        );
    }
}
