//! Integration: the SSD's secondary services — the `fs` control service
//! (create/list/delete) and the `loader` service (§4 Access Control) —
//! exercised over the live bus by a scripted client device.

use lastcpu_bus::{Envelope, ServiceId, Status, Token};
use lastcpu_core::devices::auth;
use lastcpu_core::devices::device::{Device, DeviceCtx};
use lastcpu_core::devices::monitor::{AuthMode, Monitor, MonitorEvent};
use lastcpu_core::devices::ssd::{FsOp, SmartSsd, SsdConfig, FS_SERVICE, LOADER_SERVICE};
use lastcpu_core::{System, SystemConfig};
use lastcpu_sim::SimDuration;
use lastcpu_tests::small_fs;

/// A client that runs a scripted sequence of opens against the SSD.
struct ScriptClient {
    name: String,
    monitor: Monitor,
    ssd: lastcpu_bus::DeviceId,
    script: Vec<(ServiceId, Token, Vec<u8>)>,
    next: usize,
    op: u64,
    pub results: Vec<(Status, Vec<u8>)>,
}

impl ScriptClient {
    fn new(
        name: &str,
        ssd: lastcpu_bus::DeviceId,
        script: Vec<(ServiceId, Token, Vec<u8>)>,
    ) -> Self {
        ScriptClient {
            name: name.into(),
            monitor: Monitor::new(),
            ssd,
            script,
            next: 0,
            op: 0,
            results: Vec::new(),
        }
    }

    fn is_done(&self) -> bool {
        self.results.len() >= self.script.len()
    }

    fn kick(&mut self, ctx: &mut DeviceCtx<'_>) {
        if self.next >= self.script.len() {
            return;
        }
        let (svc, token, params) = self.script[self.next].clone();
        self.next += 1;
        self.op = self.monitor.open(ctx, self.ssd, svc, token, params);
    }
}

impl Device for ScriptClient {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "script-client"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        let name = self.name.clone();
        self.monitor.start(ctx, &name, "script-client");
        self.monitor
            .enable_heartbeat(ctx, SimDuration::from_millis(2));
    }

    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        for ev in self.monitor.handle(ctx, &env) {
            match ev {
                MonitorEvent::Registered => {
                    // Let the SSD boot.
                    ctx.set_timer(SimDuration::from_micros(200), 2);
                }
                MonitorEvent::OpenDone { op, result, .. } if op == self.op => {
                    match result {
                        Ok((_, _, params)) => self.results.push((Status::Ok, params)),
                        Err(status) => self.results.push((status, vec![])),
                    }
                    self.kick(ctx);
                }
                _ => {}
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        if self.monitor.on_timer(ctx, token).is_some() {
            return;
        }
        if token == 2 && self.results.is_empty() && self.next == 0 {
            self.kick(ctx);
        }
    }
}

fn build(ssd_config: SsdConfig) -> (System, lastcpu_core::DeviceHandle) {
    let mut sys = System::new(SystemConfig::default());
    sys.add_memctl("memctl0");
    let mut fs = small_fs();
    fs.create("/seed.txt").unwrap();
    let ssd = sys.add_device(Box::new(SmartSsd::new("ssd0", fs, ssd_config)));
    (sys, ssd)
}

#[test]
fn fs_service_create_list_delete() {
    let (mut sys, ssd) = build(SsdConfig::default());
    let client = sys.add_device(Box::new(ScriptClient::new(
        "client0",
        ssd.id,
        vec![
            (
                FS_SERVICE,
                Token::NONE,
                FsOp::Create {
                    path: "/a.db".into(),
                }
                .encode(),
            ),
            (FS_SERVICE, Token::NONE, FsOp::List.encode()),
            (
                FS_SERVICE,
                Token::NONE,
                FsOp::Delete {
                    path: "/a.db".into(),
                }
                .encode(),
            ),
            (FS_SERVICE, Token::NONE, FsOp::List.encode()),
            // Deleting again: NotFound.
            (
                FS_SERVICE,
                Token::NONE,
                FsOp::Delete {
                    path: "/a.db".into(),
                }
                .encode(),
            ),
        ],
    )));
    sys.power_on();
    sys.run_for(SimDuration::from_millis(50));
    let c: &ScriptClient = sys.device_as(client).unwrap();
    assert!(
        c.is_done(),
        "script incomplete: {} results",
        c.results.len()
    );
    assert_eq!(c.results[0].0, Status::Ok, "create");
    assert_eq!(c.results[1].0, Status::Ok, "list");
    let listing = String::from_utf8_lossy(&c.results[1].1).to_string();
    assert!(
        listing.contains("/a.db") && listing.contains("/seed.txt"),
        "{listing}"
    );
    assert_eq!(c.results[2].0, Status::Ok, "delete");
    let listing = String::from_utf8_lossy(&c.results[3].1).to_string();
    assert!(!listing.contains("/a.db"), "{listing}");
    assert_eq!(c.results[4].0, Status::NotFound, "double delete");
}

#[test]
fn loader_requires_sealed_token() {
    let secret = 0xD00D;
    let (mut sys, ssd) = build(SsdConfig {
        loader_auth: AuthMode::Sealed { secret },
        ..SsdConfig::default()
    });
    let good = auth::seal(secret, auth::principal_id("admin"));
    let forged = Token(good.0 ^ 1);
    let image = lastcpu_core::devices::ssd::encode_loader_params("fw-v2.bin", b"BINARY IMAGE");
    let client = sys.add_device(Box::new(ScriptClient::new(
        "client0",
        ssd.id,
        vec![
            (LOADER_SERVICE, forged, image.clone()), // denied
            (LOADER_SERVICE, good, image),           // accepted
            // The image landed as a file readable through fs list.
            (FS_SERVICE, Token::NONE, FsOp::List.encode()),
        ],
    )));
    sys.power_on();
    sys.run_for(SimDuration::from_millis(50));
    let c: &ScriptClient = sys.device_as(client).unwrap();
    assert!(c.is_done());
    assert_eq!(
        c.results[0].0,
        Status::Denied,
        "forged token must be denied"
    );
    assert_eq!(c.results[1].0, Status::Ok, "sealed token accepted");
    let listing = String::from_utf8_lossy(&c.results[2].1).to_string();
    assert!(listing.contains("/boot/fw-v2.bin"), "{listing}");
    let ssd_dev: &SmartSsd = sys.device_as(ssd).unwrap();
    assert_eq!(ssd_dev.stats().images_loaded, 1);
}

#[test]
fn file_service_open_denied_with_wrong_auth() {
    let (mut sys, ssd) = build(SsdConfig {
        exports: vec!["/seed.txt".into()],
        file_auth: AuthMode::Sealed { secret: 0xAAAA },
        ..SsdConfig::default()
    });
    let mut params = lastcpu_bus::wire::WireWriter::new();
    params.u32(55); // pasid
    let client = sys.add_device(Box::new(ScriptClient::new(
        "client0",
        ssd.id,
        vec![(ServiceId(100), Token::NONE, params.finish())],
    )));
    sys.power_on();
    sys.run_for(SimDuration::from_millis(50));
    let c: &ScriptClient = sys.device_as(client).unwrap();
    assert!(c.is_done());
    assert_eq!(c.results[0].0, Status::Denied);
}
