//! Differential test for the zero-alloc delivery path (E13).
//!
//! `KvsServer::try_fast_get` answers cache-hit GETs without materializing
//! an owned request or an intermediate response `Vec`. That optimization
//! must be invisible: with the fast path force-disabled every request runs
//! the classic enqueue/pump path, and the client must observe *byte-
//! identical* responses at *identical* virtual times. This test holds the
//! two paths to that contract.

use lastcpu_core::devices::nic::SmartNic;
use lastcpu_core::{HostCtx, NetHost, SystemConfig};
use lastcpu_kvs::proto::{encode_get_into, encode_put_into, KvsResponse, KvsStatus};
use lastcpu_kvs::server::{ServerConfig, ServerStats};
use lastcpu_kvs::{build_cpuless_kvs, KvsNicApp};
use lastcpu_net::{Frame, PortId};
use lastcpu_sim::SimDuration;

/// One scripted request: `(key, Some(value))` is a PUT, `(key, None)` a GET.
type Step = (&'static [u8], Option<&'static [u8]>);

/// A deliberately path-sensitive script: GETs that warm the value cache
/// (the first read of a key fills it; PUTs invalidate), repeated reads
/// that are fast-path eligible, a miss, and a rewrite followed by re-reads
/// so a stale fast-path cache would be caught as a value mismatch.
const SCRIPT: &[Step] = &[
    (b"alpha", Some(&[0x11; 64])),
    (b"beta", Some(&[0x22; 96])),
    (b"alpha", None), // miss → fills cache
    (b"beta", None),  // miss → fills cache
    (b"alpha", None), // cache hit (fast-path eligible)
    (b"beta", None),  // cache hit
    (b"alpha", None), // cache hit
    (b"missing", None),
    (b"alpha", Some(&[0x33; 64])), // invalidates the cached 0x11 value
    (b"alpha", None),              // miss → refills with 0x33
    (b"alpha", None),              // cache hit must serve 0x33
];

/// Closed-loop scripted client that records `(virtual-ns, payload-bytes)`
/// for every response frame it receives.
struct ScriptClient {
    server: PortId,
    step: usize,
    log: Vec<(u64, Vec<u8>)>,
}

impl ScriptClient {
    fn new(server: PortId) -> Self {
        ScriptClient {
            server,
            step: 0,
            log: Vec::new(),
        }
    }

    fn issue(&mut self, ctx: &mut HostCtx<'_>) {
        let Some(&(key, value)) = SCRIPT.get(self.step) else {
            return;
        };
        let id = self.step as u64 + 1;
        let mut buf = ctx.take_buf();
        match value {
            Some(v) => encode_put_into(id, key, v, buf.vec_mut()),
            None => encode_get_into(id, key, buf.vec_mut()),
        }
        ctx.net_tx(self.server, buf);
    }

    fn done(&self) -> bool {
        self.step >= SCRIPT.len()
    }
}

impl NetHost for ScriptClient {
    fn name(&self) -> &str {
        "script-client"
    }

    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.issue(ctx);
    }

    fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: Frame) {
        let resp = KvsResponse::decode(&frame.payload).expect("KVS response");
        self.log.push((ctx.now.as_nanos(), frame.payload.to_vec()));
        match resp.status {
            // Boot-time warm-up (or shed load): retry the same step. Both
            // runs replay the same warm-up, so the logs stay comparable.
            KvsStatus::Busy | KvsStatus::Unavailable => self.issue(ctx),
            _ => {
                self.step += 1;
                self.issue(ctx);
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut HostCtx<'_>, _token: u64) {}
}

/// Runs the script against a fresh single-machine KVS and returns the
/// client's response log plus the server counters.
fn run_script(seed: u64, fast_path: bool) -> (Vec<(u64, Vec<u8>)>, ServerStats) {
    let mut setup = build_cpuless_kvs(
        SystemConfig {
            seed,
            ..SystemConfig::default()
        },
        Default::default(),
        ServerConfig {
            // The fast path only answers from the NIC-local value cache,
            // which defaults off.
            cache_entries: 16,
            ..ServerConfig::default()
        },
    );
    setup
        .system
        .device_as_mut::<SmartNic<KvsNicApp>>(setup.frontend)
        .expect("frontend NIC")
        .app_mut()
        .set_fast_path(fast_path);
    let port = setup
        .system
        .add_host(Box::new(ScriptClient::new(setup.kvs_port)));
    setup.system.power_on();
    setup.system.run_for(SimDuration::from_millis(50));

    let client: &ScriptClient = setup.system.host_as(port).expect("client");
    assert!(client.done(), "script stalled at step {}", client.step);
    let nic: &SmartNic<KvsNicApp> = setup
        .system
        .device_as(setup.frontend)
        .expect("frontend NIC");
    (client.log.clone(), nic.app().stats())
}

#[test]
fn fast_path_and_slow_path_are_byte_identical() {
    for seed in [1u64, 42, 0xE13] {
        let (fast_log, fast_stats) = run_script(seed, true);
        let (slow_log, slow_stats) = run_script(seed, false);

        // The optimization fired on the fast run and never on the control.
        assert!(
            fast_stats.fast_gets > 0,
            "seed {seed}: no GET took the fast path — the differential ran \
             slow-vs-slow and proves nothing"
        );
        assert_eq!(slow_stats.fast_gets, 0, "seed {seed}: disabled path fired");

        // Same responses, same bytes, same virtual timestamps.
        assert_eq!(
            fast_log, slow_log,
            "seed {seed}: fast path changed observable behavior"
        );

        // Server-side accounting agrees on everything but the path marker.
        let neutral = |mut s: ServerStats| {
            s.fast_gets = 0;
            s
        };
        assert_eq!(
            neutral(fast_stats),
            neutral(slow_stats),
            "seed {seed}: fast path perturbed server counters"
        );
    }
}

#[test]
fn script_exercises_hits_and_misses() {
    let (log, stats) = run_script(7, true);
    // Every scripted op eventually got a terminal answer.
    let terminal = log
        .iter()
        .filter(|(_, p)| {
            let r = KvsResponse::decode(p).unwrap();
            !matches!(r.status, KvsStatus::Busy | KvsStatus::Unavailable)
        })
        .count();
    assert_eq!(terminal, SCRIPT.len());
    // The miss really missed and the re-read saw the rewritten value.
    let last = KvsResponse::decode(&log.last().unwrap().1).unwrap();
    assert_eq!(last.status, KvsStatus::Ok);
    assert_eq!(last.value, vec![0x33u8; 64]);
    assert!(stats.misses >= 1, "GET missing must count a miss");
    assert!(stats.cache_hits >= 3);
}
