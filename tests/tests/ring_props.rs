//! Property tests for the fabric's consistent-hash ring (DESIGN.md §10).
//!
//! The shard router leans on three ring invariants:
//!
//! 1. **Determinism**: placement is a pure function of the membership set —
//!    insertion order, removals-then-reinserts, and the process's hash-map
//!    iteration order must not perturb it (two routers that agree on the
//!    directory must agree on every key).
//! 2. **Balance**: with enough virtual nodes no member owns a grossly
//!    outsized share of a key space.
//! 3. **Minimal disruption**: a join or leave only moves the keys it has
//!    to — on the order of K/N, never a wholesale reshuffle.

use std::collections::BTreeMap;

use lastcpu_fabric::HashRing;
use proptest::prelude::*;

const VNODES: u32 = 64;

/// Membership drawn from a small closed universe (a 16-bit occupancy
/// mask, padded so there are always at least two members).
fn member_names() -> impl Strategy<Value = Vec<String>> {
    (1u16..=u16::MAX).prop_map(|mask| {
        let mut members: Vec<String> = (0..16)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| format!("m{i}"))
            .collect();
        if members.len() < 2 {
            members.push("m16".to_string());
        }
        members
    })
}

fn keys(n: usize) -> Vec<Vec<u8>> {
    // Sequential keys on purpose: the densest-clustering input a client
    // generates, and exactly the shape that exposed the need for an
    // avalanche finalizer on top of FNV-1a.
    (0..n).map(|i| format!("key{i:08}").into_bytes()).collect()
}

fn ring_of(members: &[String]) -> HashRing {
    let mut ring = HashRing::new(VNODES);
    for m in members {
        ring.insert(m);
    }
    ring
}

fn placement(ring: &HashRing, keys: &[Vec<u8>], r: usize) -> Vec<Vec<String>> {
    keys.iter()
        .map(|k| ring.replicas(k, r).into_iter().map(String::from).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Placement depends only on the membership *set*: any insertion order,
    /// including one that detours through extra members later removed,
    /// yields bit-identical replica lists.
    fn placement_is_membership_deterministic(
        members in member_names(),
        perm_seed in 0u64..1000,
        r in 1usize..=3,
    ) {
        let base = ring_of(&members);

        // A cheap seeded Fisher-Yates permutation of the insert order.
        let mut shuffled = members.clone();
        let mut s = perm_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for i in (1..shuffled.len()).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            shuffled.swap(i, (s as usize) % (i + 1));
        }
        let mut detour = HashRing::new(VNODES);
        detour.insert("impostor");
        for m in &shuffled {
            detour.insert(m);
        }
        detour.remove("impostor");

        let ks = keys(128);
        prop_assert_eq!(placement(&base, &ks, r), placement(&detour, &ks, r));
        prop_assert_eq!(base.nodes(), detour.nodes());
    }

    /// With 64 vnodes each member's share of a sequential key space stays
    /// within a loose constant factor of fair: no member is starved, none
    /// owns more than 3x its fair share.
    fn ownership_is_balanced_within_bound(members in member_names()) {
        let ring = ring_of(&members);
        let ks = keys(2048);
        let mut owned: BTreeMap<String, usize> =
            members.iter().map(|m| (m.clone(), 0)).collect();
        for k in &ks {
            *owned.get_mut(ring.primary(k).unwrap()).unwrap() += 1;
        }
        let fair = ks.len() as f64 / members.len() as f64;
        for (m, n) in owned {
            prop_assert!(
                (n as f64) < 3.0 * fair,
                "{m} owns {n}/{} keys ({}x fair share)",
                ks.len(),
                n as f64 / fair
            );
            prop_assert!(n > 0, "{m} owns nothing out of {} keys", ks.len());
        }
    }

    /// A single join or leave relocates only the keys consistent hashing
    /// says it must: about K/N of the primaries, bounded here by
    /// 2.5 * K/(N+1) + slack; every key that does move on a join moves TO
    /// the joiner, and on a leave moves OFF the leaver.
    fn join_and_leave_move_few_keys(
        members in member_names(),
        joiner in 100u8..120,
    ) {
        let joiner = format!("m{joiner}");
        let ks = keys(2048);
        let before = ring_of(&members);
        let mut after = ring_of(&members);
        after.insert(&joiner);

        let n_after = members.len() + 1;
        let budget = (2.5 * ks.len() as f64 / n_after as f64) as usize + 16;

        // Join: moved keys all land on the joiner.
        let mut moved = 0usize;
        for k in &ks {
            let a = before.primary(k).unwrap();
            let b = after.primary(k).unwrap();
            if a != b {
                moved += 1;
                prop_assert_eq!(b, joiner.as_str(), "key moved somewhere other than the joiner");
            }
        }
        prop_assert!(
            moved <= budget,
            "join moved {moved}/{} keys, budget {budget} (N={n_after})",
            ks.len()
        );

        // Leave is the mirror image: removing the joiner restores the old
        // placement exactly, so only its keys move back.
        let mut restored = after.clone();
        restored.remove(&joiner);
        prop_assert_eq!(placement(&restored, &ks, 2), placement(&before, &ks, 2));
    }
}
