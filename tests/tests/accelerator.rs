//! Integration: the FPGA-style accelerator over the live bus — spatial
//! region allocation, doorbell-driven jobs, and release on disconnect.

use lastcpu_bus::{ConnId, DeviceId, Envelope, Status, Token};
use lastcpu_core::devices::accel::{
    encode_fabric_params, Accelerator, DOORBELL_JOB_DONE, FABRIC_SERVICE,
};
use lastcpu_core::devices::device::{Device, DeviceCtx};
use lastcpu_core::devices::monitor::{Monitor, MonitorEvent};
use lastcpu_core::{System, SystemConfig};
use lastcpu_sim::{SimDuration, SimTime};

/// Client: opens a fabric context, submits jobs, records completion times.
struct FabricClient {
    name: String,
    monitor: Monitor,
    accel: DeviceId,
    regions: u16,
    jobs: u32,
    op: u64,
    conn: Option<ConnId>,
    awaiting_open: bool,
    submitted_at: Option<SimTime>,
    pub denied: bool,
    pub job_times: Vec<SimDuration>,
}

impl FabricClient {
    fn new(name: &str, accel: DeviceId, regions: u16, jobs: u32) -> Self {
        FabricClient {
            name: name.into(),
            monitor: Monitor::new(),
            accel,
            regions,
            jobs,
            op: 0,
            conn: None,
            awaiting_open: false,
            submitted_at: None,
            denied: false,
            job_times: Vec::new(),
        }
    }

    fn is_done(&self) -> bool {
        self.denied || self.job_times.len() as u32 >= self.jobs
    }

    fn submit(&mut self, ctx: &mut DeviceCtx<'_>) {
        if let Some(conn) = self.conn {
            self.submitted_at = Some(ctx.now + ctx.elapsed());
            ctx.doorbell(self.accel, conn, 100); // 100 work units
        }
    }
}

impl Device for FabricClient {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "fabric-client"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        let name = self.name.clone();
        self.monitor.start(ctx, &name, "fabric-client");
        self.monitor
            .enable_heartbeat(ctx, SimDuration::from_millis(2));
    }

    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        for ev in self.monitor.handle(ctx, &env) {
            match ev {
                MonitorEvent::Registered => {
                    ctx.set_timer(SimDuration::from_micros(200), 2);
                }
                MonitorEvent::OpenDone { op, result, .. } if op == self.op => {
                    self.awaiting_open = false;
                    match result {
                        Ok((conn, _, _)) => {
                            self.conn = Some(conn);
                            self.submit(ctx);
                        }
                        Err(Status::NoResources) => self.denied = true,
                        Err(_) => self.denied = true,
                    }
                }
                MonitorEvent::Error { .. } => {
                    // Bounced (the accelerator was still self-testing);
                    // retry on the next tick.
                    self.awaiting_open = false;
                }
                MonitorEvent::Doorbell { value, .. } if value & DOORBELL_JOB_DONE != 0 => {
                    if let Some(at) = self.submitted_at.take() {
                        self.job_times.push(ctx.now.since(at));
                    }
                    if !self.is_done() {
                        self.submit(ctx);
                    }
                }
                _ => {}
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        if self.monitor.on_timer(ctx, token).is_some() {
            return;
        }
        if token == 2 && self.conn.is_none() && !self.denied {
            if !self.awaiting_open {
                self.awaiting_open = true;
                self.op = self.monitor.open(
                    ctx,
                    self.accel,
                    FABRIC_SERVICE,
                    Token::NONE,
                    encode_fabric_params(self.regions),
                );
            }
            ctx.set_timer(SimDuration::from_millis(1), 2);
        }
    }
}

#[test]
fn fabric_jobs_scale_with_regions() {
    let mut sys = System::new(SystemConfig::default());
    sys.add_memctl("memctl0");
    let accel = sys.add_device(Box::new(Accelerator::new("fpga0", 8)));
    let wide = sys.add_device(Box::new(FabricClient::new("wide", accel.id, 6, 5)));
    let narrow = sys.add_device(Box::new(FabricClient::new("narrow", accel.id, 2, 5)));
    sys.power_on();
    sys.run_for(SimDuration::from_millis(100));

    let w: &FabricClient = sys.device_as(wide).unwrap();
    let n: &FabricClient = sys.device_as(narrow).unwrap();
    assert!(w.is_done() && !w.denied, "wide client incomplete");
    assert!(n.is_done() && !n.denied, "narrow client incomplete");
    let wt = w.job_times.iter().map(|d| d.as_nanos()).sum::<u64>() / w.job_times.len() as u64;
    let nt = n.job_times.iter().map(|d| d.as_nanos()).sum::<u64>() / n.job_times.len() as u64;
    assert!(
        nt > wt * 2,
        "2 regions ({nt}ns) should be ~3x slower than 6 ({wt}ns)"
    );
    let a: &Accelerator = sys.device_as(accel).unwrap();
    assert_eq!(a.stats().jobs, 10);
    assert_eq!(a.free_regions(), 0);
}

#[test]
fn fabric_exhaustion_denies_and_failure_releases() {
    let mut sys = System::new(SystemConfig::default());
    sys.add_memctl("memctl0");
    let accel = sys.add_device(Box::new(Accelerator::new("fpga0", 4)));
    let hog = sys.add_device(Box::new(FabricClient::new("hog", accel.id, 4, 1000)));
    sys.power_on();
    // Past the accelerator's 5ms self-test plus the hog's reconfiguration.
    sys.run_for(SimDuration::from_millis(30));
    {
        let a: &Accelerator = sys.device_as(accel).unwrap();
        assert_eq!(a.free_regions(), 0, "hog holds the whole fabric");
    }
    // A second tenant is denied while the fabric is full.
    let late = sys.add_device(Box::new(FabricClient::new("late", accel.id, 1, 1)));
    sys.start_device(late); // hot-plug
    sys.run_for(SimDuration::from_millis(10));
    {
        let l: &FabricClient = sys.device_as(late).unwrap();
        assert!(l.denied, "fabric exhausted, open must be denied");
    }
    // The hog dies; its regions return to the pool.
    sys.kill_device(hog, true);
    sys.run_for(SimDuration::from_millis(10));
    let a: &Accelerator = sys.device_as(accel).unwrap();
    assert_eq!(a.free_regions(), 4, "regions released on tenant death");
}

#[test]
fn time_shared_mode_admits_and_stretches() {
    use lastcpu_core::devices::accel::ShareMode;
    let mut sys = System::new(SystemConfig::default());
    sys.add_memctl("memctl0");
    let accel = sys.add_device(Box::new(Accelerator::with_mode(
        "fpga0",
        4,
        ShareMode::TimeShared,
    )));
    // Two tenants each wanting the whole fabric: 2x oversubscribed.
    let t1 = sys.add_device(Box::new(FabricClient::new("t1", accel.id, 4, 5)));
    let t2 = sys.add_device(Box::new(FabricClient::new("t2", accel.id, 4, 5)));
    sys.power_on();
    sys.run_for(SimDuration::from_millis(100));
    let c1: &FabricClient = sys.device_as(t1).unwrap();
    let c2: &FabricClient = sys.device_as(t2).unwrap();
    assert!(!c1.denied && !c2.denied, "time-shared mode admits everyone");
    assert!(c1.is_done() && c2.is_done());
    let a: &Accelerator = sys.device_as(accel).unwrap();
    assert_eq!(a.granted_regions(), 8);
    assert!((a.oversubscription() - 2.0).abs() < 1e-9);

    // Compare with an uncontended spatial run: time-shared jobs must be
    // roughly the oversubscription factor slower.
    let mut sys2 = System::new(SystemConfig::default());
    sys2.add_memctl("memctl0");
    let accel2 = sys2.add_device(Box::new(Accelerator::new("fpga1", 4)));
    let solo = sys2.add_device(Box::new(FabricClient::new("solo", accel2.id, 4, 5)));
    sys2.power_on();
    sys2.run_for(SimDuration::from_millis(100));
    let s: &FabricClient = sys2.device_as(solo).unwrap();
    assert!(s.is_done() && !s.denied);
    let shared_mean =
        c1.job_times.iter().map(|d| d.as_nanos()).sum::<u64>() / c1.job_times.len() as u64;
    let solo_mean =
        s.job_times.iter().map(|d| d.as_nanos()).sum::<u64>() / s.job_times.len() as u64;
    assert!(
        shared_mean > solo_mean * 3 / 2,
        "oversubscribed jobs ({shared_mean}ns) must stretch vs solo ({solo_mean}ns)"
    );
}
