#!/usr/bin/env bash
# CI gate for the lastcpu workspace. Mirrors what a reviewer runs:
#
#   1. formatting        cargo fmt --check
#   2. lints             cargo clippy --all-targets -- -D warnings
#   3. tier-1            cargo build --release && cargo test -q
#   4. obs smoke test    f2_init_sequence --trace-out/--metrics-out produce
#                        non-empty, well-formed artifacts
#   5. fault smoke test  e4_failures fault matrix replays from three seeds
#                        and exports retry/recovery metrics
#   6. engine smoke test e9_engine_throughput (reduced sizes) produces a
#                        well-formed BENCH_e9.json with nonzero events/sec
#                        for both queue engines and holds the pooled
#                        delivery path's system-phase allocation rate at
#                        <= 1.0 allocs/event
#   7. rack smoke test   e10_rack_scaleout (2 machines, flat topology,
#                        reduced ops, the static and adaptive+p2c
#                        retry-policy arms): a same-seed double run yields
#                        byte-identical BENCH_e10.json (schema v4 with
#                        per-link utilization), and the machine-kill audit
#                        keeps every acked write at R=2 under both arms;
#                        then a tail smoke runs the full 8-machine R=3
#                        cell under adaptive+p2c and fails if its p99
#                        exceeds 2x the R=2 baseline or any acked write is
#                        lost; then a topology smoke runs 16 machines on a
#                        leaf-spine:8 tree at oversubscription 4 — double
#                        run byte-identical, bench_diff clean, per-link
#                        utilization reported, crash audit lossless
#   8. docs gate         cargo doc --no-deps with rustdoc warnings as
#                        errors, an explicit doctest run, and a markdown
#                        link checker (scripts/check_links.py) over
#                        README/DESIGN/EXPERIMENTS/ROADMAP and docs/
#   9. security smoke    e11_security (one seed, reduced ops): a same-seed
#                        double run yields byte-identical BENCH_e11.json,
#                        every hardened row reports leaked == 0 and an
#                        intact workload (any leak fails CI)
#  10. attribution smoke e12_attribution --no-wall (reduced sizes): a
#                        same-seed double run yields byte-identical
#                        BENCH_e12.json; the binary's own gates enforce
#                        >= 95% allocation attribution and exact
#                        critical-path segment sums; bench_diff compares
#                        the two runs as an e12-aware smoke of the diff
#                        tool itself
#  11. regression diff   e9 double run on the same commit through
#                        bench_diff: allocations/event are deterministic
#                        and compared tightly; events/sec is host noise
#                        and gets a relaxed tolerance
#  12. parallel smoke    e13_parallel --no-wall (1/2/4 fabric threads):
#                        the binary hard-asserts bit-identical events +
#                        digests across thread counts; a same-flag double
#                        run is byte-identical and bench_diff compares the
#                        pair; plus an e10 run at --threads 4 whose
#                        scaling/crash sections must equal the
#                        single-threaded run's cell for cell
#  13. checkpoint smoke  e14_checkpoint --no-wall (reduced matrix): the
#                        binary hard-asserts that every restored rack
#                        continues byte-identically to its uninterrupted
#                        twin (no-fault and crash arms, 1 and 4 threads),
#                        that digests agree across thread counts, and that
#                        a checkpoint restored in a *fresh OS process*
#                        finishes with lost_acked_keys == 0 at R=2; a
#                        same-flag double run is byte-identical and
#                        bench_diff compares the pair
#
# Set CI_CRITERION=1 to additionally run the criterion host-time benches
# (opt-in: they are measurements, not pass/fail gates, and take minutes).
#
# Everything runs offline; the workspace has no crates.io dependencies.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, -D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --offline --release

echo "==> tier-1: cargo test -q"
cargo test --offline -q

echo "==> docs gate: cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace -q

echo "==> docs gate: doctests"
cargo test --offline -q --doc

echo "==> docs gate: markdown links"
# Every relative link and intra-file anchor in the reviewer-facing docs
# must resolve (external URLs are counted, not fetched — CI is offline).
if command -v python3 >/dev/null 2>&1; then
    python3 scripts/check_links.py \
        README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md
else
    echo "    python3 unavailable, markdown link check skipped"
fi

echo "==> observability smoke test (f2_init_sequence)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run --offline --release -q -p lastcpu-bench --bin f2_init_sequence -- \
    --trace-out "$tmp/f2.jsonl" --metrics-out "$tmp/f2.prom" >/dev/null

# The JSONL trace must be non-empty, and every line must be a JSON object
# with the fields the exporter promises (at_ns, source, corr, kind, what).
[ -s "$tmp/f2.jsonl" ] || { echo "FAIL: empty trace"; exit 1; }
if command -v python3 >/dev/null 2>&1; then
    python3 - "$tmp/f2.jsonl" <<'PY'
import json, sys
n = 0
corrs = set()
for line in open(sys.argv[1]):
    rec = json.loads(line)
    for field in ("at_ns", "source", "corr", "kind", "what"):
        assert field in rec, f"missing {field!r}: {rec}"
    corrs.add(rec["corr"])
    n += 1
assert n > 0, "no trace records"
assert len(corrs) > 1, "expected more than one correlation id"
print(f"    {n} trace records, {len(corrs)} correlation ids")
PY
else
    grep -q '"corr"' "$tmp/f2.jsonl" || { echo "FAIL: no corr field"; exit 1; }
fi

# The metrics snapshot must cover each subsystem the design instruments
# (names are sanitized to lastcpu_<subsystem>_... in the exposition).
for prefix in bus iommu nic ssd memctl kvs; do
    grep -q "lastcpu_${prefix}_" "$tmp/f2.prom" || {
        echo "FAIL: no ${prefix}.* metric in snapshot"; exit 1;
    }
done
echo "    metrics cover bus/iommu/nic/ssd/memctl/kvs"

echo "==> fault-matrix smoke test (e4_failures, 3 seeds)"
# The matrix itself asserts bit-identical replay per cell and a completed
# Figure-2 re-init per recovery; CI additionally checks that the exported
# snapshot carries the retry counters and recovery-latency histograms
# (keys bus.<device>.retries / bus.<device>.recovery_latency, sanitized to
# lastcpu_bus_<device>_... in the Prometheus exposition).
for seed in 0xE4 7 1984; do
    cargo run --offline --release -q -p lastcpu-bench --bin e4_failures -- \
        --fault-seed "$seed" --metrics-out "$tmp/e4_$seed.prom" >/dev/null
    grep -Eq 'lastcpu_bus_[a-z0-9]+_retries' "$tmp/e4_$seed.prom" || {
        echo "FAIL: no bus.*.retries counter for seed $seed"; exit 1;
    }
    grep -q 'recovery_latency' "$tmp/e4_$seed.prom" || {
        echo "FAIL: no recovery_latency histogram for seed $seed"; exit 1;
    }
done
echo "    3 seeds replayed; retry + recovery_latency metrics present"

echo "==> engine-throughput smoke test (e9_engine_throughput, reduced)"
# Reduced sizes keep this to a couple of seconds; the full run is a
# measurement, not a gate. Both engines must produce nonzero throughput
# and identical system-phase event counts (engine-independent determinism).
cargo run --offline --release -q -p lastcpu-bench --bin e9_engine_throughput -- \
    --queue-ops 200000 --queue-depth 8192 --virtual-ms 100 --repeat 1 \
    --out "$tmp/BENCH_e9.json" >/dev/null
[ -s "$tmp/BENCH_e9.json" ] || { echo "FAIL: empty BENCH_e9.json"; exit 1; }
if command -v python3 >/dev/null 2>&1; then
    python3 - "$tmp/BENCH_e9.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["experiment"] == "e9" and d["schema_version"] == 2, d.keys()
engines = d["engines"]
assert set(engines) == {"wheel", "heap"}, engines.keys()
for name, e in engines.items():
    assert e["threads"] == 1, (name, e["threads"])
    for phase in ("queue", "system"):
        s = e[phase]
        assert s["events"] > 0, (name, phase)
        assert s["events_per_sec"] > 0, (name, phase)
        assert s["ns_per_event"] > 0, (name, phase)
    # The E13 pooled-delivery gate: the end-to-end system phase must stay
    # at or below one heap allocation per simulated event.
    a = e["system"]["allocs_per_event"]
    assert a <= 1.0, f"{name}: system allocs/event {a} > 1.0 (pool regressed)"
assert engines["wheel"]["system"]["events"] == engines["heap"]["system"]["events"], \
    "engines diverged: system phase event counts differ"
q = d["wheel_over_heap"]["queue"]
a = engines["wheel"]["system"]["allocs_per_event"]
print(f"    BENCH_e9.json well-formed; wheel/heap queue churn {q:.2f}x, "
      f"system {a:.3f} allocs/event")
PY
else
    grep -q '"events_per_sec"' "$tmp/BENCH_e9.json" || {
        echo "FAIL: no events_per_sec in BENCH_e9.json"; exit 1;
    }
fi

echo "==> rack smoke test (e10_rack_scaleout, 2 machines, double run)"
# Reduced matrix: 2 machines, R in {1,2}, 120 ops/client, under both the
# static and the congestion-aware (adaptive+p2c) retry-policy arms. The
# crash cells run too (kill m1, audit acked writes). Rack determinism is a
# whole-file property: two same-seed runs must produce byte-identical
# artifacts — per policy arm, since the arms are part of the artifact.
e10_flags=(--machines 1,2 --replication 1,2 --ops 120 --keys 60
           --policies static,adaptive+p2c --topologies flat --oversub 1)
cargo run --offline --release -q -p lastcpu-bench --bin e10_rack_scaleout -- \
    "${e10_flags[@]}" --out "$tmp/BENCH_e10_a.json" >/dev/null
cargo run --offline --release -q -p lastcpu-bench --bin e10_rack_scaleout -- \
    "${e10_flags[@]}" --out "$tmp/BENCH_e10_b.json" >/dev/null
cmp -s "$tmp/BENCH_e10_a.json" "$tmp/BENCH_e10_b.json" || {
    echo "FAIL: same-seed BENCH_e10.json runs differ"; exit 1;
}
if command -v python3 >/dev/null 2>&1; then
    python3 - "$tmp/BENCH_e10_a.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["experiment"] == "e10" and d["schema_version"] == 4, d.keys()
policies = {c["policy"] for c in d["scaling"]}
assert policies == {"static", "adaptive+p2c"}, policies
for c in d["scaling"]:
    assert c["done"], f"scaling cell incomplete: {c}"
    assert c["topology"] == "flat" and c["oversub"] == 1, c
    assert c["ops"] == 120 * c["machines"], c
    assert c["agg_ops_per_sec"] > 0 and c["p99_us"] > 0, c
    assert c["links"] > 0 and c["links_used"] <= c["links"], c
    if c["machines"] > 1:
        assert c["fabric_bytes"] > 0, f"no fabric traffic: {c}"
        assert c["links_used"] > 0 and c["max_link_util"] > 0, \
            f"no per-link utilization: {c}"
crash = {(c["policy"], c["replication"]): c for c in d["crash"]}
assert crash, "no crash cells"
for c in crash.values():
    assert c["done"], f"crash cell incomplete: {c}"
    assert c["acked_keys"] > 0, c
for pol in ("static", "adaptive+p2c"):
    r1, r2 = crash[(pol, 1)], crash[(pol, 2)]
    assert r2["lost_acked_keys"] == 0, f"R=2 lost acked writes: {r2}"
    assert r1["lost_acked_keys"] > 0, f"R=1 control lost nothing: {r1}"
r1 = crash[("adaptive+p2c", 1)]
print(f"    byte-identical double run; crash audit per arm: R=1 lost "
      f"{r1['lost_acked_keys']}/{r1['acked_keys']} acked keys, R=2 lost 0")
PY
else
    grep -q '"lost_acked_keys"' "$tmp/BENCH_e10_a.json" || {
        echo "FAIL: no crash audit in BENCH_e10.json"; exit 1;
    }
fi

echo "==> rack tail smoke test (e10, 8 machines, R=3, adaptive+p2c)"
# The ISSUE-7 acceptance cell at full size: the congestion-aware arm must
# keep the 8xR=3 tail within 2x the 8xR=2 baseline of the same run (the
# static arm sits ~9x above it), and the crash audit must hold at R>=2.
cargo run --offline --release -q -p lastcpu-bench --bin e10_rack_scaleout -- \
    --machines 8 --replication 2,3 --policies adaptive+p2c \
    --topologies flat --oversub 1 \
    --out "$tmp/BENCH_e10_tail.json" >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - "$tmp/BENCH_e10_tail.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
cell = {c["replication"]: c for c in d["scaling"]}
r2, r3 = cell[2], cell[3]
assert r3["done"] and r2["done"], (r2, r3)
assert r3["p99_us"] <= 2 * r2["p99_us"], \
    f"8xR=3 tail regressed: p99 {r3['p99_us']}us > 2x R=2 {r2['p99_us']}us"
for c in d["crash"]:
    if c["replication"] >= 2:
        assert c["lost_acked_keys"] == 0, f"lost acked writes: {c}"
print(f"    adaptive+p2c 8xR=3: p99 {r3['p99_us']:.0f}us vs R=2 "
      f"{r2['p99_us']:.0f}us, {r3['failovers']} failovers, 0 lost acked")
PY
fi

echo "==> topology smoke test (e10, 16-machine leaf-spine, double run)"
# The ISSUE-10 gate at CI size: a 16-machine rack on a real leaf-spine
# tree (2 leaves of 8, ECMP across the spines left by oversub 4) must
# replay byte-identically, report per-link utilization, and keep every
# acked write at R=2 through the machine-kill audit. bench_diff compares
# the pair as a smoke of its topology-aware e10 keying.
topo_flags=(--machines 16 --replication 2 --ops 120 --keys 60
            --policies adaptive+p2c --topologies leaf-spine:8 --oversub 4)
cargo run --offline --release -q -p lastcpu-bench --bin e10_rack_scaleout -- \
    "${topo_flags[@]}" --out "$tmp/BENCH_e10_ls_a.json" >/dev/null
cargo run --offline --release -q -p lastcpu-bench --bin e10_rack_scaleout -- \
    "${topo_flags[@]}" --out "$tmp/BENCH_e10_ls_b.json" >/dev/null
cmp -s "$tmp/BENCH_e10_ls_a.json" "$tmp/BENCH_e10_ls_b.json" || {
    echo "FAIL: same-seed leaf-spine BENCH_e10.json runs differ"; exit 1;
}
cargo run --offline --release -q -p lastcpu-bench --bin bench_diff -- \
    "$tmp/BENCH_e10_ls_a.json" "$tmp/BENCH_e10_ls_b.json" | tail -1
if command -v python3 >/dev/null 2>&1; then
    python3 - "$tmp/BENCH_e10_ls_a.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema_version"] == 4, d.keys()
[c] = d["scaling"]
assert c["topology"] == "leaf-spine:8" and c["oversub"] == 4, c
assert c["done"] and c["machines"] == 16, c
# 16 machines x (up + down) host links, plus 2 leaves x 2 surviving
# spines x (up + down) trunks.
assert c["links"] == 40, c["links"]
assert 0 < c["links_used"] <= c["links"], c
assert c["max_link_util"] > 0 and c["hot_link"], c
for k in d["crash"]:
    assert k["topology"] == "leaf-spine:8" and k["oversub"] == 4, k
    assert k["lost_acked_keys"] == 0, f"leaf-spine crash lost writes: {k}"
print(f"    byte-identical double run; {c['links_used']}/{c['links']} links "
      f"used, hottest {c['hot_link']} at {c['max_link_util'] * 100:.3f}%")
PY
fi

echo "==> security smoke test (e11_security, one seed, double run)"
# Reduced matrix: one seed (3601 = 0xE11), 120 ops, 2-machine rack at R=2.
# The gate is the paper's isolation claim made executable: every hardened
# row must report leaked == 0 with an intact workload, and two same-seed
# runs must produce byte-identical artifacts.
e11_flags=(--seeds 3601 --ops 120 --keys 40 --machines 2 --replication 2)
cargo run --offline --release -q -p lastcpu-bench --bin e11_security -- \
    "${e11_flags[@]}" --out "$tmp/BENCH_e11_a.json" >/dev/null
cargo run --offline --release -q -p lastcpu-bench --bin e11_security -- \
    "${e11_flags[@]}" --out "$tmp/BENCH_e11_b.json" >/dev/null
cmp -s "$tmp/BENCH_e11_a.json" "$tmp/BENCH_e11_b.json" || {
    echo "FAIL: same-seed BENCH_e11.json runs differ"; exit 1;
}
if command -v python3 >/dev/null 2>&1; then
    python3 - "$tmp/BENCH_e11_a.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["experiment"] == "e11" and d["schema_version"] == 1, d.keys()
assert d["leaked_total_hardened"] == 0, \
    f"SECURITY LEAK: leaked_total_hardened = {d['leaked_total_hardened']}"
hardened = [c for c in d["single"] if c["policy"] == "hardened"]
assert hardened, "no hardened single-machine cells"
for c in hardened:
    assert c["leaked_total"] == 0, f"leak in single cell: {c}"
    assert c["integrity_ok"], f"workload integrity violated: {c}"
    assert c["client_errors"] == 0, c
    kinds = {a["kind"] for a in c["attacks"]}
    assert kinds == {"wild-dma", "stale-generation", "confused-deputy",
                     "ssdp-spoof", "control-flood"}, kinds
assert d["rack"], "no rack cells"
for c in d["rack"]:
    assert c["leaked_total"] == 0, f"leak in rack cell: {c}"
    assert c["clients_done"] and c["client_errors"] == 0, c
    assert c["lost_acked_keys"] == 0, c
blocked = sum(a["blocked"] for c in hardened for a in c["attacks"])
print(f"    byte-identical double run; 0 leaks, {blocked} blocked "
      f"verdicts audited (single + rack)")
PY
else
    grep -q '"leaked_total_hardened": 0' "$tmp/BENCH_e11_a.json" || {
        echo "FAIL: leaked_total_hardened != 0 in BENCH_e11.json"; exit 1;
    }
fi

echo "==> attribution smoke test (e12_attribution --no-wall, double run)"
# Reduced sizes: 300 ms virtual system phase, 4-machine rack at R=2. With
# --no-wall the artifact is pure virtual time + allocation counts, so two
# same-seed runs must be byte-identical. The binary exits non-zero itself
# when an attribution gate fails (< 95% allocations attributed, segment
# sums off by > 5%, or an incomplete rack workload).
e12_flags=(--virtual-ms 300 --machines 4 --replication 2 --rack-ops 100 --no-wall)
cargo run --offline --release -q -p lastcpu-bench --bin e12_attribution -- \
    "${e12_flags[@]}" --out "$tmp/BENCH_e12_a.json" >/dev/null
cargo run --offline --release -q -p lastcpu-bench --bin e12_attribution -- \
    "${e12_flags[@]}" --out "$tmp/BENCH_e12_b.json" >/dev/null
cmp -s "$tmp/BENCH_e12_a.json" "$tmp/BENCH_e12_b.json" || {
    echo "FAIL: same-seed BENCH_e12.json runs differ"; exit 1;
}
cargo run --offline --release -q -p lastcpu-bench --bin bench_diff -- \
    "$tmp/BENCH_e12_a.json" "$tmp/BENCH_e12_b.json" | tail -1
if command -v python3 >/dev/null 2>&1; then
    python3 - "$tmp/BENCH_e12_a.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["experiment"] == "e12" and d["schema_version"] == 1, d.keys()
a = d["attribution"]
assert a["attributed_alloc_fraction"] >= 0.95, a["attributed_alloc_fraction"]
assert a["total_allocs"] > 0 and a["events"] > 0, a
assert a["scopes"], "no named scopes"
assert "wall_ns" not in a, "--no-wall artifact carries wall fields"
cp = d["critical_path"]
assert cp["done"] and cp["ops"] > 0, cp
assert cp["worst_sum_error"] <= 0.05, cp["worst_sum_error"]
assert cp["dominant_p99"] in {
    "client_queue", "router_dispatch", "uplink", "spine", "downlink",
    "local_delivery", "replica_service", "ack_aggregation",
    "response_delivery"}, cp["dominant_p99"]
for row in cp["rows"]:
    total, segs = row["total_ns"], sum(row["segments"].values())
    assert total == 0 or abs(segs - total) / total < 0.05, row
print(f"    byte-identical double run; {a['attributed_alloc_fraction']:.1%} "
      f"allocations attributed, p99 dominated by {cp['dominant_p99']}")
PY
fi

echo "==> regression diff (e9 double run through bench_diff)"
# Same commit, so allocations/event must match almost exactly (they are
# deterministic); wall-clock throughput gets a relaxed 30% tolerance to
# survive noisy CI hosts. Cross-commit comparisons use the defaults
# (5% events/sec, +0.5 allocs/event) on a quiet machine.
cargo run --offline --release -q -p lastcpu-bench --bin e9_engine_throughput -- \
    --queue-ops 200000 --queue-depth 8192 --virtual-ms 100 --repeat 1 \
    --out "$tmp/BENCH_e9_again.json" >/dev/null
cargo run --offline --release -q -p lastcpu-bench --bin bench_diff -- \
    --events-tol 30 --allocs-tol 0.001 \
    "$tmp/BENCH_e9.json" "$tmp/BENCH_e9_again.json" | tail -1

echo "==> parallel-fabric smoke test (e13_parallel --no-wall, double run)"
# Reduced sizes; the binary itself hard-asserts that 1/2/4 fabric worker
# threads produce identical event counts and determinism digests. With
# --no-wall the artifact is pure virtual time, so a same-flag double run
# must be byte-identical; bench_diff then compares the pair as an
# e13-aware smoke of the diff tool.
e13_flags=(--ops 100 --keys 60 --no-wall)
cargo run --offline --release -q -p lastcpu-bench --bin e13_parallel -- \
    "${e13_flags[@]}" --out "$tmp/BENCH_e13_a.json" >/dev/null
cargo run --offline --release -q -p lastcpu-bench --bin e13_parallel -- \
    "${e13_flags[@]}" --out "$tmp/BENCH_e13_b.json" >/dev/null
cmp -s "$tmp/BENCH_e13_a.json" "$tmp/BENCH_e13_b.json" || {
    echo "FAIL: same-flag BENCH_e13.json runs differ"; exit 1;
}
cargo run --offline --release -q -p lastcpu-bench --bin bench_diff -- \
    "$tmp/BENCH_e13_a.json" "$tmp/BENCH_e13_b.json" | tail -1
if command -v python3 >/dev/null 2>&1; then
    python3 - "$tmp/BENCH_e13_a.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["experiment"] == "e13" and d["schema_version"] == 1, d.keys()
cells = d["cells"]
assert {c["threads"] for c in cells} == {1, 2, 4}, cells
assert len({(c["events"], c["digest"], c["virtual_ns"]) for c in cells}) == 1, \
    "thread counts diverged"
assert all(c["events"] > 0 and c["ops"] > 0 for c in cells), cells
print(f"    byte-identical double run; {cells[0]['events']} events, "
      f"digest {cells[0]['digest']} at threads 1/2/4")
PY
fi

echo "==> rack thread-identity check (e10 at --threads 1 vs 4)"
# The e10 smoke above ran single-threaded; the same flags at --threads 4
# must produce identical scaling and crash sections (only the recorded
# thread count itself may differ). This pins the windowed scheduler's
# determinism contract on the full E10 workload, crash arm included.
cargo run --offline --release -q -p lastcpu-bench --bin e10_rack_scaleout -- \
    "${e10_flags[@]}" --threads 4 --out "$tmp/BENCH_e10_t4.json" >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - "$tmp/BENCH_e10_a.json" "$tmp/BENCH_e10_t4.json" <<'PY'
import json, sys
one = json.load(open(sys.argv[1]))
four = json.load(open(sys.argv[2]))
def strip(cells):
    return [{k: v for k, v in c.items() if k != "threads"} for c in cells]
for section in ("scaling", "crash"):
    a, b = strip(one[section]), strip(four[section])
    assert a == b, f"{section} section diverged between 1 and 4 threads"
n = len(one["scaling"]) + len(one["crash"])
print(f"    {n} cells identical between --threads 1 and --threads 4")
PY
else
    echo "    python3 unavailable, thread-identity check skipped"
fi

echo "==> checkpoint smoke test (e14_checkpoint --no-wall, double run)"
# Reduced matrix: one seed, 4 machines at R=2, 100 ops/client. The binary
# itself hard-asserts restore byte-identity per cell, cross-thread digest
# identity, and the cross-process restart audit (fresh process restores
# the crash-arm checkpoint and loses zero acked writes). CI adds the
# double-run byte-identity and a bench_diff pass over the pair.
e14_flags=(--seeds 3604 --machines 4 --ops 100 --keys 60 --no-wall)
cargo run --offline --release -q -p lastcpu-bench --bin e14_checkpoint -- \
    "${e14_flags[@]}" --out "$tmp/BENCH_e14_a.json" >/dev/null
cargo run --offline --release -q -p lastcpu-bench --bin e14_checkpoint -- \
    "${e14_flags[@]}" --out "$tmp/BENCH_e14_b.json" >/dev/null
cmp -s "$tmp/BENCH_e14_a.json" "$tmp/BENCH_e14_b.json" || {
    echo "FAIL: same-flag BENCH_e14.json runs differ"; exit 1;
}
cargo run --offline --release -q -p lastcpu-bench --bin bench_diff -- \
    "$tmp/BENCH_e14_a.json" "$tmp/BENCH_e14_b.json" | tail -1
if command -v python3 >/dev/null 2>&1; then
    python3 - "$tmp/BENCH_e14_a.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["experiment"] == "e14" and d["schema_version"] == 1, d.keys()
cells = d["cells"]
assert cells, "no cells"
for c in cells:
    assert c["ckpt_bytes"] > 0 and c["ckpt_sections"] > 0, c
    assert c["restore_replay_events"] == c["ckpt_events"], c
    if c["crash"]:
        assert c["lost_acked_keys"] == 0, f"crash cell lost acked writes: {c}"
by_key = {}
for c in cells:
    by_key.setdefault((c["seed"], c["crash"]), set()).add(c["digest"])
for k, digests in by_key.items():
    assert len(digests) == 1, f"thread counts diverged for {k}: {digests}"
assert d["cross_process_audit"]["ok"] is True, d["cross_process_audit"]
kib = cells[0]["ckpt_bytes"] / 1024
print(f"    byte-identical double run; {len(cells)} cells restored "
      f"byte-identically ({kib:.0f} KiB checkpoints); fresh-process "
      f"restart audit passed with 0 lost acked writes")
PY
fi

if [ "${CI_CRITERION:-0}" = "1" ]; then
    echo "==> criterion host-time benches (opt-in via CI_CRITERION=1)"
    cargo bench --offline -p lastcpu-bench
fi

echo "CI OK"
