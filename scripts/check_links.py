#!/usr/bin/env python3
"""Markdown link checker for the lastcpu docs set.

Scans the given markdown files for inline links and images
(``[text](target)`` / ``![alt](target)``) and fails if any *relative*
target does not exist on disk, resolved against the linking file's
directory. External schemes (http/https/mailto) are recorded but not
fetched — CI runs offline — and pure in-page anchors (``#section``) are
checked against the file's own headings.

Anchors on relative targets (``DESIGN.md#10-rack-scale-fabric``) are
validated against the target file's headings using GitHub's slug rules
(lowercase, spaces to dashes, punctuation dropped).

Usage: check_links.py FILE.md [FILE.md ...]
"""

import re
import sys
from pathlib import Path

# Inline links/images. The target stops at the first whitespace or ')'
# so optional '"title"' parts don't leak into the path.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug: strip markup, lowercase, keep
    word characters and dashes, spaces become dashes."""
    text = re.sub(r"[`*_\[\]()]", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def scan(path: Path):
    """Yields (line_number, target) for every link outside code fences."""
    in_fence = False
    for ln, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            yield ln, m.group(1)


def headings_of(path: Path):
    slugs = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            slugs.add(github_slug(m.group(1)))
    return slugs


def main(files):
    errors = []
    external = 0
    checked = 0
    heading_cache = {}

    def slugs(p: Path):
        if p not in heading_cache:
            heading_cache[p] = headings_of(p)
        return heading_cache[p]

    for name in files:
        src = Path(name)
        if not src.is_file():
            errors.append(f"{name}: file not found")
            continue
        for ln, target in scan(src):
            checked += 1
            if target.startswith(("http://", "https://", "mailto:")):
                external += 1
                continue
            if target.startswith("#"):
                if github_slug(target[1:]) not in slugs(src):
                    errors.append(f"{name}:{ln}: dead anchor {target}")
                continue
            rel, _, anchor = target.partition("#")
            dest = (src.parent / rel).resolve()
            if not dest.exists():
                errors.append(f"{name}:{ln}: broken link {target}")
            elif anchor and dest.suffix == ".md":
                if github_slug(anchor) not in slugs(dest):
                    errors.append(f"{name}:{ln}: dead anchor {target}")

    for e in errors:
        print(f"FAIL: {e}")
    print(
        f"    {checked} links checked across {len(files)} files "
        f"({external} external, not fetched); {len(errors)} broken"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    if len(sys.argv) < 2:
        print(__doc__)
        sys.exit(2)
    sys.exit(main(sys.argv[1:]))
